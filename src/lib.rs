//! Umbrella crate for the HHVM Jump-Start reproduction.
//!
//! This crate re-exports the workspace's public surface so that examples and
//! integration tests can use one coherent namespace. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quick tour
//!
//! ```
//! use hhvm_jumpstart_repro as js;
//!
//! // Compile a little Hacklet program to bytecode and run it.
//! let repo = js::hackc::compile_unit("main.hl", "function main() { return 2 + 3; }")
//!     .expect("compiles");
//! let mut vm = js::vm::Vm::new(&repo);
//! let out = vm.call_by_name("main", &[]).expect("runs");
//! assert_eq!(out, js::vm::Value::Int(5));
//! ```

pub use analysis;
pub use bytecode;
pub use fleet;
pub use hackc;
pub use jit;
pub use jumpstart;
pub use layout;
pub use uarch;
pub use vm;
pub use workload;
