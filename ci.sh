#!/usr/bin/env bash
# Local CI: everything a change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== build =="
cargo build --workspace -q

echo "== test (tier-1: root package) =="
cargo test -q

echo "== test (workspace) =="
cargo test --workspace -q

echo "== jslint self-check =="
cargo run -q -p bench --bin jslint -- --demo

echo "== benches compile =="
cargo bench --workspace --no-run -q

echo "== jsboot smoke (boot determinism, cache exactness, compile-throughput floor, decode timing) =="
cargo run -q -p bench --bin jsboot --release -- --check --trace TRACE_boot.json

echo "== trace schema gate (well-formed JSON, matched B/E, monotonic per-track timestamps) =="
cargo run -q -p bench --bin jstrace --release -- TRACE_boot.json --validate
rm -f TRACE_boot.json

echo "== boot baseline decode gate (BENCH_boot.json must time the decode) =="
if [ -f BENCH_boot.json ]; then
  python3 - <<'EOF'
import json
doc = json.load(open("BENCH_boot.json"))
lo = doc["layout_options"]
assert "hugepage_pack" in lo and "global_hotcold" in lo, f"boot rows missing the active layout plan: {lo}"
rows = doc["thread_sweep"] + doc["early_serve_sweep"] + [doc["uncached_sequential"]]
assert rows, "no boot rows in BENCH_boot.json"
for row in rows:
    assert row["decode_ns"] > 0, f"boot row has decode_ns == 0: {row}"
for row in doc["early_serve_sweep"]:
    assert row["early_serve"] is not None, f"early-serve row missing crossing: {row}"
print(f"decode gate ok: {len(rows)} boot rows, all decode_ns > 0")
EOF
fi

echo "== jslayout smoke (global layout: kill-switch bump placement, iTLB no-regression, reproducible plans) =="
cargo run -q -p bench --bin jslayout --release -- --check

echo "== layout baseline gate (BENCH_layout.json: full stack beats C3-only on iTLB, IPC >= baseline, reproducible) =="
if [ -f BENCH_layout.json ]; then
  python3 - <<'EOF'
import json
doc = json.load(open("BENCH_layout.json"))
assert doc["lab"] == "bench", f"committed BENCH_layout.json must be bench-scale, got {doc['lab']}"
assert doc["reproducible"] is True, "layout plans were not byte-identical across two boots"
rows = {r["name"]: r for r in doc["ablations"]}
base, c3, full = rows["baseline"], rows["c3"], rows["c3+hotcold+hugepages"]
assert full["itlb_miss_rate"] < c3["itlb_miss_rate"], \
    f"full stack must strictly cut the iTLB miss rate vs C3-only: {full['itlb_miss_rate']:.4%} vs {c3['itlb_miss_rate']:.4%}"
assert full["itlb_miss_rate"] <= base["itlb_miss_rate"], \
    f"full stack iTLB miss rate above baseline: {full['itlb_miss_rate']:.4%} vs {base['itlb_miss_rate']:.4%}"
assert full["ipc"] >= base["ipc"], f"full stack IPC {full['ipc']} fell below baseline {base['ipc']}"
assert full["huge_pages"] >= 1, "full-stack hot text occupies no huge pages"
for name in ("baseline", "c3"):
    r = rows[name]
    assert r["pad_bytes"] == 0 and r["stub_bytes"] == 0 and r["cold_region_used"] == 0, \
        f"kill-switch row {name} is not plain bump placement: {r}"
print(f"layout gate ok: iTLB {full['itlb_miss_rate']:.4%} < c3 {c3['itlb_miss_rate']:.4%} "
      f"(baseline {base['itlb_miss_rate']:.4%}), IPC {full['ipc']} >= {base['ipc']}, "
      f"{full['huge_pages']} huge page(s), plans reproducible")
EOF
fi

echo "== jsstale smoke (stale repair: no-op at churn 0, flow-clean repairs, recovery floor + committed baseline) =="
cargo run -q -p bench --bin jsstale --release -- --check

echo "== stale baseline gate (bench recovery at churn 0.1 must hold the floor) =="
if [ -f BENCH_stale.json ]; then
  python3 - <<'EOF'
import json
doc = json.load(open("BENCH_stale.json"))
bench = doc["sections"]["bench"]
row = next(r for r in bench["sweep"] if r["rate"] == 0.1)
full = next(m for m in row["modes"] if m["mode"] == "full")
drop = next(m for m in row["modes"] if m["mode"] == "drop")
assert full["recovered"] >= 0.8, f"full matcher recovered {full['recovered']:.1%} at churn 0.1 (< 80% floor)"
assert full["recovered"] >= drop["recovered"], "full matcher must beat the drop baseline"
assert full["flow_clean"], "full repair left flow-conservation errors"
assert bench["uarch"], "no steady-state replay rows in the bench section"
print(f"stale gate ok: {full['recovered']:.1%} recovered at churn 0.1 (drop baseline {drop['recovered']:.1%})")
EOF
fi

echo "== jsstore smoke (chunk store: byte-identical round-trips, delta ceiling, lazy decode, shard-invariant plan) =="
cargo run -q -p bench --bin jsstore --release -- --check

echo "== store baseline gate (BENCH_store.json: delta wire ceiling, dedup floor, lazy decode ceiling) =="
if [ -f BENCH_store.json ]; then
  python3 - <<'EOF'
import json
doc = json.load(open("BENCH_store.json"))
assert doc["roundtrip_ok"], "a chunked round-trip was not byte-identical"
wire = doc["wire_ratio_at_0p1"]
assert wire <= 0.40, f"churn-0.1 delta shipped {wire:.1%} of full-package bytes (ceiling 40%)"
assert doc["dedup_ratio_at_0p1"] >= 0.60, f"dedup ratio {doc['dedup_ratio_at_0p1']:.1%} under the 60% floor"
lazy = doc["lazy"]
assert lazy["layout_match"], "lazy boot diverged from the monolithic code layout"
assert lazy["before_serve_frac"] < 0.50, \
    f"frac={lazy['early_serve_frac']} boot decoded {lazy['before_serve_frac']:.1%} pre-serve (ceiling 50%)"
assert lazy["cold_chunks"] > 0, "no cold tail left to defer"
fleet = doc["fleet"]
assert fleet["bytes_on_wire"] < fleet["bytes_full"], "fleet distribution sent full packages"
print(f"store gate ok: churn-0.1 wire {wire:.1%} <= 40%, dedup {doc['dedup_ratio_at_0p1']:.1%}, "
      f"lazy pre-serve {lazy['before_serve_frac']:.1%} < 50%, fleet wire {fleet['wire_ratio']:.1%}")
EOF
fi

echo "== jsfleet smoke (sharded event core: shard-invariant digest, fault placement, loss reduction) =="
cargo run -q -p bench --bin jsfleet --release -- --check

echo "== fleet baseline gate (BENCH_fleet.json: paper scale, throughput floor, boot tail, loss band) =="
if [ -f BENCH_fleet.json ]; then
  python3 - <<'EOF'
import json
doc = json.load(open("BENCH_fleet.json"))
assert doc["cores"] >= 1, "host core count must be recorded"
assert doc["servers"] >= 2000, f"paper scale needs >= 2000 servers, got {doc['servers']}"
assert doc["regions"] * doc["buckets"] >= 10, "paper scale needs >= 10 partitions"
assert doc["total_requests"] >= 1_000_000, f"needs >= 1M simulated requests, got {doc['total_requests']}"
assert doc["wall_ms"] < 30_000, f"fleet run must finish under 30 s wall, took {doc['wall_ms']} ms"
assert doc["events_per_sec"] >= 5_000, f"event-core throughput floor: {doc['events_per_sec']} events/sec"
assert doc["steps_executed"] * 2 < doc["steps_dense"], "event core must skip most dense steps"
boot = doc["boot_ms"]
assert boot["n"] >= 2000 and 0 < boot["p50"] <= boot["p95"] <= boot["p99"], f"boot percentiles: {boot}"
loss = doc["capacity_loss"]
assert 0.0 < loss["mean"] < 1.0, f"capacity loss out of band: {loss}"
assert 10.0 < doc["capacity_loss_reduction_pct"] <= 100.0, \
    f"loss reduction out of band: {doc['capacity_loss_reduction_pct']}%"
wc = doc["warmup_classes"]
assert sum(wc["js"].values()) == doc["consumers"], f"js class counts must cover every consumer: {wc['js']}"
assert sum(wc["nojs"].values()) == doc["baselines"], f"nojs class counts must cover every baseline: {wc['nojs']}"
assert wc["js"]["slowdown"] == 0, f"a fault-free-ish js consumer classified slowdown: {wc['js']}"
print(f"fleet gate ok: {doc['servers']} servers, {doc['events_per_sec']:.0f} events/sec "
      f"on {doc['cores']} core(s), p99 boot {boot['p99']:.0f} ms, "
      f"reduction {doc['capacity_loss_reduction_pct']:.1f}%, "
      f"js classes {wc['js']['warmup']}/{sum(wc['js'].values())} warmup")
EOF
fi

echo "== jswarmup smoke (classifier: shard-invariant report, js beats no-js TTSS, degrading victims flagged) =="
cargo run -q -p bench --bin jswarmup --release -- --check --trace TRACE_warmup.json

echo "== warmup trace gate (jstrace --warmup: timelines rebuilt from counters classify cleanly) =="
cargo run -q -p bench --bin jstrace --release -- TRACE_warmup.json --warmup --validate
rm -f TRACE_warmup.json

echo "== warmup baseline gate (BENCH_warmup.json: >=95% js warmup, 0 slowdown, ttss p50 js < no-js, reproducible) =="
if [ -f BENCH_warmup.json ]; then
  python3 - <<'EOF'
import json
doc = json.load(open("BENCH_warmup.json"))
assert doc["reproducible"] is True, "WarmupReport was not byte-identical across runs/shard counts"
js, nojs = doc["clean"]["js"], doc["clean"]["nojs"]
total = sum(js["classes"].values())
frac = js["classes"]["warmup"] / total
assert frac >= 0.95, f"fault-free js arm warmup fraction {frac:.1%} under the 95% floor"
assert js["classes"]["slowdown"] == 0, f"fault-free js arm classified slowdown: {js['classes']}"
p50_js, p50_nojs = js["ttss_p50"]["value"], nojs["ttss_p50"]["value"]
assert p50_js < p50_nojs, f"js ttss p50 {p50_js} not strictly below no-js {p50_nojs}"
assert js["ttss_p50"]["lo"] <= p50_js <= js["ttss_p50"]["hi"], f"js p50 outside its own CI: {js['ttss_p50']}"
assert nojs["ttss_p50"]["lo"] <= p50_nojs <= nojs["ttss_p50"]["hi"], f"nojs p50 outside its own CI: {nojs['ttss_p50']}"
assert js["median_curve"], "median fleet warmup curve missing"
assert doc["degrading_victims"] > 0, "faulted arm placed no degrading hosts"
assert doc["victims_settled"] == 0, f"{doc['victims_settled']} degrading victims classified as settled"
print(f"warmup gate ok: js {frac:.1%} warmup, ttss p50 {p50_js:.0f} < {p50_nojs:.0f} ms (no-js), "
      f"{doc['degrading_victims']} degrading victims all flagged, report reproducible")
EOF
fi

echo "CI OK"
