#!/usr/bin/env bash
# Local CI: everything a change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== build =="
cargo build --workspace -q

echo "== test (tier-1: root package) =="
cargo test -q

echo "== test (workspace) =="
cargo test --workspace -q

echo "== jslint self-check =="
cargo run -q -p bench --bin jslint -- --demo

echo "== benches compile =="
cargo bench --workspace --no-run -q

echo "== jsboot smoke (boot determinism, cache exactness, compile-throughput floor) =="
cargo run -q -p bench --bin jsboot --release -- --check

echo "CI OK"
