//! Quickstart: the whole Jump-Start pipeline on a small Hacklet program.
//!
//! Compiles source offline, profiles it like a seeder, builds and
//! round-trips a package, boots a consumer, and replays traffic through
//! the micro-architecture model.
//!
//! Run with: `cargo run --example quickstart`

use hhvm_jumpstart_repro::{jit, jumpstart, vm};
use jit::{Executor, ExecutorConfig, JitOptions, ProfileCollector};
use jumpstart::{build_package, consume, JumpStartOptions, SeederInputs, Validator};
use vm::{Value, Vm};

const SRC: &str = r#"
    class Counter {
        public $pad0 = 0;
        public $pad1 = 0;
        public $pad2 = 0;
        public $hits = 0;
        function bump($by) { $this->hits = $this->hits + $by; return $this->hits; }
    }
    function busy($n) {
        $c = new Counter();
        $s = 0;
        for ($i = 0; $i < $n; $i++) {
            if ($i % 3 == 0) { $s += $c->bump(2); } else { $s += $i; }
        }
        return $s;
    }
    function handler($n) { return busy($n) + busy($n / 2); }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Offline compilation (HHVM's repo-authoritative build).
    let repo = hackc::compile_unit("app.hl", SRC)?;
    println!(
        "compiled: {} functions, {} classes",
        repo.funcs().len(),
        repo.classes().len()
    );

    // 2. Run and profile like a seeder (Fig. 3b).
    let handler = repo.func_by_name("handler").expect("entry exists").id;
    let mut vm = Vm::new(&repo);
    let mut collector = ProfileCollector::new(&repo);
    for arg in [30i64, 50, 90, 40, 72] {
        let out = vm.call_observed(handler, &[Value::Int(arg)], &mut collector)?;
        collector.end_request();
        println!("handler({arg}) = {out}");
    }

    // 3. Build, validate and round-trip the profile package.
    let opts = JumpStartOptions {
        min_funcs_profiled: 1,
        min_counter_mass: 10,
        min_requests: 3,
        ..Default::default()
    };
    let pkg = build_package(
        SeederInputs {
            repo: &repo,
            tier: collector.tier,
            ctx: collector.ctx,
            unit_order: vm.loader().load_order(),
            requests: 5,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        &opts,
        &JitOptions::default(),
    );
    let bytes = pkg.serialize();
    println!(
        "package: {} bytes, {} functions ordered",
        bytes.len(),
        pkg.func_order.len()
    );
    let report = Validator::new(opts, JitOptions::default()).validate(&repo, &bytes)?;
    println!(
        "validated: {} functions compile cleanly",
        report.compiled_funcs
    );

    // 4. Boot a consumer (Fig. 3c): compile everything before serving.
    let pkg = jumpstart::ProfilePackage::deserialize(&bytes)?;
    let outcome = consume(&repo, &pkg, JitOptions::default(), &opts, 2)?;
    println!(
        "consumer ready: {} optimized functions, {} bytes of code",
        outcome.compiled_funcs, outcome.compile_bytes
    );
    let counter = repo.class_by_name("Counter").expect("exists").id;
    let hits = repo.str_id("hits").expect("interned");
    println!(
        "property `hits` physical slot: {} (declared index 3, reordered hot-first)",
        outcome.prop_slots[&(counter, hits)]
    );

    // 5. Replay through the simulated core and report locality metrics.
    let mut ex = Executor::new(
        &repo,
        &outcome.engine.code_cache,
        &pkg.tier,
        &pkg.ctx,
        ExecutorConfig::default(),
    );
    for _ in 0..200 {
        ex.run_call(handler);
    }
    println!("\nsteady-state replay:\n{}", ex.report());
    Ok(())
}
