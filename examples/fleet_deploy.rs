//! Continuous deployment across a fleet (paper §II-C, §IV-A, §VI):
//! seeders profile in C2, validate and publish; C3 consumers boot with
//! randomized packages; a crash-loop experiment shows the reliability
//! machinery containing a bad package.
//!
//! Run with: `cargo run --release --example fleet_deploy`

use hhvm_jumpstart_repro::{fleet, jit, jumpstart, workload};

use fleet::{run_crashloop, run_deployment, CrashLoopParams, DeployParams, WarmupParams};
use jit::JitOptions;
use jumpstart::JumpStartOptions;
use workload::{generate, AppParams};

fn main() {
    let app = generate(&AppParams::tiny());

    println!("== C1/C2/C3 push with Jump-Start ==");
    let params = DeployParams {
        regions: 2,
        buckets: 2,
        seeders_per_cell: 2,
        seeder_requests: 150,
        warmup: WarmupParams {
            duration_ms: 420_000,
            sample_ms: 10_000,
            init_ms_nojs: 45_000,
            init_ms_js: 20_000,
            deserialize_ms: 4_000,
            profile_serve_ms: 120_000,
            relocation_ms: 30_000,
            compile_bytes_per_core_ms: 1.2,
            ..WarmupParams::fig4()
        },
        js_opts: JumpStartOptions {
            min_funcs_profiled: 5,
            min_counter_mass: 100,
            min_requests: 10,
            ..Default::default()
        },
        jit_opts: JitOptions::default(),
        seed: 3,
        ..Default::default()
    };
    let report = run_deployment(&app, &params);
    println!(
        "published {} packages ({} failed validation)",
        report.published, report.validation_failures
    );
    for (i, (js, nojs)) in report
        .js_timelines
        .iter()
        .zip(&report.nojs_timelines)
        .enumerate()
    {
        println!(
            "cell {i}: loss JS {:>5.1}%  no-JS {:>5.1}%  (time to 90% rps: JS {:?}s, no-JS {:?}s)",
            js.capacity_loss_over(420_000) * 100.0,
            nojs.capacity_loss_over(420_000) * 100.0,
            js.time_to_rps(0.9).map(|t| t / 1000),
            nojs.time_to_rps(0.9).map(|t| t / 1000),
        );
    }
    println!(
        "fleet capacity-loss reduction: {:.1}% (paper: 54.9%)\n",
        report.capacity_loss_reduction(420_000)
    );

    println!("== §VI: one crash-inducing package among five, 2000 consumers ==");
    let cl = run_crashloop(&CrashLoopParams::default());
    println!("crashed per restart wave: {:?}", cl.crashed_per_wave);
    println!(
        "healthy after {:?} waves; {} servers fell back to self-profiling",
        cl.waves_to_healthy, cl.fallbacks
    );

    println!("\n== §VI: the same bad package without randomization ==");
    let cl = run_crashloop(&CrashLoopParams {
        packages: 1,
        poisoned: 1,
        servers: 2000,
        ..Default::default()
    });
    println!("crashed per restart wave: {:?}", cl.crashed_per_wave);
    println!(
        "all {} servers crash-loop until the automatic fallback disables Jump-Start",
        cl.fallbacks
    );
}
