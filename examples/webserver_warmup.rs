//! Single-server warmup (paper Figs. 1/2/4): simulates one web server
//! restarting with and without Jump-Start and prints the RPS/latency/code
//! timelines side by side.
//!
//! Run with: `cargo run --release --example webserver_warmup`

use hhvm_jumpstart_repro::{fleet, jit, jumpstart, workload};

use fleet::{build_app_model, simulate_warmup, ServerConfig, WarmupParams};
use jumpstart::{build_package, JumpStartOptions, SeederInputs};
use workload::{generate, profile_run, AppParams, RequestMix};

fn main() {
    println!("generating a synthetic web application...");
    let app = generate(&AppParams::tiny());
    let mix = RequestMix::new(&app, 0, 0);
    let truth = profile_run(&app, &mix, 200, 7);
    let model = build_app_model(&app, &truth);

    let pkg = build_package(
        SeederInputs {
            repo: &app.repo,
            tier: truth.tier.clone(),
            ctx: truth.ctx.clone(),
            unit_order: truth.unit_order.clone(),
            requests: truth.requests,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        &JumpStartOptions::default(),
        &jit::JitOptions::default(),
    );

    let params = WarmupParams {
        duration_ms: 600_000,
        sample_ms: 20_000,
        init_ms_nojs: 60_000,
        init_ms_js: 25_000,
        deserialize_ms: 5_000,
        profile_serve_ms: 150_000,
        relocation_ms: 40_000,
        ..WarmupParams::fig4()
    }
    .with_compile_window(&model, 180_000);

    let js = simulate_warmup(
        &app,
        &model,
        &mix,
        &ServerConfig {
            params,
            jumpstart: Some(&pkg),
        },
    );
    let nojs = simulate_warmup(
        &app,
        &model,
        &mix,
        &ServerConfig {
            params,
            jumpstart: None,
        },
    );

    println!(
        "\n{:>6} | {:>8} {:>9} {:>9} | {:>8} {:>9} {:>9}",
        "t(s)", "JS rps", "JS lat", "JS code", "rps", "lat", "code"
    );
    println!("{:->70}", "");
    for (a, b) in js.samples.iter().zip(nojs.samples.iter()) {
        println!(
            "{:>6} | {:>8.2} {:>7.1}ms {:>7}KB | {:>8.2} {:>7.1}ms {:>7}KB",
            a.t_ms / 1000,
            a.rps_norm,
            a.latency_ms,
            a.code_bytes / 1024,
            b.rps_norm,
            b.latency_ms,
            b.code_bytes / 1024
        );
    }
    println!(
        "\nlifecycle (no Jump-Start): A={:?}s  B={:?}s  C={:?}s",
        nojs.point_a_ms.map(|t| t / 1000),
        nojs.point_b_ms.map(|t| t / 1000),
        nojs.point_c_ms.map(|t| t / 1000)
    );
    let (lj, ln) = (
        js.capacity_loss_over(600_000) * 100.0,
        nojs.capacity_loss_over(600_000) * 100.0,
    );
    println!("capacity loss over 10 min: Jump-Start {lj:.1}% vs no Jump-Start {ln:.1}%");
    println!("reduction: {:.1}% (paper: 54.9%)", (ln - lj) / ln * 100.0);
}
