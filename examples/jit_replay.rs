//! JIT debugging with saved profiles (paper §III point 4): "If a collected
//! profile triggers a JIT bug, compiler engineers can use that to replay
//! and step through the execution of the JIT in order to reproduce and
//! understand the issue."
//!
//! This example saves a package, reloads it, recompiles one function under
//! both weight sources, and prints the resulting Vasm units so the layout
//! difference is visible — the workflow an HHVM engineer would use.
//!
//! Run with: `cargo run --example jit_replay`

use hhvm_jumpstart_repro::{jit, jumpstart, vm};
use jit::{translate_optimized, InlineParams, JitOptions, ProfileCollector, WeightSource};
use jumpstart::{build_package, JumpStartOptions, ProfilePackage, SeederInputs};
use vm::{Value, Vm};

const SRC: &str = r#"
    function flagged($f) {
        if ($f > 0) { return $f * 2 + 1; }
        return 7 - $f;
    }
    function caller_a($n) {
        $s = 0;
        for ($i = 0; $i < $n; $i++) { $s += flagged(1); }
        return $s;
    }
    function caller_b($n) {
        $s = 0;
        for ($i = 0; $i < $n; $i++) { $s += flagged(0); }
        return $s;
    }
    function main($n) { return caller_a($n) + caller_b($n); }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let repo = hackc::compile_unit("replay.hl", SRC)?;
    let main_fn = repo.func_by_name("main").expect("exists").id;

    // Collect a profile the way a seeder does.
    let mut vm = Vm::new(&repo);
    let mut col = ProfileCollector::new(&repo);
    for _ in 0..5 {
        vm.call_observed(main_fn, &[Value::Int(40)], &mut col)?;
        col.end_request();
    }
    let pkg = build_package(
        SeederInputs {
            repo: &repo,
            tier: col.tier,
            ctx: col.ctx,
            unit_order: vm.loader().load_order(),
            requests: 5,
            region: 0,
            bucket: 0,
            seeder_id: 99,
            now_ms: 0,
        },
        &JumpStartOptions::default(),
        &JitOptions::default(),
    );

    // Persist it like the problematic-profile database of §VI-A.1, then
    // reload and replay the compilation deterministically.
    let path = std::env::temp_dir().join("jumpstart_replay.pkg");
    std::fs::write(&path, pkg.serialize())?;
    println!(
        "saved package to {} ({} bytes)",
        path.display(),
        pkg.serialize().len()
    );
    let reloaded = ProfilePackage::deserialize(&std::fs::read(&path)?)?;
    assert_eq!(reloaded, pkg, "replay must be deterministic");

    // Recompile caller_a under both weight sources and show the divergence
    // the §V-A instrumentation fixes.
    let caller_a = repo.func_by_name("caller_a").expect("exists").id;
    for (label, ws) in [
        ("tier-1 estimates", WeightSource::TierOnly),
        ("accurate (Jump-Start)", WeightSource::Accurate),
    ] {
        let unit = translate_optimized(
            &repo,
            caller_a,
            &reloaded.tier,
            &reloaded.ctx,
            ws,
            InlineParams::default(),
            &|_, _| None,
        );
        println!("\n== caller_a compiled with {label} ==");
        for (i, b) in unit.blocks.iter().enumerate() {
            println!(
                "  b{i}: {} instrs, {} bytes, est weight {:>6}, est taken p {:.2}, true p {:.2} ({:?})",
                b.instrs.len(),
                b.size(),
                b.est_weight,
                b.est_taken_prob,
                b.true_taken_prob,
                b.term
            );
        }
    }
    println!("\nNote how the inlined `flagged` branch is ~50/50 under tier-1 estimates but");
    println!("pinned to this call site's constant argument under accurate weights.");
    std::fs::remove_file(&path).ok();
    Ok(())
}
