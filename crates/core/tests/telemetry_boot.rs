//! End-to-end tracing of a consumer boot: capturing a parallel
//! `consume_bytes` must yield per-worker tracks whose span streams
//! assemble into well-formed trees, with the decode → lint → pipeline →
//! per-function compile structure visible, and a Chrome-trace export
//! that passes the schema validator.

use bytecode::Repo;
use jit::{JitOptions, ProfileCollector};
use jumpstart::{build_package, consume_bytes, JumpStartOptions, ProfilePackage, SeederInputs};
use vm::{Value, Vm};

fn make_package() -> (Repo, ProfilePackage) {
    let src = r#"
        function work($x) { return $x * 3 + 1; }
        function twist($x) { return $x * $x - 2; }
        function main($n) {
            $s = 0;
            for ($i = 0; $i < $n; $i++) { $s += work($i) + twist($i); }
            return $s;
        }
    "#;
    let repo = hackc::compile_unit("t.hl", src).unwrap();
    let f = repo.func_by_name("main").unwrap().id;
    let mut vm = Vm::new(&repo);
    let mut col = ProfileCollector::new(&repo);
    for _ in 0..6 {
        vm.call_observed(f, &[Value::Int(25)], &mut col).unwrap();
        col.end_request();
    }
    let order = vm.loader().load_order();
    let (tier, ctx) = (col.tier, col.ctx);
    let pkg = build_package(
        SeederInputs {
            repo: &repo,
            tier,
            ctx,
            unit_order: order,
            requests: 6,
            region: 0,
            bucket: 0,
            seeder_id: 9,
            now_ms: 0,
        },
        &JumpStartOptions::default(),
        &JitOptions::default(),
    );
    (repo, pkg)
}

#[test]
fn traced_parallel_boot_produces_well_formed_worker_trees() {
    let (repo, pkg) = make_package();
    let bytes = pkg.serialize();
    let threads = 4;

    let (out, trace) = telemetry::capture(|| {
        consume_bytes(
            &repo,
            &bytes,
            JitOptions::default(),
            &JumpStartOptions::default(),
            threads,
        )
        .expect("healthy package boots")
    });

    assert_eq!(trace.dropped, 0, "ring buffers overflowed");

    // One named track per pipeline worker that recorded anything. Idle
    // workers (tiny workload) leave empty rings, which drain() prunes.
    assert_eq!(out.boot.workers.len(), threads);
    for (wid, w) in out.boot.workers.iter().enumerate() {
        if w.translated == 0 {
            continue;
        }
        let name = format!("worker {wid}");
        assert!(
            trace.tracks.iter().any(|t| t.name == name),
            "missing track {name}"
        );
    }
    assert!(
        trace.tracks.iter().any(|t| t.name.starts_with("worker ")),
        "no worker tracks at all"
    );

    // Every track assembles into a well-formed span tree.
    let trees = trace
        .trees()
        .unwrap_or_else(|e| panic!("malformed track: {e}"));

    // The boot phases appear as spans, and every compiled function got a
    // compile span on some worker track.
    let spans = trace.all_spans().expect("well-formed");
    let count = |name: &str| spans.iter().filter(|(_, s)| s.name == name).count();
    assert_eq!(count("decode"), 1);
    assert_eq!(count("consumer-boot"), 1);
    assert_eq!(count("lint-repair"), 1);
    assert_eq!(count("prop-slots"), 1);
    assert_eq!(count("pipeline"), 1);
    assert_eq!(count("compile"), out.compiled_funcs);
    assert_eq!(count("emit"), out.compiled_funcs);

    // Compile spans live on worker tracks, inside that worker's stream.
    let worker_compiles: usize = trees
        .iter()
        .filter(|(t, _)| t.name.starts_with("worker "))
        .flat_map(|(_, roots)| roots)
        .filter(|r| r.name == "compile")
        .count();
    assert_eq!(worker_compiles, out.compiled_funcs);

    // The registry view: pipeline-time histograms cover every unit, and
    // the decode gauge matches the rendered BootStats.
    let snap = out.registry.snapshot();
    let hist = |name: &str| {
        snap.histograms
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing histogram {name}"))
            .1
    };
    assert_eq!(
        hist("pipeline.translate_ns").count,
        out.compiled_funcs as u64
    );
    assert_eq!(hist("pipeline.emit_ns").count, out.compiled_funcs as u64);
    assert!(out.boot.decode_ns > 0, "decode was timed");
    assert_eq!(out.registry.value_u64("boot.decode_ns"), out.boot.decode_ns);

    // The Chrome-trace export round-trips through the schema validator.
    let json = trace.to_chrome_json();
    let summary = telemetry::validate_chrome(&json).expect("valid Chrome trace");
    assert!(summary.span_pairs >= out.compiled_funcs);
    assert!(summary.tracks >= 2, "main track plus at least one worker");
}

#[test]
fn untraced_boot_still_renders_boot_stats_from_registry() {
    // Tracing off (the default): no spans recorded, but the metrics
    // registry still backs BootStats.
    let (repo, pkg) = make_package();
    let bytes = pkg.serialize();
    assert!(!telemetry::enabled());
    let out = consume_bytes(
        &repo,
        &bytes,
        JitOptions::default(),
        &JumpStartOptions::default(),
        2,
    )
    .unwrap();
    assert!(out.boot.decode_ns > 0);
    assert_eq!(jumpstart::BootStats::from_registry(&out.registry), out.boot);
}
