//! End-to-end tests of the static-lint reliability layer (§VI):
//!
//! * every corruption class the acceptance criteria name is rejected by
//!   the seeder validator as [`ValidationError::Static`] *before* any
//!   validation compile or smoke boot runs,
//! * a hash-matched stale package (collected against an older build) is
//!   repaired by the consumer and accepted,
//! * property tests: freshly collected packages lint clean, randomly
//!   mutated ones are flagged.

use bytecode::{FuncId, Repo};
use jit::{JitOptions, ProfileCollector};
use jumpstart::{
    build_package, consume, JumpStartOptions, Poison, ProfilePackage, SeederInputs,
    ValidationError, Validator,
};
use proptest::prelude::*;
use vm::{Value, Vm};

/// Compiles `src`, profiles `requests` calls of `main(n)`, and builds a
/// seeder package against that repo.
fn collect_package(src: &str, n: i64, requests: usize) -> (Repo, ProfilePackage) {
    let repo = hackc::compile_unit("lint.hl", src).unwrap();
    let f = repo.func_by_name("main").unwrap().id;
    let mut vm = Vm::new(&repo);
    let mut col = ProfileCollector::new(&repo);
    for _ in 0..requests {
        vm.call_observed(f, &[Value::Int(n)], &mut col).unwrap();
        col.end_request();
    }
    let order = vm.loader().load_order();
    let (tier, ctx) = (col.tier, col.ctx);
    let pkg = build_package(
        SeederInputs {
            repo: &repo,
            tier,
            ctx,
            unit_order: order,
            requests: requests as u64,
            region: 0,
            bucket: 0,
            seeder_id: 7,
            now_ms: 0,
        },
        &JumpStartOptions::default(),
        &JitOptions::default(),
    );
    (repo, pkg)
}

const SRC_V1: &str = r#"
    function work($x) { return $x * 3 + 1; }
    function main($n) {
        $s = 0;
        for ($i = 0; $i < $n; $i++) { $s += work($i); }
        return $s;
    }
"#;

/// v2 of the same unit: `work` grew a guard block, `main` is unchanged.
/// The old straight-line body survives as a suffix, so its block hash
/// still matches and the stale profile is repairable.
const SRC_V2: &str = r#"
    function work($x) {
        if ($x < 0) { return 0; }
        return $x * 3 + 1;
    }
    function main($n) {
        $s = 0;
        for ($i = 0; $i < $n; $i++) { $s += work($i); }
        return $s;
    }
"#;

type Inject = fn(&mut ProfilePackage);

fn lax_validator() -> Validator {
    Validator::new(
        JumpStartOptions {
            min_funcs_profiled: 1,
            min_counter_mass: 10,
            min_requests: 1,
            ..Default::default()
        },
        JitOptions::default(),
    )
}

/// The smallest profiled FuncId — deterministic, unlike HashMap order.
fn first_func(pkg: &ProfilePackage) -> FuncId {
    *pkg.tier.funcs.keys().min().unwrap()
}

fn inject_dangling_id(pkg: &mut ProfilePackage) {
    let donor = pkg.tier.funcs[&first_func(pkg)].clone();
    pkg.tier.funcs.insert(FuncId::new(9_999), donor);
}

fn inject_flow_violation(pkg: &mut ProfilePackage) {
    let f = first_func(pkg);
    let prof = pkg.tier.funcs.get_mut(&f).unwrap();
    prof.block_counts[0] += 123_456;
}

fn inject_stale_cfg(pkg: &mut ProfilePackage) {
    let f = first_func(pkg);
    let prof = pkg.tier.funcs.get_mut(&f).unwrap();
    prof.block_hashes[0] ^= 0xbad_cafe;
}

/// Each corruption class must be rejected as a *static* failure even when
/// the package is also compile-poisoned: the lint runs before the
/// validation compile (and before any smoke boot), so `Static` must win
/// over `CompileCrash`.
#[test]
fn corruption_is_rejected_before_compile_and_boot() {
    let (repo, pkg) = collect_package(SRC_V1, 40, 30);
    let v = lax_validator();
    let corruptions: [(&str, Inject); 3] = [
        ("dangling id", inject_dangling_id),
        ("flow violation", inject_flow_violation),
        ("stale cfg", inject_stale_cfg),
    ];
    for (name, mutate) in corruptions {
        let mut bad = pkg.clone();
        bad.meta.poison = Poison::CompileCrash;
        mutate(&mut bad);
        match v.validate_package(&repo, &bad, 0) {
            Err(ValidationError::Static { errors, .. }) => {
                assert!(errors > 0, "{name}: static rejection with zero errors")
            }
            other => panic!("{name}: expected Static rejection before compile, got {other:?}"),
        }
    }
    // Sanity: the poison alone (clean profile) does reach the compile.
    let mut poisoned = pkg.clone();
    poisoned.meta.poison = Poison::CompileCrash;
    assert_eq!(
        v.validate_package(&repo, &poisoned, 0),
        Err(ValidationError::CompileCrash)
    );
}

/// The §VI stale-profile scenario: a package collected against build v1
/// reaches a consumer running build v2. The seeder-side validator (strict)
/// refuses it, but the consumer repairs it — block counters are remapped
/// onto the new CFG by structural hash — and boots with it.
#[test]
fn stale_package_is_repaired_and_accepted_by_consumer() {
    let (_repo_v1, pkg) = collect_package(SRC_V1, 40, 30);
    let repo_v2 = hackc::compile_unit("lint.hl", SRC_V2).unwrap();
    let work_v2 = repo_v2.func_by_name("work").unwrap().id;

    // Strict validation against v2 sees the hash mismatch and rejects.
    assert!(matches!(
        lax_validator().validate_package(&repo_v2, &pkg, 0),
        Err(ValidationError::Static { .. })
    ));

    // The consumer repairs instead: `work`'s counters are remapped.
    let out = consume(
        &repo_v2,
        &pkg,
        JitOptions::default(),
        &JumpStartOptions::default(),
        1,
    )
    .unwrap();
    let repair = out.repair.expect("stale package must go through repair");
    assert!(
        repair.repaired.contains(&work_v2),
        "work's counters remapped: {repair:?}"
    );
    assert!(
        repair.dropped.is_empty(),
        "nothing unrepairable here: {repair:?}"
    );
    assert!(
        out.compiled_funcs >= 2,
        "main and repaired work both optimized"
    );
    assert!(out.engine.code_cache.translation(work_v2).is_some());

    // The boot registry mirrors the match-ladder quality as `repair.*`
    // counters for fleet aggregation.
    assert_eq!(
        out.registry.value_u64("repair.funcs_repaired"),
        repair.repaired.len() as u64
    );
    assert_eq!(out.registry.value_u64("repair.funcs_dropped"), 0);
    assert!(
        out.registry.value_u64("repair.blocks_exact") > 0,
        "unchanged blocks matched at the exact rung"
    );
    assert!(
        out.registry.value_u64("repair.mass_matched") > 0,
        "matched counter mass recorded"
    );

    // With repair disabled the consumer refuses the package outright.
    let no_repair = JumpStartOptions {
        lint_repair: false,
        ..Default::default()
    };
    let blind = consume(&repo_v2, &pkg, JitOptions::default(), &no_repair, 1).unwrap();
    assert!(blind.repair.is_none(), "lint_repair off consumes as-is");
}

/// An unrepairable profile (dangling ids everywhere survive pruning, but a
/// fully rewritten function's counters share no hashes) is dropped rather
/// than repaired — and the consumer still boots on what remains.
#[test]
fn unrepairable_function_is_dropped_not_guessed() {
    let (_repo, pkg) = collect_package(SRC_V1, 40, 30);
    let src_v3 = r#"
        function work($x) { return $x - 100; }
        function main($n) {
            $s = 0;
            for ($i = 0; $i < $n; $i++) { $s += work($i); }
            return $s;
        }
    "#;
    let repo_v3 = hackc::compile_unit("lint.hl", src_v3).unwrap();
    let work_v3 = repo_v3.func_by_name("work").unwrap().id;
    let out = consume(
        &repo_v3,
        &pkg,
        JitOptions::default(),
        &JumpStartOptions::default(),
        1,
    )
    .unwrap();
    let repair = out.repair.expect("stale package must go through repair");
    assert!(
        repair.dropped.contains(&work_v3),
        "rewritten work is unrepairable: {repair:?}"
    );
    assert!(out.compiled_funcs >= 1, "main still boots optimized");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the workload looked like, a freshly collected package
    /// passes the strict lint (flow conservation included).
    #[test]
    fn fresh_packages_lint_clean(n in 1i64..50, requests in 1usize..8) {
        let (repo, pkg) = collect_package(SRC_V2, n, requests);
        let report = analysis::lint_profile(
            &repo,
            &analysis::ProfileView {
                tier: &pkg.tier,
                ctx: &pkg.ctx,
                unit_order: &pkg.preload.unit_order,
                prop_orders: &pkg.prop_orders,
                func_order: &pkg.func_order,
            },
        );
        prop_assert!(report.is_clean(), "fresh package dirty: {:?}", report.diagnostics);
    }

    /// Any single mutation from the corruption classes is flagged.
    #[test]
    fn mutated_packages_are_flagged(kind in 0usize..3, salt in 1u64..1_000_000) {
        let (repo, pkg) = collect_package(SRC_V1, 25, 10);
        let mut bad = pkg.clone();
        let f = first_func(&bad);
        match kind {
            0 => inject_dangling_id(&mut bad),
            1 => bad.tier.funcs.get_mut(&f).unwrap().block_counts[0] += salt,
            _ => bad.tier.funcs.get_mut(&f).unwrap().block_hashes[0] ^= salt,
        }
        let report = analysis::lint_profile(
            &repo,
            &analysis::ProfileView {
                tier: &bad.tier,
                ctx: &bad.ctx,
                unit_order: &bad.preload.unit_order,
                prop_orders: &bad.prop_orders,
                func_order: &bad.func_order,
            },
        );
        prop_assert!(report.error_count() > 0, "mutation kind {kind} went undetected");
    }
}
