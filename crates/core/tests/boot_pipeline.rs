//! Determinism property tests for the pipelined work-stealing consumer
//! boot: for any worker count and early-serve fraction, a parallel boot
//! must produce *byte-identical* output to a sequential one — the same
//! compiled-function set, the same code-cache addresses for every
//! translation, and the same byte counts. Addresses feed the uarch model,
//! so any divergence would silently change every steady-state figure.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use bytecode::FuncId;
use jit::{JitOptions, TransKind};
use jumpstart::{build_package, consume, ConsumerOutcome, JumpStartOptions, SeederInputs};
use proptest::prelude::*;
use workload::{generate, profile_run, App, AppParams, RequestMix};

struct BootLab {
    app: App,
    pkg: jumpstart::ProfilePackage,
}

fn lab() -> &'static BootLab {
    static LAB: OnceLock<BootLab> = OnceLock::new();
    LAB.get_or_init(|| {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let run = profile_run(&app, &mix, 150, 17);
        let pkg = build_package(
            SeederInputs {
                repo: &app.repo,
                tier: run.tier,
                ctx: run.ctx,
                unit_order: run.unit_order,
                requests: run.requests,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        BootLab { app, pkg }
    })
}

fn boot(threads: usize, frac: f64) -> ConsumerOutcome<'static> {
    let l = lab();
    let opts = JumpStartOptions {
        early_serve_frac: frac,
        ..Default::default()
    };
    consume(&l.app.repo, &l.pkg, JitOptions::default(), &opts, threads)
        .expect("healthy package boots")
}

/// Every translation's placement, in a canonical comparable form.
type Placements = BTreeMap<FuncId, (TransKind, Vec<(u64, u32)>)>;

/// Digest, placements, compiled-function count, compiled bytes.
type Baseline = (u64, Placements, usize, u64);

fn placements(out: &ConsumerOutcome<'_>) -> Placements {
    out.engine
        .code_cache
        .translations()
        .iter()
        .map(|(&f, t)| (f, (t.kind, t.placement.clone())))
        .collect()
}

fn baseline() -> &'static Baseline {
    static BASE: OnceLock<Baseline> = OnceLock::new();
    BASE.get_or_init(|| {
        let out = boot(1, 1.0);
        (
            out.engine.code_cache.layout_digest(),
            placements(&out),
            out.compiled_funcs,
            out.compile_bytes,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_early_serve_boot_is_byte_identical(
        t_idx in 0usize..4,
        f_idx in 0usize..5,
    ) {
        let threads = [1usize, 2, 4, 8][t_idx];
        let frac = [1.0f64, 0.9, 0.75, 0.5, 0.25][f_idx];
        let (digest, base_placements, funcs, bytes) = baseline();
        let out = boot(threads, frac);
        // Identical code-cache addresses (digest covers every placement,
        // region usage, and translation kind).
        prop_assert_eq!(out.engine.code_cache.layout_digest(), *digest);
        // Identical compiled-function set with identical placements.
        prop_assert_eq!(&placements(&out), base_placements);
        // Identical work accounting.
        prop_assert_eq!(out.compiled_funcs, *funcs);
        prop_assert_eq!(out.compile_bytes, *bytes);
        // BootStats agree with the outcome they describe.
        prop_assert_eq!(out.boot.compiled_funcs, out.compiled_funcs);
        prop_assert_eq!(out.boot.compile_bytes, out.compile_bytes);
        prop_assert_eq!(
            out.boot.workers.iter().map(|w| w.translated).sum::<usize>(),
            out.compiled_funcs
        );
        if frac < 1.0 {
            let early = out.boot.early_serve.expect("crossing recorded");
            prop_assert_eq!(early.ready_funcs + early.background_funcs, out.compiled_funcs);
            prop_assert_eq!(early.ready_bytes + early.background_bytes, out.compile_bytes);
        } else {
            // A full-fraction boot reports a populated crossing: ready at
            // the last unit, nothing left in the background.
            let early = out.boot.early_serve.expect("full-fraction crossing recorded");
            prop_assert_eq!(early.ready_funcs, out.compiled_funcs);
            prop_assert_eq!(early.ready_bytes, out.compile_bytes);
            prop_assert_eq!(early.background_funcs, 0);
            prop_assert_eq!(early.background_bytes, 0);
        }
    }
}
