//! Exactness property tests for the compile caches: for any generated
//! application, profile, weight source and inlining policy, memoized
//! translation (shared inline-body templates) must yield a VasmUnit
//! stream identical to direct translation, and a boot with the caches on
//! (templates + layout plans, any thread count) must emit a code cache
//! byte-identical to one with them off.

use jit::{
    translate_optimized, translate_optimized_with, InlineParams, JitOptions, TemplateSource,
    WeightSource,
};
use jumpstart::{build_package, consume, JumpStartOptions, SeederInputs, TemplateCache};
use proptest::prelude::*;
use workload::{generate, profile_run, AppParams, RequestMix};

fn no_slots(_c: bytecode::ClassId, _p: bytecode::StrId) -> Option<u16> {
    None
}

proptest! {
    // Each case compiles a generated app from source; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn memoized_translation_is_byte_identical(
        seed in 1u64..400,
        accurate in any::<bool>(),
        mc_idx in 0usize..3,
        threads in 1usize..5,
        requests in 60usize..140,
    ) {
        let max_callee = [0usize, 24, 96][mc_idx];
        let params = AppParams { seed, ..AppParams::tiny() };
        let app = generate(&params);
        let mix = RequestMix::new(&app, 0, 0);
        let run = profile_run(&app, &mix, requests, seed ^ 0x5a);
        let weights = if accurate {
            WeightSource::Accurate
        } else {
            WeightSource::TierOnly
        };
        let inline = InlineParams {
            enabled: max_callee > 0,
            max_callee_instrs: max_callee.max(1),
            ..Default::default()
        };
        let jit_opts = JitOptions {
            weights,
            inline,
            ..Default::default()
        };

        // (1) Unit-stream identity: every profiled function translates to
        // the same VasmUnit whether inline bodies are re-translated per
        // site or spliced from the shared template cache — including
        // functions translated after the cache is warm.
        let templates = TemplateCache::default();
        for f in run.tier.functions_by_heat() {
            let direct = translate_optimized(
                &app.repo, f, &run.tier, &run.ctx, weights, inline, &no_slots,
            );
            let cached = translate_optimized_with(
                &app.repo,
                f,
                &run.tier,
                &run.ctx,
                weights,
                inline,
                &no_slots,
                Some(&templates as &dyn TemplateSource),
            );
            prop_assert_eq!(direct, cached, "unit diverged for {:?}", f);
        }

        // (2) Whole-boot digest identity: caches on (templates + plan
        // cache, any worker count) vs caches off, same package.
        let pkg = build_package(
            SeederInputs {
                repo: &app.repo,
                tier: run.tier,
                ctx: run.ctx,
                unit_order: run.unit_order,
                requests: run.requests,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &jit_opts,
        );
        let off = consume(
            &app.repo,
            &pkg,
            jit_opts,
            &JumpStartOptions {
                compile_caches: false,
                ..Default::default()
            },
            1,
        )
        .expect("healthy package boots");
        let on = consume(
            &app.repo,
            &pkg,
            jit_opts,
            &JumpStartOptions::default(),
            threads,
        )
        .expect("healthy package boots");
        prop_assert_eq!(
            on.engine.code_cache.layout_digest(),
            off.engine.code_cache.layout_digest()
        );
        prop_assert_eq!(on.compiled_funcs, off.compiled_funcs);
        prop_assert_eq!(on.compile_bytes, off.compile_bytes);
        prop_assert!(on.boot.caches.is_some());
        prop_assert!(off.boot.caches.is_none());
    }
}
