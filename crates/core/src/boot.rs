//! Consumer boot control: randomized package selection with automatic
//! no-Jump-Start fallback (§VI-A.2 / §VI-A.3).

use std::sync::Arc;

use rand::rngs::SmallRng;

use crate::store::{PackageStore, StoredPackage};

/// What the next boot should do.
#[derive(Clone, Debug)]
pub enum BootDecision {
    /// Boot as a Jump-Start consumer with this package (a shared handle
    /// into the store — deciding never copies package bytes).
    TryPackage(Arc<StoredPackage>),
    /// Boot without Jump-Start (collect own profile data).
    Fallback,
}

/// Per-server boot controller.
///
/// Each failed Jump-Start boot increments the attempt counter; once it
/// exceeds the limit — or no suitable package can be found/downloaded —
/// the server "will automatically restart with Jump-Start disabled"
/// (§VI-A.3). A healthy boot resets the counter.
#[derive(Clone, Copy, Debug)]
pub struct BootController {
    max_attempts: u32,
    attempts: u32,
}

impl BootController {
    /// Creates a controller allowing `max_attempts` Jump-Start boots
    /// before fallback.
    pub fn new(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            attempts: 0,
        }
    }

    /// Jump-Start boot attempts since the last healthy boot.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Decides the next boot: a random package for (region, bucket), or
    /// fallback when attempts are exhausted or no package exists.
    pub fn decide(
        &mut self,
        store: &PackageStore,
        region: u32,
        bucket: u32,
        rng: &mut SmallRng,
    ) -> BootDecision {
        if self.attempts >= self.max_attempts {
            return BootDecision::Fallback;
        }
        match store.pick_random(region, bucket, rng) {
            Some(p) => {
                self.attempts += 1;
                BootDecision::TryPackage(p)
            }
            None => BootDecision::Fallback,
        }
    }

    /// Reports that the boot served healthily; resets the counter.
    pub fn record_healthy(&mut self) {
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageMeta;
    use bytes::Bytes;
    use rand::SeedableRng;

    fn store_with(n: u64) -> PackageStore {
        let store = PackageStore::new();
        for s in 0..n {
            store.publish(
                PackageMeta {
                    region: 0,
                    bucket: 0,
                    seeder_id: s,
                    ..Default::default()
                },
                Bytes::from_static(b"pkg"),
            );
        }
        store
    }

    #[test]
    fn falls_back_when_no_package_exists() {
        let store = PackageStore::new();
        let mut ctl = BootController::new(3);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(matches!(
            ctl.decide(&store, 0, 0, &mut rng),
            BootDecision::Fallback
        ));
        assert_eq!(ctl.attempts(), 0);
    }

    #[test]
    fn falls_back_after_exhausting_attempts() {
        let store = store_with(2);
        let mut ctl = BootController::new(3);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..3 {
            assert!(matches!(
                ctl.decide(&store, 0, 0, &mut rng),
                BootDecision::TryPackage(_)
            ));
        }
        assert!(matches!(
            ctl.decide(&store, 0, 0, &mut rng),
            BootDecision::Fallback
        ));
    }

    #[test]
    fn healthy_boot_resets_attempts() {
        let store = store_with(1);
        let mut ctl = BootController::new(2);
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = ctl.decide(&store, 0, 0, &mut rng);
        let _ = ctl.decide(&store, 0, 0, &mut rng);
        assert_eq!(ctl.attempts(), 2);
        ctl.record_healthy();
        assert_eq!(ctl.attempts(), 0);
        assert!(matches!(
            ctl.decide(&store, 0, 0, &mut rng),
            BootDecision::TryPackage(_)
        ));
    }

    #[test]
    fn retries_pick_random_packages() {
        let store = store_with(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            let mut ctl = BootController::new(1);
            if let BootDecision::TryPackage(p) = ctl.decide(&store, 0, 0, &mut rng) {
                seen.insert(p.meta.seeder_id);
            }
        }
        assert!(
            seen.len() >= 4,
            "random selection should cover most seeders"
        );
    }
}
