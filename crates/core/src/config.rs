//! Jump-Start configuration knobs.

/// Function-sorting strategy (§V-B knob).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FuncSort {
    /// C3 over the inlining-aware call graph from instrumented optimized
    /// code — what Jump-Start enables.
    #[default]
    C3InliningAware,
    /// C3 over the tier-1 call graph (pre-Jump-Start HHVM).
    C3TierOnly,
    /// Compile order = hotness order, no clustering (ablation baseline).
    SourceOrder,
}

/// Property-reordering strategy (§V-C knob).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PropReorder {
    /// Keep declared order.
    Off,
    /// Sort by access hotness (the paper's shipped design).
    #[default]
    Hotness,
    /// Group by co-access affinity (the paper's "future work" extension).
    Affinity,
}

/// All Jump-Start options. HHVM exposes these as runtime configuration
/// (§III point 2, §VI's kill switch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JumpStartOptions {
    /// Master switch (the §VI last-resort kill switch).
    pub enabled: bool,
    /// Drive basic-block layout with Vasm-level counters from instrumented
    /// optimized code (§V-A) instead of tier-1-derived estimates.
    pub accurate_bb_weights: bool,
    /// Function sorting strategy.
    pub func_sort: FuncSort,
    /// Property reordering strategy.
    pub prop_reorder: PropReorder,
    /// Preload repo metadata in the package's load order before serving.
    pub preload_units: bool,
    /// Coverage threshold: minimum functions profiled (§VI-B).
    pub min_funcs_profiled: u64,
    /// Coverage threshold: minimum total counter mass (§VI-B).
    pub min_counter_mass: u64,
    /// Coverage threshold: minimum requests observed (§VI-B).
    pub min_requests: u64,
    /// Boot attempts with Jump-Start before falling back (§VI-A.3).
    pub max_boot_attempts: u32,
    /// Healthy-boot trials the validator simulates (§VI-A.1 "remains
    /// healthy for a few minutes").
    pub validation_trials: u32,
    /// Run the static profile linter during seeder-side validation, before
    /// the (much more expensive) validation compile and smoke boots.
    pub static_lint: bool,
    /// Let consumers lint a package and attempt stale-profile repair
    /// instead of consuming structurally bad data blindly.
    pub lint_repair: bool,
    /// Hottest-first early-serve threshold: the consumer boot reports
    /// ready once the emitted prefix of the compile order covers this
    /// fraction of the tier profile's heat mass; the remainder compiles
    /// in the background while serving. `1.0` (default) keeps the paper's
    /// compile-everything-before-serving behavior (§IV-A).
    pub early_serve_frac: f64,
    /// Memoize compile work across the boot: inline-body templates (each
    /// inlinable callee translated once, spliced per site) and layout
    /// plans (keyed by a structural fingerprint of the layout inputs).
    /// Both caches are exact — the emitted code cache is byte-identical
    /// either way — so this knob exists as a kill switch and for
    /// measuring the caches' effect.
    pub compile_caches: bool,
}

impl Default for JumpStartOptions {
    fn default() -> Self {
        Self {
            enabled: true,
            accurate_bb_weights: true,
            func_sort: FuncSort::C3InliningAware,
            prop_reorder: PropReorder::Hotness,
            preload_units: true,
            min_funcs_profiled: 10,
            min_counter_mass: 1_000,
            min_requests: 20,
            max_boot_attempts: 3,
            validation_trials: 8,
            static_lint: true,
            lint_repair: true,
            early_serve_frac: 1.0,
            compile_caches: true,
        }
    }
}

impl JumpStartOptions {
    /// Jump-Start fully disabled (the paper's no-Jump-Start baseline).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Default::default()
        }
    }

    /// Jump-Start on, but with none of the §V steady-state optimizations —
    /// Fig. 6's baseline configuration.
    pub fn without_optimizations() -> Self {
        Self {
            accurate_bb_weights: false,
            func_sort: FuncSort::C3TierOnly,
            prop_reorder: PropReorder::Off,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_optimizations() {
        let o = JumpStartOptions::default();
        assert!(o.enabled && o.accurate_bb_weights && o.preload_units);
        assert!(o.static_lint && o.lint_repair);
        assert_eq!(o.func_sort, FuncSort::C3InliningAware);
        assert_eq!(o.prop_reorder, PropReorder::Hotness);
    }

    #[test]
    fn fig6_baseline_turns_optimizations_off() {
        let o = JumpStartOptions::without_optimizations();
        assert!(o.enabled);
        assert!(!o.accurate_bb_weights);
        assert_eq!(o.prop_reorder, PropReorder::Off);
    }
}
