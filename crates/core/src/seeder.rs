//! The seeder workflow: turning collected profiles into a package
//! (Fig. 3b's "serialize profile data" step, plus the §V intermediate
//! results that are computed seeder-side).

use std::collections::HashMap;

use bytecode::{ClassId, Repo, StrId, UnitId};
use jit::{CtxProfile, JitEngine, JitOptions, TierProfile};
use layout::{reorder_props_by_affinity, reorder_props_by_hotness, PropAccess};

use crate::config::{FuncSort, JumpStartOptions, PropReorder};
use crate::package::{Coverage, PackageMeta, PreloadLists, ProfilePackage};

/// Everything a seeder has gathered by the time it serializes.
#[derive(Debug)]
pub struct SeederInputs<'a> {
    /// The deployed repo.
    pub repo: &'a Repo,
    /// Tier-1 profile (Fig. 3b "collect profile data").
    pub tier: TierProfile,
    /// Instrumented-optimized-code profile (Fig. 3b "collect profile data
    /// for optimized code").
    pub ctx: CtxProfile,
    /// Unit load order observed while serving.
    pub unit_order: Vec<UnitId>,
    /// Requests observed.
    pub requests: u64,
    /// Region of this seeder.
    pub region: u32,
    /// Semantic bucket of this seeder.
    pub bucket: u32,
    /// Seeder identity.
    pub seeder_id: u64,
    /// Simulated wall clock (ms).
    pub now_ms: u64,
}

/// Builds the profile-data package, computing the seeder-side intermediate
/// results: per-class property orders (§V-C) and the function-sorting
/// order (§V-B, §IV-B category 4).
pub fn build_package(
    inputs: SeederInputs<'_>,
    opts: &JumpStartOptions,
    jit_opts: &JitOptions,
) -> ProfilePackage {
    let repo = inputs.repo;
    let _build_span = telemetry::span!("seeder-build", "seeder" => inputs.seeder_id);
    let props_span = telemetry::span!("prop-orders");
    let prop_orders = match opts.prop_reorder {
        PropReorder::Off => Vec::new(),
        PropReorder::Hotness => prop_orders_by_hotness(repo, &inputs.tier),
        PropReorder::Affinity => prop_orders_by_affinity(repo, &inputs.tier),
    };
    drop(props_span);

    let order_span = telemetry::span!("func-order");
    let candidates = inputs.tier.functions_by_heat();
    let func_order = match opts.func_sort {
        FuncSort::SourceOrder => candidates,
        FuncSort::C3TierOnly => {
            // Pre-Jump-Start HHVM: C3 over the tier-1 call graph, which
            // still contains every arc that inlining will remove (§V-B).
            let engine = JitEngine::new(repo, *jit_opts);
            engine.function_order(&candidates, &inputs.tier, &inputs.ctx, false, true)
        }
        FuncSort::C3InliningAware => {
            c3_from_optimized_code(repo, &candidates, &inputs.tier, &inputs.ctx, jit_opts)
        }
    };
    drop(order_span);

    // Preload list: the observed load order, stably re-sorted hottest unit
    // first. Loading hot metadata first packs it into few pages, which is
    // the §VII-A data-locality benefit of the preload lists.
    let preload_span = telemetry::span!("preload-order");
    let mut unit_heat: HashMap<UnitId, u64> = HashMap::new();
    for (f, p) in &inputs.tier.funcs {
        if f.index() < repo.funcs().len() {
            *unit_heat.entry(repo.func(*f).unit).or_insert(0) += p.block_counts.iter().sum::<u64>();
        }
    }
    let mut unit_order = inputs.unit_order;
    unit_order.sort_by_key(|u| std::cmp::Reverse(unit_heat.get(u).copied().unwrap_or(0)));
    drop(preload_span);

    let coverage = Coverage {
        funcs_profiled: inputs.tier.profiled_count() as u64,
        counter_mass: inputs.tier.total_counter_mass(),
        requests: inputs.requests,
    };
    ProfilePackage {
        meta: PackageMeta {
            region: inputs.region,
            bucket: inputs.bucket,
            seeder_id: inputs.seeder_id,
            created_ms: inputs.now_ms,
            coverage,
            poison: Default::default(),
        },
        preload: PreloadLists { unit_order },
        tier: inputs.tier,
        ctx: inputs.ctx,
        prop_orders,
        func_order,
    }
}

/// Builds the §V-B *accurate* call graph by instrumenting the optimized
/// code itself: the seeder translates each hot function exactly as the
/// consumer will, then records the call arcs that actually remain after
/// inlining, weighted by the (context-sensitive) block counts. The C3
/// order computed from this graph matches the code the fleet will run.
fn c3_from_optimized_code(
    repo: &Repo,
    candidates: &[bytecode::FuncId],
    tier: &TierProfile,
    ctx: &CtxProfile,
    jit_opts: &JitOptions,
) -> Vec<bytecode::FuncId> {
    use jit::vasm::VInstr;
    let index_of: HashMap<bytecode::FuncId, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, i))
        .collect();
    let mut nodes = vec![
        layout::FuncNode {
            size: 16,
            weight: 0
        };
        candidates.len()
    ];
    let mut arcs: Vec<layout::CallArc> = Vec::new();
    for (i, &func) in candidates.iter().enumerate() {
        let unit = jit::translate_optimized(
            repo,
            func,
            tier,
            ctx,
            jit::WeightSource::Accurate,
            jit_opts.inline,
            &|_, _| None,
        );
        nodes[i] = layout::FuncNode {
            size: unit.code_size().max(16),
            weight: unit.blocks.iter().map(|b| b.est_weight).sum(),
        };
        for block in &unit.blocks {
            for instr in &block.instrs {
                match *instr {
                    VInstr::CallStatic { callee } => {
                        if let Some(&j) = index_of.get(&callee) {
                            arcs.push(layout::CallArc {
                                caller: i,
                                callee: j,
                                weight: block.est_weight,
                            });
                        }
                    }
                    VInstr::CallDynamic { owner, site } => {
                        // Distribute the site's weight over its observed
                        // dynamic targets.
                        let Some(targets) = tier
                            .funcs
                            .get(&owner)
                            .and_then(|p| p.call_targets.get(&site))
                        else {
                            continue;
                        };
                        let total: u64 = targets.values().sum();
                        if total == 0 {
                            continue;
                        }
                        for (&callee, &c) in targets {
                            if let Some(&j) = index_of.get(&callee) {
                                arcs.push(layout::CallArc {
                                    caller: i,
                                    callee: j,
                                    weight: block.est_weight * c / total,
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    // A standalone translation only runs when something still *calls* it
    // after inlining: scale each function's execution mass by the fraction
    // of its entries that remain as real calls (arcs) or external request
    // entries. Always-inlined helpers drop to ~zero — precisely what the
    // inlining-unaware tier graph gets wrong (§V-B).
    let mut incoming = vec![0u64; candidates.len()];
    for a in &arcs {
        incoming[a.callee] += a.weight;
    }
    for (i, node) in nodes.iter_mut().enumerate() {
        let func = candidates[i];
        let enter = tier.funcs.get(&func).map(|p| p.enter_count).unwrap_or(0);
        if enter == 0 {
            continue;
        }
        let external = ctx.entries.get(&(None, func)).copied().unwrap_or(0);
        // Arc weights carry the translator's 1024x fixed-point scale.
        let remaining_calls = incoming[i] / 1024 + external;
        let fraction = (remaining_calls as f64 / enter as f64).min(1.0);
        node.weight = (node.weight as f64 * fraction) as u64;
    }
    layout::c3_order(&nodes, &arcs, 4096)
        .into_iter()
        .map(|i| candidates[i])
        .collect()
}

/// Sums per-property access counts up the hierarchy: an access reported
/// against a *receiver* class R counts toward the *declaring* layer K for
/// every K in R's ancestry that declares the property.
fn own_layer_counts(repo: &Repo, tier: &TierProfile) -> HashMap<(ClassId, StrId), u64> {
    let mut out: HashMap<(ClassId, StrId), u64> = HashMap::new();
    for (&(receiver, prop), &count) in &tier.prop_counts {
        if receiver.index() >= repo.classes().len() {
            continue;
        }
        for k in repo.ancestry(receiver) {
            if repo.class(k).props.iter().any(|p| p.name == prop) {
                *out.entry((k, prop)).or_insert(0) += count;
            }
        }
    }
    out
}

fn prop_orders_by_hotness(repo: &Repo, tier: &TierProfile) -> Vec<(ClassId, Vec<StrId>)> {
    let counts = own_layer_counts(repo, tier);
    let mut orders = Vec::new();
    for class in repo.classes() {
        if class.props.is_empty() {
            continue;
        }
        let accesses: Vec<PropAccess<StrId>> = class
            .props
            .iter()
            .map(|p| PropAccess {
                prop: p.name,
                count: counts.get(&(class.id, p.name)).copied().unwrap_or(0),
            })
            .collect();
        if accesses.iter().all(|a| a.count == 0) {
            continue; // never touched: keep declared order, ship nothing
        }
        orders.push((class.id, reorder_props_by_hotness(&accesses)));
    }
    orders
}

fn prop_orders_by_affinity(repo: &Repo, tier: &TierProfile) -> Vec<(ClassId, Vec<StrId>)> {
    let counts = own_layer_counts(repo, tier);
    let mut orders = Vec::new();
    for class in repo.classes() {
        let n = class.props.len();
        if n == 0 {
            continue;
        }
        let accesses: Vec<PropAccess<StrId>> = class
            .props
            .iter()
            .map(|p| PropAccess {
                prop: p.name,
                count: counts.get(&(class.id, p.name)).copied().unwrap_or(0),
            })
            .collect();
        if accesses.iter().all(|a| a.count == 0) {
            continue;
        }
        let index_of: HashMap<StrId, usize> = class
            .props
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name, i))
            .collect();
        let mut matrix = vec![vec![0u64; n]; n];
        for (&(c, a, b), &w) in &tier.prop_pairs {
            // Pair counts are keyed by receiver class; attribute them to
            // this layer when both props are declared here.
            if c.index() >= repo.classes().len() {
                continue;
            }
            if !repo.ancestry(c).contains(&class.id) {
                continue;
            }
            if let (Some(&i), Some(&j)) = (index_of.get(&a), index_of.get(&b)) {
                matrix[i][j] += w;
                matrix[j][i] += w;
            }
        }
        orders.push((class.id, reorder_props_by_affinity(&accesses, &matrix)));
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    fn collect() -> (Repo, TierProfile, CtxProfile, Vec<UnitId>) {
        let src = r#"
            class Base { public $cold0 = 0; public $hot = 0; }
            class Kid extends Base { public $cold1 = 0; public $warm = 0; }
            function touch($k) {
                $o = new Kid();
                $o->hot = $k;
                $s = $o->hot + $o->hot + $o->warm;
                return $s;
            }
            function main($n) {
                $t = 0;
                for ($i = 0; $i < $n; $i++) { $t += touch($i); }
                return $t;
            }
        "#;
        let repo = hackc::compile_unit("s.hl", src).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..4 {
            vm.call_observed(f, &[Value::Int(25)], &mut col).unwrap();
            col.end_request();
        }
        let order = vm.loader().load_order();
        let (tier, ctx) = (col.tier, col.ctx);
        (repo, tier, ctx, order)
    }

    #[test]
    fn package_contains_all_categories() {
        let (repo, tier, ctx, unit_order) = collect();
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order: unit_order.clone(),
                requests: 4,
                region: 1,
                bucket: 2,
                seeder_id: 9,
                now_ms: 500,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        // The preload list is a hot-first permutation of the observed order.
        let mut got = pkg.preload.unit_order.clone();
        let mut expect = unit_order.clone();
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
        assert!(pkg.meta.coverage.funcs_profiled >= 2);
        assert!(!pkg.func_order.is_empty());
        assert!(!pkg.prop_orders.is_empty());
        assert!(pkg.tier.profiled_count() >= 2);
    }

    #[test]
    fn hot_property_is_ordered_first_in_its_layer() {
        let (repo, tier, ctx, unit_order) = collect();
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order,
                requests: 4,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        let base = repo.class_by_name("Base").unwrap().id;
        let hot = repo.str_id("hot").unwrap();
        let (_, order) = pkg
            .prop_orders
            .iter()
            .find(|(c, _)| *c == base)
            .expect("Base layer reordered");
        assert_eq!(order[0], hot, "hottest property leads its layer");
    }

    #[test]
    fn prop_reorder_off_ships_no_orders() {
        let (repo, tier, ctx, unit_order) = collect();
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order,
                requests: 4,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions {
                prop_reorder: PropReorder::Off,
                ..Default::default()
            },
            &JitOptions::default(),
        );
        assert!(pkg.prop_orders.is_empty());
    }

    #[test]
    fn affinity_orders_are_valid_permutations() {
        let (repo, tier, ctx, unit_order) = collect();
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order,
                requests: 4,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions {
                prop_reorder: PropReorder::Affinity,
                ..Default::default()
            },
            &JitOptions::default(),
        );
        for (c, order) in &pkg.prop_orders {
            let declared: std::collections::HashSet<StrId> =
                repo.class(*c).props.iter().map(|p| p.name).collect();
            let got: std::collections::HashSet<StrId> = order.iter().copied().collect();
            assert_eq!(declared, got, "order must permute the declared layer");
        }
    }
}
