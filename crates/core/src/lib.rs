//! **HHVM Jump-Start** — sharing JIT profile data across VM executions.
//!
//! This crate is the paper's primary contribution (§III–§VI): a practical
//! mechanism for collecting a *profile-data package* on a few seeder
//! servers and reusing it across a large fleet of consumers, so each
//! server starts executing optimized code before serving its first
//! request.
//!
//! * [`ProfilePackage`] / [`PackageMeta`] — the four §IV-B data categories
//!   (repo preload lists, tier-1 JIT profile, optimized-code profile,
//!   precomputed intermediate results like the function order), with a
//!   versioned, checksummed binary wire format ([`wire`] errors surface
//!   corruption),
//! * [`build_package`] — the seeder's serialization step (Fig. 3b),
//! * [`consume`] — the consumer workflow (Fig. 3c): deserialize, preload
//!   units, install property orders, then JIT *all* optimized code in
//!   parallel before serving,
//! * [`Validator`] — seeder-side validation incl. coverage thresholds and
//!   a static profile lint via the `analysis` crate (§VI-A.1, §VI-B),
//! * [`PackageStore`] — multiple randomized packages per (region, bucket)
//!   (§VI-A.2),
//! * [`BootController`] — automatic no-Jump-Start fallback (§VI-A.3).
//!
//! Fault injection for the reliability experiments lives in
//! [`Poison`]: a package can be marked as triggering a compile-time or a
//! latent runtime JIT bug, which is how the §VI scenarios are simulated.

mod boot;
pub mod chunk;
mod config;
mod consumer;
mod crc32;
mod package;
mod pipeline;
mod seeder;
mod store;
mod validate;
pub mod wire;

pub use boot::{BootController, BootDecision};
pub use chunk::{
    chunk_package, delta_against, reassemble, Chunk, ChunkId, ChunkKind, ChunkPool, ChunkedPackage,
    DeltaReport, LazyLoader, Manifest, ManifestEntry,
};
pub use config::{FuncSort, JumpStartOptions, PropReorder};
pub use consumer::{
    consume, consume_bytes, consume_chunked, ChunkBootStats, ConsumerError, ConsumerOutcome,
};
pub use crc32::crc32;
pub use package::{Coverage, PackageMeta, Poison, PreloadLists, ProfilePackage};
pub use pipeline::{
    early_serve_prefix, early_serve_prefix_by_heat, BootStats, CacheStats, CompileCaches,
    EarlyServe, TemplateCache, WorkerStats,
};
pub use seeder::{build_package, SeederInputs};
pub use store::{CellDedup, PackageStore, PublishReceipt, StoredPackage};
pub use validate::{ValidationError, ValidationReport, Validator};
