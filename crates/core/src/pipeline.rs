//! The streaming consumer compile pipeline.
//!
//! The paper's consumer "JITs all optimized code in parallel using all
//! the cores" before serving (§IV-A). The naive way — translate on N
//! threads into slots, barrier, then emit everything on one thread —
//! leaves N−1 cores idle for the whole emission phase and the barrier
//! serializes on the slowest translation. This module overlaps the two:
//!
//! * the compile order is split into chunks dealt round-robin onto
//!   per-worker work-stealing deques (hottest chunks first, so the heat
//!   mass needed for early-serve is translated earliest);
//! * workers translate and *plan the block layout* ([`jit::plan_layout`]
//!   — the expensive Ext-TSP step) off the critical emission path, then
//!   stream `(seq, unit, plan)` through a channel;
//! * the emitter thread holds a reorder buffer keyed by sequence number
//!   and places units strictly in compile order while translation is
//!   still running — so the code-cache addresses are **byte-identical**
//!   to a sequential boot (addresses feed the uarch model; parallelism
//!   may not move a single block);
//! * once the emitted prefix covers `early_serve_frac` of the heat mass,
//!   the boot is marked ready ([`EarlyServe`]) and the remainder is
//!   accounted as background compilation;
//! * a worker panic (a poisoned package tripping a JIT bug, §VI-A) is
//!   caught with `catch_unwind` and surfaces as a clean error instead of
//!   aborting the boot, so the fallback controller still engages.
//!
//! Every phase is timed into [`BootStats`], the boot-phase telemetry the
//! `jsboot` bench binary prints and records as `BENCH_boot.json`.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use analysis::layout_fingerprint;
use bytecode::{ClassId, Fnv, FuncId, Repo, StrId};
use crossbeam::{channel, deque};
use jit::vasm::VasmUnit;
use jit::{
    plan_layout, plan_layout_parts, translate_optimized_with, CtxProfile, InlineTemplate,
    JitEngine, JitOptions, LayoutPlan, TemplateKey, TemplateSource, TierProfile,
};
use layout::{PlanCache, PlanKey};

const TEMPLATE_SHARDS: usize = 16;

/// Sharded read-mostly cache of memoized inline-body templates, shared
/// across translation workers (the [`TemplateSource`] the JIT splices
/// from). Misses build outside any lock; a concurrent duplicate build
/// produces an identical template (translation is deterministic) and the
/// first insert wins.
pub struct TemplateCache {
    shards: Vec<RwLock<HashMap<TemplateKey, Arc<InlineTemplate>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for TemplateCache {
    fn default() -> Self {
        Self {
            shards: (0..TEMPLATE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl TemplateCache {
    /// Lookups served from the cache (= inline sites spliced for free).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to translate the callee body.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl TemplateSource for TemplateCache {
    fn get_or_build(
        &self,
        key: TemplateKey,
        build: &mut dyn FnMut() -> InlineTemplate,
    ) -> Arc<InlineTemplate> {
        let shard = &self.shards[key.callee.index() % TEMPLATE_SHARDS];
        if let Some(tpl) = shard.read().expect("template cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return tpl.clone();
        }
        let tpl = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .write()
            .expect("template cache poisoned")
            .entry(key)
            .or_insert(tpl)
            .clone()
    }
}

/// The per-boot compile caches ([`crate::JumpStartOptions::compile_caches`]):
/// inline-body templates plus layout plans. Both are exact memoizations —
/// a boot with caches emits a byte-identical code cache to one without.
#[derive(Default)]
pub struct CompileCaches {
    /// Memoized inline-body templates.
    pub templates: TemplateCache,
    /// Memoized layout plans, keyed by structural fingerprint of the
    /// layout inputs (full-key compare on lookup — collision-safe).
    pub plans: PlanCache,
}

impl CompileCaches {
    /// Snapshot of the hit/miss counters for boot telemetry.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            template_hits: self.templates.hits(),
            template_misses: self.templates.misses(),
            plan_hits: self.plans.hits(),
            plan_misses: self.plans.misses(),
        }
    }
}

/// Compile-cache telemetry for one boot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Inline sites spliced from a memoized template.
    pub template_hits: u64,
    /// Inline-body templates built (distinct callees × weight modes).
    pub template_misses: u64,
    /// Layout plans reused from the cache.
    pub plan_hits: u64,
    /// Layout plans computed.
    pub plan_misses: u64,
}

/// Per-worker translation telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Units this worker translated.
    pub translated: usize,
    /// Of those, units taken from another worker's deque.
    pub stolen: usize,
    /// Time spent translating and planning layout.
    pub busy_ns: u64,
    /// Time spent in steal attempts (own deque empty).
    pub steal_ns: u64,
    /// Residual wall time: lock contention, channel sends, scheduling.
    pub stall_ns: u64,
}

/// When the boot crossed the early-serve threshold (§IV-A relaxed:
/// serve once the hottest `frac` of heat mass is compiled).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EarlyServe {
    /// Configured heat-mass fraction.
    pub frac: f64,
    /// Functions emitted when the threshold was crossed.
    pub ready_funcs: usize,
    /// Bytes emitted when the threshold was crossed.
    pub ready_bytes: u64,
    /// Nanoseconds from pipeline start to the threshold crossing.
    pub ready_ns: u64,
    /// Functions left compiling in the background after ready.
    pub background_funcs: usize,
    /// Bytes emitted after the ready point.
    pub background_bytes: u64,
}

/// Boot-phase timeline for one consumer boot (Fig. 3c, instrumented).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BootStats {
    /// Worker threads used for translation.
    pub threads: usize,
    /// Package decode time (0 unless booted via [`crate::consume_bytes`]).
    pub decode_ns: u64,
    /// Static lint + stale-profile repair time.
    pub lint_repair_ns: u64,
    /// Property-slot resolution time (§V-C layout install).
    pub prop_slots_ns: u64,
    /// Wall time of the overlapped translate+emit phase.
    pub pipeline_ns: u64,
    /// Emitter busy time (placing blocks in the code cache).
    pub emit_ns: u64,
    /// Emitter idle time waiting on translations. In a threaded boot this
    /// is the reorder-buffer recv wait; in a sequential boot it is the
    /// translate+plan time (the emitter "waits" inline for each unit), so
    /// rows are comparable across thread counts.
    pub emit_stall_ns: u64,
    /// End-to-end boot wall time (decode excluded unless present).
    pub total_ns: u64,
    /// Functions compiled to optimized code.
    pub compiled_funcs: usize,
    /// Bytes of optimized code emitted.
    pub compile_bytes: u64,
    /// Per-worker telemetry (one entry for a sequential boot).
    pub workers: Vec<WorkerStats>,
    /// Early-serve crossing, when a fraction < 1.0 was configured.
    pub early_serve: Option<EarlyServe>,
    /// Compile-cache hit/miss counters (None with the caches disabled).
    pub caches: Option<CacheStats>,
}

impl BootStats {
    /// Total busy time across all workers.
    pub fn worker_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Units stolen across all workers.
    pub fn total_stolen(&self) -> usize {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Boot throughput in compiled bytes per second of pipeline wall time.
    pub fn bytes_per_sec(&self) -> f64 {
        if self.pipeline_ns == 0 {
            return 0.0;
        }
        self.compile_bytes as f64 * 1e9 / self.pipeline_ns as f64
    }

    /// Renders the phase timeline as an aligned human-readable block.
    pub fn render(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        let mut out = String::new();
        out.push_str(&format!(
            "boot: {} funcs, {} bytes, {} threads, {:.3} ms total\n",
            self.compiled_funcs,
            self.compile_bytes,
            self.threads,
            ms(self.total_ns)
        ));
        if self.decode_ns > 0 {
            out.push_str(&format!("  decode       {:>10.3} ms\n", ms(self.decode_ns)));
        }
        out.push_str(&format!(
            "  lint/repair  {:>10.3} ms\n  prop-slots   {:>10.3} ms\n  pipeline     {:>10.3} ms (emit {:.3} ms busy, {:.3} ms stalled)\n",
            ms(self.lint_repair_ns),
            ms(self.prop_slots_ns),
            ms(self.pipeline_ns),
            ms(self.emit_ns),
            ms(self.emit_stall_ns),
        ));
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "  worker {i:<2}    {:>6} units ({} stolen)  busy {:>9.3} ms  steal {:>8.3} ms  stall {:>8.3} ms\n",
                w.translated,
                w.stolen,
                ms(w.busy_ns),
                ms(w.steal_ns),
                ms(w.stall_ns),
            ));
        }
        if let Some(c) = &self.caches {
            out.push_str(&format!(
                "  caches       templates {}/{} hit, plans {}/{} hit\n",
                c.template_hits,
                c.template_hits + c.template_misses,
                c.plan_hits,
                c.plan_hits + c.plan_misses,
            ));
        }
        if let Some(e) = &self.early_serve {
            out.push_str(&format!(
                "  early-serve  ready at {:.3} ms with {} funcs / {} bytes ({:.0}% heat), {} funcs / {} bytes in background\n",
                ms(e.ready_ns),
                e.ready_funcs,
                e.ready_bytes,
                e.frac * 100.0,
                e.background_funcs,
                e.background_bytes,
            ));
        }
        out
    }

    /// Serializes the stats as a JSON object (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"translated\":{},\"stolen\":{},\"busy_ns\":{},\"steal_ns\":{},\"stall_ns\":{}}}",
                    w.translated, w.stolen, w.busy_ns, w.steal_ns, w.stall_ns
                )
            })
            .collect();
        let early = match &self.early_serve {
            Some(e) => format!(
                "{{\"frac\":{},\"ready_funcs\":{},\"ready_bytes\":{},\"ready_ns\":{},\"background_funcs\":{},\"background_bytes\":{}}}",
                e.frac, e.ready_funcs, e.ready_bytes, e.ready_ns, e.background_funcs, e.background_bytes
            ),
            None => "null".to_string(),
        };
        let caches = match &self.caches {
            Some(c) => format!(
                "{{\"template_hits\":{},\"template_misses\":{},\"plan_hits\":{},\"plan_misses\":{}}}",
                c.template_hits, c.template_misses, c.plan_hits, c.plan_misses
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"threads\":{},\"decode_ns\":{},\"lint_repair_ns\":{},\"prop_slots_ns\":{},\"pipeline_ns\":{},\"emit_ns\":{},\"emit_stall_ns\":{},\"total_ns\":{},\"compiled_funcs\":{},\"compile_bytes\":{},\"workers\":[{}],\"early_serve\":{},\"caches\":{}}}",
            self.threads,
            self.decode_ns,
            self.lint_repair_ns,
            self.prop_slots_ns,
            self.pipeline_ns,
            self.emit_ns,
            self.emit_stall_ns,
            self.total_ns,
            self.compiled_funcs,
            self.compile_bytes,
            workers.join(","),
            early,
            caches,
        )
    }

    /// Writes every field into `reg` as `boot.*` gauges (set semantics —
    /// re-recording overwrites). The inverse of [`BootStats::from_registry`].
    pub fn record(&self, reg: &telemetry::Registry) {
        reg.gauge("boot.threads").set(self.threads as u64);
        reg.gauge("boot.decode_ns").set(self.decode_ns);
        reg.gauge("boot.lint_repair_ns").set(self.lint_repair_ns);
        reg.gauge("boot.prop_slots_ns").set(self.prop_slots_ns);
        reg.gauge("boot.pipeline_ns").set(self.pipeline_ns);
        reg.gauge("boot.emit_ns").set(self.emit_ns);
        reg.gauge("boot.emit_stall_ns").set(self.emit_stall_ns);
        reg.gauge("boot.total_ns").set(self.total_ns);
        reg.gauge("boot.compiled_funcs")
            .set(self.compiled_funcs as u64);
        reg.gauge("boot.compile_bytes").set(self.compile_bytes);
        reg.gauge("boot.workers").set(self.workers.len() as u64);
        for (i, w) in self.workers.iter().enumerate() {
            reg.gauge(&format!("boot.worker.{i}.translated"))
                .set(w.translated as u64);
            reg.gauge(&format!("boot.worker.{i}.stolen"))
                .set(w.stolen as u64);
            reg.gauge(&format!("boot.worker.{i}.busy_ns"))
                .set(w.busy_ns);
            reg.gauge(&format!("boot.worker.{i}.steal_ns"))
                .set(w.steal_ns);
            reg.gauge(&format!("boot.worker.{i}.stall_ns"))
                .set(w.stall_ns);
        }
        reg.gauge("boot.early_serve.present")
            .set(self.early_serve.is_some() as u64);
        if let Some(e) = &self.early_serve {
            reg.gauge_f64("boot.early_serve.frac").set(e.frac);
            reg.gauge("boot.early_serve.ready_funcs")
                .set(e.ready_funcs as u64);
            reg.gauge("boot.early_serve.ready_bytes").set(e.ready_bytes);
            reg.gauge("boot.early_serve.ready_ns").set(e.ready_ns);
            reg.gauge("boot.early_serve.background_funcs")
                .set(e.background_funcs as u64);
            reg.gauge("boot.early_serve.background_bytes")
                .set(e.background_bytes);
        }
        reg.gauge("boot.cache.present")
            .set(self.caches.is_some() as u64);
        if let Some(c) = &self.caches {
            reg.gauge("boot.cache.template_hits").set(c.template_hits);
            reg.gauge("boot.cache.template_misses")
                .set(c.template_misses);
            reg.gauge("boot.cache.plan_hits").set(c.plan_hits);
            reg.gauge("boot.cache.plan_misses").set(c.plan_misses);
        }
    }

    /// Renders boot stats from the `boot.*` gauges in `reg` — BootStats is
    /// a *view* of the registry, not an independent record.
    pub fn from_registry(reg: &telemetry::Registry) -> BootStats {
        let workers = (0..reg.value_u64("boot.workers") as usize)
            .map(|i| WorkerStats {
                translated: reg.value_u64(&format!("boot.worker.{i}.translated")) as usize,
                stolen: reg.value_u64(&format!("boot.worker.{i}.stolen")) as usize,
                busy_ns: reg.value_u64(&format!("boot.worker.{i}.busy_ns")),
                steal_ns: reg.value_u64(&format!("boot.worker.{i}.steal_ns")),
                stall_ns: reg.value_u64(&format!("boot.worker.{i}.stall_ns")),
            })
            .collect();
        let early_serve = (reg.value_u64("boot.early_serve.present") == 1).then(|| EarlyServe {
            frac: reg.scalar("boot.early_serve.frac").unwrap_or(0.0),
            ready_funcs: reg.value_u64("boot.early_serve.ready_funcs") as usize,
            ready_bytes: reg.value_u64("boot.early_serve.ready_bytes"),
            ready_ns: reg.value_u64("boot.early_serve.ready_ns"),
            background_funcs: reg.value_u64("boot.early_serve.background_funcs") as usize,
            background_bytes: reg.value_u64("boot.early_serve.background_bytes"),
        });
        let caches = (reg.value_u64("boot.cache.present") == 1).then(|| CacheStats {
            template_hits: reg.value_u64("boot.cache.template_hits"),
            template_misses: reg.value_u64("boot.cache.template_misses"),
            plan_hits: reg.value_u64("boot.cache.plan_hits"),
            plan_misses: reg.value_u64("boot.cache.plan_misses"),
        });
        BootStats {
            threads: reg.value_u64("boot.threads") as usize,
            decode_ns: reg.value_u64("boot.decode_ns"),
            lint_repair_ns: reg.value_u64("boot.lint_repair_ns"),
            prop_slots_ns: reg.value_u64("boot.prop_slots_ns"),
            pipeline_ns: reg.value_u64("boot.pipeline_ns"),
            emit_ns: reg.value_u64("boot.emit_ns"),
            emit_stall_ns: reg.value_u64("boot.emit_stall_ns"),
            total_ns: reg.value_u64("boot.total_ns"),
            compiled_funcs: reg.value_u64("boot.compiled_funcs") as usize,
            compile_bytes: reg.value_u64("boot.compile_bytes"),
            workers,
            early_serve,
            caches,
        }
    }
}

/// Length of the shortest prefix of `order` whose cumulative heat covers
/// `frac` of the total heat mass over `order` (heat = summed tier-1 block
/// counters). `frac >= 1` covers everything; `frac <= 0` covers nothing.
pub fn early_serve_prefix(tier: &TierProfile, order: &[FuncId], frac: f64) -> usize {
    if frac >= 1.0 {
        return order.len();
    }
    if frac <= 0.0 {
        return 0;
    }
    let heat: HashMap<FuncId, u64> = tier.heat_ranked().iter().copied().collect();
    early_serve_prefix_by_heat(&heat, order, frac)
}

/// [`early_serve_prefix`] over an externally supplied heat map — the
/// chunk-lazy boot path computes the prefix from manifest heats before
/// any function chunk is decoded, and must agree with the tier-based
/// computation exactly.
pub fn early_serve_prefix_by_heat(
    heat: &HashMap<FuncId, u64>,
    order: &[FuncId],
    frac: f64,
) -> usize {
    if frac >= 1.0 {
        return order.len();
    }
    if frac <= 0.0 {
        return 0;
    }
    let total: u64 = order
        .iter()
        .map(|f| heat.get(f).copied().unwrap_or(0))
        .sum();
    if total == 0 {
        return order.len();
    }
    let target = (frac * total as f64).ceil() as u64;
    let mut cum = 0u64;
    for (i, f) in order.iter().enumerate() {
        cum += heat.get(f).copied().unwrap_or(0);
        if cum >= target {
            return i + 1;
        }
    }
    order.len()
}

/// What the overlapped translate+emit phase produced.
pub(crate) struct PipelineResult {
    pub compiled_funcs: usize,
    pub compile_bytes: u64,
    pub pipeline_ns: u64,
    pub emit_ns: u64,
    pub emit_stall_ns: u64,
    pub workers: Vec<WorkerStats>,
    pub early_serve: Option<EarlyServe>,
}

/// Inputs shared by the sequential and parallel paths.
pub(crate) struct PipelineJob<'a, 'r> {
    pub repo: &'r Repo,
    pub tier: &'a TierProfile,
    pub ctx: &'a CtxProfile,
    /// Compile order, already filtered to profiled functions.
    pub work: Vec<FuncId>,
    pub jit_opts: JitOptions,
    pub resolver: &'a (dyn Fn(ClassId, StrId) -> Option<u16> + Sync),
    /// Heat-mass fraction after which the boot reports ready.
    pub early_serve_frac: f64,
    /// Simulate a JIT compiler bug inside a worker (Poison::CompileCrash
    /// with threads > 1): the worker panics and the pipeline must surface
    /// the panic as an error, not abort.
    pub poison_crash: bool,
    /// Shared compile caches (templates + layout plans), when enabled.
    pub caches: Option<&'a CompileCaches>,
    /// Per-boot metrics registry: translate/emit duration histograms and
    /// steal counters land here as the pipeline runs.
    pub metrics: telemetry::Registry,
}

/// Runs the compile pipeline, emitting into `engine` strictly in `work`
/// order. Returns `Err(())` when a worker crashed (the caller maps this
/// to `ConsumerError::JitCrash`).
pub(crate) fn run(
    job: &PipelineJob<'_, '_>,
    engine: &mut JitEngine<'_>,
    threads: usize,
) -> Result<PipelineResult, ()> {
    if threads <= 1 {
        Ok(run_sequential(job, engine))
    } else {
        run_parallel(job, engine, threads)
    }
}

/// The ready-point bookkeeping shared by both paths: counts emitted
/// units/bytes and records the early-serve crossing.
struct EmitTracker {
    threshold_funcs: usize,
    frac: f64,
    start: Instant,
    compiled_funcs: usize,
    compile_bytes: u64,
    early: Option<EarlyServe>,
}

impl EmitTracker {
    fn new(job: &PipelineJob<'_, '_>, start: Instant) -> Self {
        EmitTracker {
            threshold_funcs: early_serve_prefix(job.tier, &job.work, job.early_serve_frac),
            frac: job.early_serve_frac,
            start,
            compiled_funcs: 0,
            compile_bytes: 0,
            early: None,
        }
    }

    fn on_emitted(&mut self, seq: usize, bytes: u64) {
        if bytes > 0 {
            self.compiled_funcs += 1;
            self.compile_bytes += bytes;
        }
        // The threshold is positional over the compile order, so it
        // crosses exactly when unit `threshold_funcs - 1` lands.
        if self.frac < 1.0 && self.early.is_none() && seq + 1 >= self.threshold_funcs {
            self.early = Some(EarlyServe {
                frac: self.frac,
                ready_funcs: self.compiled_funcs,
                ready_bytes: self.compile_bytes,
                ready_ns: self.start.elapsed().as_nanos() as u64,
                background_funcs: 0,
                background_bytes: 0,
            });
            telemetry::instant!(
                "early-serve-ready",
                "funcs" => self.compiled_funcs,
                "bytes" => self.compile_bytes
            );
        }
    }

    fn finish(mut self) -> (usize, u64, Option<EarlyServe>) {
        if let Some(e) = &mut self.early {
            e.background_funcs = self.compiled_funcs - e.ready_funcs;
            e.background_bytes = self.compile_bytes - e.ready_bytes;
        } else if self.frac >= 1.0 {
            // A full-fraction boot is "ready" exactly when the last unit
            // lands: report a populated crossing (ready == total, nothing
            // in background) instead of a null row.
            self.early = Some(EarlyServe {
                frac: self.frac,
                ready_funcs: self.compiled_funcs,
                ready_bytes: self.compile_bytes,
                ready_ns: self.start.elapsed().as_nanos() as u64,
                background_funcs: 0,
                background_bytes: 0,
            });
        }
        (self.compiled_funcs, self.compile_bytes, self.early)
    }
}

/// Tag folding every `JitOptions` knob that changes a layout plan into a
/// plan-cache key component, so plans never alias across option sets.
fn plan_options_tag(opts: &JitOptions) -> u64 {
    let mut h = Fnv::new();
    h.u8(opts.use_exttsp as u8);
    h.u8(opts.use_hotcold as u8);
    h.u64(opts.cold_threshold);
    h.u64(opts.cold_fraction.to_bits());
    h.u8(opts.plan.hugepage_pack as u8);
    h.u8(opts.plan.global_hotcold as u8);
    h.finish()
}

fn translate_and_plan(job: &PipelineJob<'_, '_>, func: FuncId) -> (VasmUnit, LayoutPlan) {
    let _span = telemetry::span!("compile", "func" => func.index());
    let unit = translate_optimized_with(
        job.repo,
        func,
        job.tier,
        job.ctx,
        job.jit_opts.weights,
        job.jit_opts.inline,
        &job.resolver,
        job.caches.map(|c| &c.templates as &dyn TemplateSource),
    );
    let plan = match job.caches {
        Some(caches) => {
            let blocks = unit.layout_blocks();
            let edges = unit.layout_edges();
            let key = PlanKey {
                fingerprint: layout_fingerprint(&blocks, &edges),
                tag: plan_options_tag(&job.jit_opts),
                blocks,
                edges,
            };
            let cached = caches.plans.get_or_insert_with(key, |k| {
                let p = plan_layout_parts(&job.jit_opts, &k.blocks, &k.edges);
                layout::CachedPlan {
                    hot: p.hot,
                    cold: p.cold,
                    hot_bytes: p.hot_bytes,
                    cold_bytes: p.cold_bytes,
                }
            });
            LayoutPlan {
                hot: cached.hot,
                cold: cached.cold,
                hot_bytes: cached.hot_bytes,
                cold_bytes: cached.cold_bytes,
            }
        }
        None => plan_layout(&job.jit_opts, &unit),
    };
    (unit, plan)
}

fn run_sequential(job: &PipelineJob<'_, '_>, engine: &mut JitEngine<'_>) -> PipelineResult {
    let start = Instant::now();
    let mut tracker = EmitTracker::new(job, start);
    let mut worker = WorkerStats::default();
    let mut emit_ns = 0u64;
    let translate_hist = job.metrics.histogram("pipeline.translate_ns");
    let emit_hist = job.metrics.histogram("pipeline.emit_ns");
    let _pipeline_span = telemetry::span!("pipeline", "threads" => 1u64, "units" => job.work.len());
    for (seq, &func) in job.work.iter().enumerate() {
        let t0 = Instant::now();
        let (unit, plan) = translate_and_plan(job, func);
        let translate_ns = t0.elapsed().as_nanos() as u64;
        translate_hist.record(translate_ns);
        worker.busy_ns += translate_ns;
        worker.translated += 1;
        let t1 = Instant::now();
        let bytes = {
            let _emit_span = telemetry::span!("emit", "seq" => seq, "func" => func.index());
            engine.emit_planned(unit, &plan)
        };
        let unit_emit_ns = t1.elapsed().as_nanos() as u64;
        emit_hist.record(unit_emit_ns);
        emit_ns += unit_emit_ns;
        tracker.on_emitted(seq, bytes);
    }
    let (compiled_funcs, compile_bytes, early_serve) = tracker.finish();
    PipelineResult {
        compiled_funcs,
        compile_bytes,
        pipeline_ns: start.elapsed().as_nanos() as u64,
        emit_ns,
        // The emitter waits inline for each translation; reporting that
        // wait (instead of 0) keeps the column comparable with threaded
        // boots, whose stall is the reorder-buffer recv time.
        emit_stall_ns: worker.busy_ns,
        workers: vec![worker],
        early_serve,
    }
}

/// How many consecutive units one deque entry carries. Small enough to
/// keep workers load-balanced, large enough to amortize queue traffic.
fn chunk_len(work_len: usize, threads: usize) -> usize {
    (work_len / (threads * 4)).clamp(1, 32)
}

fn run_parallel(
    job: &PipelineJob<'_, '_>,
    engine: &mut JitEngine<'_>,
    threads: usize,
) -> Result<PipelineResult, ()> {
    let start = Instant::now();
    let total = job.work.len();
    // Opened before the workers spawn so the span brackets every compile
    // (on an oversubscribed host the main thread may not run again until
    // well after the workers have started translating).
    let _pipeline_span = telemetry::span!("pipeline", "threads" => threads, "units" => total);

    // Deal heat-ordered chunks of the compile order round-robin onto the
    // per-worker deques: worker 0 gets the hottest chunk, and early
    // chunks — the ones the reorder buffer needs first — are at the front
    // of every queue.
    let workers: Vec<deque::Worker<(usize, FuncId)>> =
        (0..threads).map(|_| deque::Worker::new_fifo()).collect();
    let chunk = chunk_len(total, threads);
    for (c, slice) in job.work.chunks(chunk).enumerate() {
        let base = c * chunk;
        for (off, &func) in slice.iter().enumerate() {
            workers[c % threads].push((base + off, func));
        }
    }
    let stealers: Vec<deque::Stealer<(usize, FuncId)>> =
        workers.iter().map(|w| w.stealer()).collect();

    let (tx, rx) = channel::unbounded::<(usize, VasmUnit, LayoutPlan)>();
    let abort = AtomicBool::new(false);
    let crashed = AtomicBool::new(false);

    let mut emit_ns = 0u64;
    let mut emit_stall_ns = 0u64;
    let mut tracker = EmitTracker::new(job, start);

    let worker_stats: Vec<WorkerStats> = crossbeam::scope(|s| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(wid, own)| {
                let tx = tx.clone();
                let stealers = &stealers;
                let abort = &abort;
                let crashed = &crashed;
                s.spawn(move |_| {
                    // One trace track per worker: every compile span this
                    // thread records lands on its own timeline row.
                    let _track = telemetry::track(format!("worker {wid}"));
                    let translate_hist = job.metrics.histogram("pipeline.translate_ns");
                    let steals = job.metrics.counter("pipeline.steals");
                    let wall = Instant::now();
                    let mut stats = WorkerStats::default();
                    'work: loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        // Own queue first, then steal round-robin.
                        let (task, was_steal) = match own.pop() {
                            Some(t) => (t, false),
                            None => {
                                let t0 = Instant::now();
                                let mut found = None;
                                'steal: loop {
                                    let mut saw_retry = false;
                                    for i in 1..stealers.len() {
                                        let victim = (wid + i) % stealers.len();
                                        match stealers[victim].steal() {
                                            deque::Steal::Success(t) => {
                                                found = Some(t);
                                                break 'steal;
                                            }
                                            deque::Steal::Retry => saw_retry = true,
                                            deque::Steal::Empty => {}
                                        }
                                    }
                                    if !saw_retry || abort.load(Ordering::Relaxed) {
                                        break;
                                    }
                                }
                                stats.steal_ns += t0.elapsed().as_nanos() as u64;
                                match found {
                                    Some(t) => {
                                        steals.inc();
                                        telemetry::instant!(
                                            "steal",
                                            "worker" => wid,
                                            "seq" => t.0
                                        );
                                        (t, true)
                                    }
                                    None => break 'work,
                                }
                            }
                        };
                        let (seq, func) = task;
                        let t0 = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if job.poison_crash {
                                panic!("simulated JIT compiler bug (Poison::CompileCrash)");
                            }
                            translate_and_plan(job, func)
                        }));
                        let translate_ns = t0.elapsed().as_nanos() as u64;
                        translate_hist.record(translate_ns);
                        stats.busy_ns += translate_ns;
                        match result {
                            Ok((unit, plan)) => {
                                stats.translated += 1;
                                if was_steal {
                                    stats.stolen += 1;
                                }
                                // Send only fails when the emitter already
                                // bailed; nothing left to do then.
                                if tx.send((seq, unit, plan)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                crashed.store(true, Ordering::Relaxed);
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    let wall_ns = wall.elapsed().as_nanos() as u64;
                    stats.stall_ns = wall_ns.saturating_sub(stats.busy_ns + stats.steal_ns);
                    stats
                })
            })
            .collect();
        drop(tx);

        // The emitter: this thread. Reorder buffer keyed by sequence
        // number; units are placed the instant the in-order prefix is
        // complete, while translation continues on the workers.
        let emit_hist = job.metrics.histogram("pipeline.emit_ns");
        let mut pending: BTreeMap<usize, (VasmUnit, LayoutPlan)> = BTreeMap::new();
        let mut next_seq = 0usize;
        let mut received = 0usize;
        while received < total {
            let t0 = Instant::now();
            let Ok((seq, unit, plan)) = rx.recv() else {
                // All senders gone: a worker crashed (or aborted).
                break;
            };
            emit_stall_ns += t0.elapsed().as_nanos() as u64;
            received += 1;
            pending.insert(seq, (unit, plan));
            while let Some((unit, plan)) = pending.remove(&next_seq) {
                let t1 = Instant::now();
                let bytes = {
                    let _emit_span = telemetry::span!("emit", "seq" => next_seq);
                    engine.emit_planned(unit, &plan)
                };
                let unit_emit_ns = t1.elapsed().as_nanos() as u64;
                emit_hist.record(unit_emit_ns);
                emit_ns += unit_emit_ns;
                tracker.on_emitted(next_seq, bytes);
                next_seq += 1;
            }
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught in-thread"))
            .collect()
    })
    .expect("pipeline scope does not panic");

    if crashed.load(Ordering::Relaxed) {
        return Err(());
    }
    let (compiled_funcs, compile_bytes, early_serve) = tracker.finish();
    Ok(PipelineResult {
        compiled_funcs,
        compile_bytes,
        pipeline_ns: start.elapsed().as_nanos() as u64,
        emit_ns,
        emit_stall_ns,
        workers: worker_stats,
        early_serve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier_with_heat(heats: &[(u32, u64)]) -> TierProfile {
        let mut t = TierProfile::default();
        for &(f, h) in heats {
            let p = t.funcs.entry(FuncId::new(f)).or_default();
            p.block_counts = vec![h];
        }
        t
    }

    #[test]
    fn early_serve_prefix_covers_heat_mass() {
        let tier = tier_with_heat(&[(0, 70), (1, 20), (2, 10)]);
        let order = vec![FuncId::new(0), FuncId::new(1), FuncId::new(2)];
        assert_eq!(early_serve_prefix(&tier, &order, 1.0), 3);
        assert_eq!(early_serve_prefix(&tier, &order, 0.0), 0);
        assert_eq!(early_serve_prefix(&tier, &order, 0.5), 1);
        assert_eq!(early_serve_prefix(&tier, &order, 0.7), 1);
        assert_eq!(early_serve_prefix(&tier, &order, 0.71), 2);
        assert_eq!(early_serve_prefix(&tier, &order, 0.95), 3);
    }

    #[test]
    fn early_serve_prefix_with_no_heat_serves_everything() {
        let tier = TierProfile::default();
        let order = vec![FuncId::new(0), FuncId::new(1)];
        assert_eq!(early_serve_prefix(&tier, &order, 0.5), 2);
    }

    #[test]
    fn chunks_cover_all_work() {
        for (len, threads) in [(1, 2), (7, 2), (100, 4), (5, 8), (1000, 16)] {
            let c = chunk_len(len, threads);
            assert!((1..=32).contains(&c));
            let covered: usize = (0..len)
                .collect::<Vec<_>>()
                .chunks(c)
                .map(<[usize]>::len)
                .sum();
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn boot_stats_json_is_well_formed() {
        let stats = BootStats {
            threads: 2,
            compiled_funcs: 3,
            compile_bytes: 100,
            workers: vec![WorkerStats::default(); 2],
            early_serve: Some(EarlyServe {
                frac: 0.5,
                ready_funcs: 1,
                ready_bytes: 40,
                ready_ns: 1000,
                background_funcs: 2,
                background_bytes: 60,
            }),
            ..Default::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"early_serve\":{\"frac\":0.5"));
        assert_eq!(json.matches("\"translated\"").count(), 2);
        let rendered = stats.render();
        assert!(rendered.contains("early-serve"));
        assert!(rendered.contains("worker 0"));
    }

    #[test]
    fn boot_stats_round_trip_through_registry() {
        // Golden property of the stats-as-view design: record() followed
        // by from_registry() reproduces the struct exactly, including the
        // Option fields and the f64 fraction.
        let full = BootStats {
            threads: 3,
            decode_ns: 11,
            lint_repair_ns: 22,
            prop_slots_ns: 33,
            pipeline_ns: 44,
            emit_ns: 55,
            emit_stall_ns: 66,
            total_ns: 77,
            compiled_funcs: 5,
            compile_bytes: 1234,
            workers: vec![
                WorkerStats {
                    translated: 3,
                    stolen: 1,
                    busy_ns: 100,
                    steal_ns: 10,
                    stall_ns: 1,
                },
                WorkerStats::default(),
            ],
            early_serve: Some(EarlyServe {
                frac: 0.37,
                ready_funcs: 2,
                ready_bytes: 500,
                ready_ns: 40,
                background_funcs: 3,
                background_bytes: 734,
            }),
            caches: Some(CacheStats {
                template_hits: 7,
                template_misses: 2,
                plan_hits: 4,
                plan_misses: 1,
            }),
        };
        let reg = telemetry::Registry::default();
        full.record(&reg);
        assert_eq!(BootStats::from_registry(&reg), full);

        // None variants survive too (presence markers overwrite).
        let bare = BootStats {
            threads: 1,
            workers: vec![WorkerStats::default()],
            ..Default::default()
        };
        let reg2 = telemetry::Registry::default();
        bare.record(&reg2);
        assert_eq!(BootStats::from_registry(&reg2), bare);
    }
}
