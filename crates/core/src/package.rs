//! The profile-data package: contents and serialization (paper §IV-B).

use bytes::Bytes;

use bytecode::{ClassId, FuncId, StrId, UnitId};
use jit::{BranchCount, CtxProfile, FuncProfile, InlineCtx, TierProfile, TypeDist};
use vm::ValueKind;

use crate::wire::{
    begin_sealed, finish_sealed, unseal, unseal_shared, Reader, WireError, Writer, ENVELOPE_LEN,
};

/// Fault-injection marker for the §VI reliability experiments: a package
/// whose profile data triggers a JIT bug.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Poison {
    /// Healthy package.
    #[default]
    None,
    /// Deterministically crashes JIT compilation — validation (§VI-A.1)
    /// must catch this class.
    CompileCrash,
    /// Latent bug: compiles fine, but each consumer boot crashes with
    /// probability `per_mille`/1000 — the class that can slip through
    /// validation and that randomized selection (§VI-A.2) contains.
    RuntimeCrash {
        /// Crash probability in 1/1000 units.
        per_mille: u16,
    },
}

/// Profile coverage, checked against thresholds before publication
/// (§VI-B).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Functions with any profile data.
    pub funcs_profiled: u64,
    /// Total block-counter mass.
    pub counter_mass: u64,
    /// Requests observed while profiling.
    pub requests: u64,
}

/// Package identification and provenance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackageMeta {
    /// Data-center region the profile was collected in.
    pub region: u32,
    /// Semantic bucket (§II-C).
    pub bucket: u32,
    /// Which seeder produced it.
    pub seeder_id: u64,
    /// Collection timestamp (simulated ms).
    pub created_ms: u64,
    /// Coverage counters.
    pub coverage: Coverage,
    /// Fault-injection marker (always `None` in healthy operation).
    pub poison: Poison,
}

/// Repo global data to preload before compiling (§IV-B category 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PreloadLists {
    /// Units in the order a warmed server loaded them.
    pub unit_order: Vec<UnitId>,
}

/// The complete Jump-Start package.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfilePackage {
    /// Provenance and coverage.
    pub meta: PackageMeta,
    /// Category 1: preload lists.
    pub preload: PreloadLists,
    /// Category 2: tier-1 JIT profile data.
    pub tier: TierProfile,
    /// Category 3: profile data from instrumented optimized code.
    pub ctx: CtxProfile,
    /// Category 4a (intermediate result): per-class physical property
    /// orders (own layer only), from §V-C.
    pub prop_orders: Vec<(ClassId, Vec<StrId>)>,
    /// Category 4b (intermediate result): the function-sorting order, from
    /// §V-B, computed on the seeder.
    pub func_order: Vec<FuncId>,
}

impl ProfilePackage {
    /// Serializes to the sealed wire format. The exact encoded size is
    /// computed up front ([`ProfilePackage::encoded_len`]) and the
    /// envelope is written inline, so the whole package lands in one
    /// exactly-sized buffer: no payload copy, no reallocation.
    pub fn serialize(&self) -> Bytes {
        let payload_len = self.encoded_len();
        let _span = telemetry::span!("package-serialize", "bytes" => payload_len + ENVELOPE_LEN);
        let mut w = Writer::with_capacity(payload_len + ENVELOPE_LEN);
        begin_sealed(&mut w, payload_len);
        // --- meta ---
        w.u32(self.meta.region);
        w.u32(self.meta.bucket);
        w.u64(self.meta.seeder_id);
        w.u64(self.meta.created_ms);
        w.u64(self.meta.coverage.funcs_profiled);
        w.u64(self.meta.coverage.counter_mass);
        w.u64(self.meta.coverage.requests);
        match self.meta.poison {
            Poison::None => w.u8(0),
            Poison::CompileCrash => w.u8(1),
            Poison::RuntimeCrash { per_mille } => {
                w.u8(2);
                w.u32(per_mille as u32);
            }
        }
        // --- preload ---
        w.seq(self.preload.unit_order.len());
        for u in &self.preload.unit_order {
            w.u32(u.0);
        }
        // --- tier profile ---
        write_tier(&mut w, &self.tier);
        // --- ctx profile ---
        write_ctx(&mut w, &self.ctx);
        // --- prop orders ---
        w.seq(self.prop_orders.len());
        for (c, order) in &self.prop_orders {
            w.u32(c.0);
            w.seq(order.len());
            for s in order {
                w.u32(s.0);
            }
        }
        // --- func order ---
        w.seq(self.func_order.len());
        for f in &self.func_order {
            w.u32(f.0);
        }
        debug_assert_eq!(
            w.len(),
            payload_len + ENVELOPE_LEN - 4,
            "encoded_len must mirror the writers exactly"
        );
        finish_sealed(w)
    }

    /// Exact payload size [`ProfilePackage::serialize`] will produce
    /// (excluding the envelope), mirroring the writers field for field.
    pub fn encoded_len(&self) -> usize {
        // meta: region, bucket (u32) + seeder, created, 3×coverage (u64).
        let mut len = 4 + 4 + 5 * 8;
        len += match self.meta.poison {
            Poison::RuntimeCrash { .. } => 1 + 4,
            _ => 1,
        };
        len += 4 + 4 * self.preload.unit_order.len();
        len += tier_encoded_len(&self.tier);
        len += ctx_encoded_len(&self.ctx);
        len += 4;
        for (_, order) in &self.prop_orders {
            len += 4 + 4 + 4 * order.len();
        }
        len += 4 + 4 * self.func_order.len();
        len
    }

    /// Deserializes from the sealed wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any corruption; never panics.
    pub fn deserialize(data: &[u8]) -> Result<ProfilePackage, WireError> {
        let payload = unseal(data)?;
        let mut r = Reader::new(payload);
        decode_payload(&mut r)
    }

    /// Deserializes from shared bytes (a stored package): the payload is
    /// accessed as a zero-copy slice of `data`'s backing allocation —
    /// no intermediate payload `Vec`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any corruption; never panics.
    pub fn deserialize_shared(data: &Bytes) -> Result<ProfilePackage, WireError> {
        let payload = unseal_shared(data)?;
        let mut r = Reader::new_shared(&payload);
        decode_payload(&mut r)
    }

    /// Exact serialized size in bytes without serializing.
    pub fn approx_size(&self) -> usize {
        self.encoded_len() + ENVELOPE_LEN
    }
}

fn decode_payload(r: &mut Reader<'_>) -> Result<ProfilePackage, WireError> {
    let mut meta = PackageMeta {
        region: r.u32()?,
        bucket: r.u32()?,
        seeder_id: r.u64()?,
        created_ms: r.u64()?,
        coverage: Coverage {
            funcs_profiled: r.u64()?,
            counter_mass: r.u64()?,
            requests: r.u64()?,
        },
        poison: Poison::None,
    };
    meta.poison = match r.u8()? {
        0 => Poison::None,
        1 => Poison::CompileCrash,
        2 => Poison::RuntimeCrash {
            per_mille: r.u32()? as u16,
        },
        t => return Err(WireError::Corrupt(format!("poison tag {t}"))),
    };
    let n = r.seq()?;
    let mut unit_order = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        unit_order.push(UnitId(r.u32()?));
    }
    let tier = read_tier(r)?;
    let ctx = read_ctx(r)?;
    let n = r.seq()?;
    let mut prop_orders = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let c = ClassId(r.u32()?);
        let m = r.seq()?;
        let mut order = Vec::with_capacity(m.min(1 << 12));
        for _ in 0..m {
            order.push(StrId(r.u32()?));
        }
        prop_orders.push((c, order));
    }
    let n = r.seq()?;
    let mut func_order = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        func_order.push(FuncId(r.u32()?));
    }
    if r.remaining() != 0 {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes",
            r.remaining()
        )));
    }
    Ok(ProfilePackage {
        meta,
        preload: PreloadLists { unit_order },
        tier,
        ctx,
        prop_orders,
        func_order,
    })
}

/// Exact encoded size of the tier-profile section, mirroring
/// [`write_tier`] field for field.
fn tier_encoded_len(tier: &TierProfile) -> usize {
    let mut len = 4;
    for p in tier.funcs.values() {
        len += 4 + 8 + 8; // func id, enter_count, name_hash
        len += 4 + 8 * p.block_counts.len();
        len += 4 + 8 * p.block_hashes.len();
        len += 4 + 8 * p.block_opcode_hashes.len();
        len += 4 + 8 * p.block_neighbor_hashes.len();
        len += 4 + 8 * p.block_anchor_hashes.len();
        len += 4;
        for targets in p.call_targets.values() {
            len += 4 + 4 + (4 + 8) * targets.len();
        }
        len += 4 + (4 + 1 + 8 * ValueKind::ALL.len()) * p.types.len();
        len += 4;
        for classes in p.prop_site_classes.values() {
            len += 4 + 4 + (4 + 8) * classes.len();
        }
    }
    len += 4 + (4 + 4 + 8) * tier.prop_counts.len();
    len += 4 + (4 + 4 + 4 + 8) * tier.prop_pairs.len();
    len
}

/// Exact encoded size of the ctx-profile section, mirroring
/// [`write_ctx`].
fn ctx_encoded_len(ctx: &CtxProfile) -> usize {
    fn ictx_len(ictx: &InlineCtx) -> usize {
        match ictx {
            None => 1,
            Some(_) => 1 + 4 + 4,
        }
    }
    let mut len = 4;
    for (ictx, _, _) in ctx.branches.keys() {
        len += ictx_len(ictx) + 4 + 4 + 8 + 8;
    }
    len += 4;
    for (ictx, _) in ctx.entries.keys() {
        len += ictx_len(ictx) + 4 + 8;
    }
    len
}

fn write_tier(w: &mut Writer, tier: &TierProfile) {
    let mut funcs: Vec<_> = tier.funcs.iter().collect();
    funcs.sort_by_key(|(f, _)| **f);
    w.seq(funcs.len());
    for (f, p) in funcs {
        w.u32(f.0);
        w.u64(p.enter_count);
        w.u64(p.name_hash);
        w.seq(p.block_counts.len());
        for &c in &p.block_counts {
            w.u64(c);
        }
        w.seq(p.block_hashes.len());
        for &h in &p.block_hashes {
            w.u64(h);
        }
        for sig in [
            &p.block_opcode_hashes,
            &p.block_neighbor_hashes,
            &p.block_anchor_hashes,
        ] {
            w.seq(sig.len());
            for &h in sig {
                w.u64(h);
            }
        }
        let mut sites: Vec<_> = p.call_targets.iter().collect();
        sites.sort_by_key(|(s, _)| **s);
        w.seq(sites.len());
        for (s, targets) in sites {
            w.u32(*s);
            let mut ts: Vec<_> = targets.iter().collect();
            ts.sort_by_key(|(f2, _)| **f2);
            w.seq(ts.len());
            for (f2, c) in ts {
                w.u32(f2.0);
                w.u64(*c);
            }
        }
        let mut types: Vec<_> = p.types.iter().collect();
        types.sort_by_key(|((at, slot), _)| (*at, *slot));
        w.seq(types.len());
        for ((at, slot), dist) in types {
            w.u32(*at);
            w.u8(*slot);
            for &c in dist.counts() {
                w.u64(c);
            }
        }
        let mut props: Vec<_> = p.prop_site_classes.iter().collect();
        props.sort_by_key(|(at, _)| **at);
        w.seq(props.len());
        for (at, classes) in props {
            w.u32(*at);
            let mut cs: Vec<_> = classes.iter().collect();
            cs.sort_by_key(|(c, _)| **c);
            w.seq(cs.len());
            for (c, n) in cs {
                w.u32(c.0);
                w.u64(*n);
            }
        }
    }
    let mut counts: Vec<_> = tier.prop_counts.iter().collect();
    counts.sort_by_key(|((c, p), _)| (*c, *p));
    w.seq(counts.len());
    for ((c, p), n) in counts {
        w.u32(c.0);
        w.u32(p.0);
        w.u64(*n);
    }
    let mut pairs: Vec<_> = tier.prop_pairs.iter().collect();
    pairs.sort_by_key(|((c, a, b), _)| (*c, *a, *b));
    w.seq(pairs.len());
    for ((c, a, b), n) in pairs {
        w.u32(c.0);
        w.u32(a.0);
        w.u32(b.0);
        w.u64(*n);
    }
}

fn read_tier(r: &mut Reader<'_>) -> Result<TierProfile, WireError> {
    let mut tier = TierProfile::default();
    let nf = r.seq()?;
    for _ in 0..nf {
        let f = FuncId(r.u32()?);
        let mut p = FuncProfile {
            enter_count: r.u64()?,
            name_hash: r.u64()?,
            ..Default::default()
        };
        let nb = r.seq()?;
        p.block_counts.reserve(nb.min(1 << 16));
        for _ in 0..nb {
            p.block_counts.push(r.u64()?);
        }
        let nh = r.seq()?;
        p.block_hashes.reserve(nh.min(1 << 16));
        for _ in 0..nh {
            p.block_hashes.push(r.u64()?);
        }
        for sig in [
            &mut p.block_opcode_hashes,
            &mut p.block_neighbor_hashes,
            &mut p.block_anchor_hashes,
        ] {
            let n = r.seq()?;
            sig.reserve(n.min(1 << 16));
            for _ in 0..n {
                sig.push(r.u64()?);
            }
        }
        let ns = r.seq()?;
        for _ in 0..ns {
            let site = r.u32()?;
            let nt = r.seq()?;
            let mut targets = std::collections::HashMap::with_capacity(nt.min(1 << 10));
            for _ in 0..nt {
                let callee = FuncId(r.u32()?);
                targets.insert(callee, r.u64()?);
            }
            p.call_targets.insert(site, targets);
        }
        let ny = r.seq()?;
        for _ in 0..ny {
            let at = r.u32()?;
            let slot = r.u8()?;
            let mut dist = TypeDist::default();
            for kind in ValueKind::ALL {
                let c = r.u64()?;
                dist.add_raw(kind, c);
            }
            p.types.insert((at, slot), dist);
        }
        let np = r.seq()?;
        for _ in 0..np {
            let at = r.u32()?;
            let nc = r.seq()?;
            let mut classes = std::collections::HashMap::with_capacity(nc.min(1 << 10));
            for _ in 0..nc {
                let c = ClassId(r.u32()?);
                classes.insert(c, r.u64()?);
            }
            p.prop_site_classes.insert(at, classes);
        }
        tier.funcs.insert(f, p);
    }
    let n = r.seq()?;
    for _ in 0..n {
        let c = ClassId(r.u32()?);
        let p = StrId(r.u32()?);
        tier.prop_counts.insert((c, p), r.u64()?);
    }
    let n = r.seq()?;
    for _ in 0..n {
        let c = ClassId(r.u32()?);
        let a = StrId(r.u32()?);
        let b = StrId(r.u32()?);
        tier.prop_pairs.insert((c, a, b), r.u64()?);
    }
    Ok(tier)
}

fn write_ctx(w: &mut Writer, ctx: &CtxProfile) {
    let mut branches: Vec<_> = ctx.branches.iter().collect();
    branches.sort_by_key(|(k, _)| **k);
    w.seq(branches.len());
    for ((ictx, f, at), b) in branches {
        write_inline_ctx(w, *ictx);
        w.u32(f.0);
        w.u32(*at);
        w.u64(b.taken);
        w.u64(b.not_taken);
    }
    let mut entries: Vec<_> = ctx.entries.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    w.seq(entries.len());
    for ((ictx, f), n) in entries {
        write_inline_ctx(w, *ictx);
        w.u32(f.0);
        w.u64(*n);
    }
}

fn read_ctx(r: &mut Reader<'_>) -> Result<CtxProfile, WireError> {
    let mut ctx = CtxProfile::default();
    let n = r.seq()?;
    for _ in 0..n {
        let ictx = read_inline_ctx(r)?;
        let f = FuncId(r.u32()?);
        let at = r.u32()?;
        let b = BranchCount {
            taken: r.u64()?,
            not_taken: r.u64()?,
        };
        ctx.branches.insert((ictx, f, at), b);
    }
    let n = r.seq()?;
    for _ in 0..n {
        let ictx = read_inline_ctx(r)?;
        let f = FuncId(r.u32()?);
        ctx.entries.insert((ictx, f), r.u64()?);
    }
    Ok(ctx)
}

fn write_inline_ctx(w: &mut Writer, ctx: InlineCtx) {
    match ctx {
        None => w.u8(0),
        Some((f, at)) => {
            w.u8(1);
            w.u32(f.0);
            w.u32(at);
        }
    }
}

fn read_inline_ctx(r: &mut Reader<'_>) -> Result<InlineCtx, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let f = FuncId(r.u32()?);
            let at = r.u32()?;
            Ok(Some((f, at)))
        }
        t => Err(WireError::Corrupt(format!("inline-ctx tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    fn sample_package() -> ProfilePackage {
        let src = r#"
            class C { public $a = 1; public $b = 2; }
            function helper($f) { if ($f) { return 1; } return 2; }
            function main($n) {
                $o = new C();
                $s = $o->a;
                for ($i = 0; $i < $n; $i++) {
                    $s = $s + helper($i % 2) + $o->b;
                }
                return $s;
            }
        "#;
        let repo = hackc::compile_unit("p.hl", src).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..3 {
            vm.call_observed(f, &[Value::Int(20)], &mut col).unwrap();
            col.end_request();
        }
        let c = repo.class_by_name("C").unwrap().id;
        let a = repo.str_id("a").unwrap();
        let b = repo.str_id("b").unwrap();
        ProfilePackage {
            meta: PackageMeta {
                region: 3,
                bucket: 7,
                seeder_id: 42,
                created_ms: 1234,
                coverage: Coverage {
                    funcs_profiled: col.tier.profiled_count() as u64,
                    counter_mass: col.tier.total_counter_mass(),
                    requests: 3,
                },
                poison: Poison::None,
            },
            preload: PreloadLists {
                unit_order: vm.loader().load_order(),
            },
            tier: col.tier,
            ctx: col.ctx,
            prop_orders: vec![(c, vec![b, a])],
            func_order: vec![f],
        }
    }

    #[test]
    fn package_round_trips_exactly() {
        let pkg = sample_package();
        let bytes = pkg.serialize();
        let back = ProfilePackage::deserialize(&bytes).unwrap();
        assert_eq!(pkg, back);
    }

    #[test]
    fn serialization_is_deterministic() {
        let pkg = sample_package();
        assert_eq!(pkg.serialize(), pkg.serialize());
    }

    #[test]
    fn encoded_len_is_exact_and_stable() {
        for pkg in [sample_package(), ProfilePackage::default()] {
            let bytes = pkg.serialize();
            assert_eq!(bytes.len(), pkg.encoded_len() + ENVELOPE_LEN);
            assert_eq!(pkg.approx_size(), bytes.len());
            // Stability: round-tripping must not change the encoded size.
            let back = ProfilePackage::deserialize(&bytes).unwrap();
            assert_eq!(back.encoded_len(), pkg.encoded_len());
            assert_eq!(back.serialize(), bytes);
        }
    }

    #[test]
    fn deserialize_shared_matches_plain_decode() {
        let pkg = sample_package();
        let bytes = pkg.serialize();
        let shared = ProfilePackage::deserialize_shared(&bytes).unwrap();
        let plain = ProfilePackage::deserialize(&bytes).unwrap();
        assert_eq!(shared, plain);
        assert_eq!(shared, pkg);

        // Corruption surfaces identically through the shared path.
        let mut bad = bytes.to_vec();
        bad[20] ^= 0x11;
        assert!(ProfilePackage::deserialize_shared(&Bytes::from(bad)).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_survivable() {
        let pkg = sample_package();
        let bytes = pkg.serialize().to_vec();
        // Flip a sample of bytes: each must produce Err (never panic) or —
        // only for flips inside the magic-length prefix region — a clean
        // structured error.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5a;
            assert!(
                ProfilePackage::deserialize(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncations_never_panic() {
        let pkg = sample_package();
        let bytes = pkg.serialize();
        for len in (0..bytes.len()).step_by(11) {
            assert!(ProfilePackage::deserialize(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn poison_variants_round_trip() {
        for poison in [
            Poison::None,
            Poison::CompileCrash,
            Poison::RuntimeCrash { per_mille: 250 },
        ] {
            let mut pkg = sample_package();
            pkg.meta.poison = poison;
            let back = ProfilePackage::deserialize(&pkg.serialize()).unwrap();
            assert_eq!(back.meta.poison, poison);
        }
    }

    #[test]
    fn empty_package_round_trips() {
        let pkg = ProfilePackage::default();
        let back = ProfilePackage::deserialize(&pkg.serialize()).unwrap();
        assert_eq!(pkg, back);
    }
}
