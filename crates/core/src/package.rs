//! The profile-data package: contents and serialization (paper §IV-B).

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use bytecode::{ClassId, FuncId, StrId, UnitId};
use jit::{BranchCount, CtxProfile, FuncProfile, InlineCtx, TierProfile, TypeDist};
use vm::ValueKind;

use crate::wire::{
    begin_sealed, finish_sealed, unseal, unseal_shared, Reader, WireError, Writer, ENVELOPE_LEN,
};

/// Fault-injection marker for the §VI reliability experiments: a package
/// whose profile data triggers a JIT bug.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Poison {
    /// Healthy package.
    #[default]
    None,
    /// Deterministically crashes JIT compilation — validation (§VI-A.1)
    /// must catch this class.
    CompileCrash,
    /// Latent bug: compiles fine, but each consumer boot crashes with
    /// probability `per_mille`/1000 — the class that can slip through
    /// validation and that randomized selection (§VI-A.2) contains.
    RuntimeCrash {
        /// Crash probability in 1/1000 units.
        per_mille: u16,
    },
}

/// Profile coverage, checked against thresholds before publication
/// (§VI-B).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Functions with any profile data.
    pub funcs_profiled: u64,
    /// Total block-counter mass.
    pub counter_mass: u64,
    /// Requests observed while profiling.
    pub requests: u64,
}

/// Package identification and provenance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackageMeta {
    /// Data-center region the profile was collected in.
    pub region: u32,
    /// Semantic bucket (§II-C).
    pub bucket: u32,
    /// Which seeder produced it.
    pub seeder_id: u64,
    /// Collection timestamp (simulated ms).
    pub created_ms: u64,
    /// Coverage counters.
    pub coverage: Coverage,
    /// Fault-injection marker (always `None` in healthy operation).
    pub poison: Poison,
}

/// Repo global data to preload before compiling (§IV-B category 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PreloadLists {
    /// Units in the order a warmed server loaded them.
    pub unit_order: Vec<UnitId>,
}

/// The complete Jump-Start package.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfilePackage {
    /// Provenance and coverage.
    pub meta: PackageMeta,
    /// Category 1: preload lists.
    pub preload: PreloadLists,
    /// Category 2: tier-1 JIT profile data.
    pub tier: TierProfile,
    /// Category 3: profile data from instrumented optimized code.
    pub ctx: CtxProfile,
    /// Category 4a (intermediate result): per-class physical property
    /// orders (own layer only), from §V-C.
    pub prop_orders: Vec<(ClassId, Vec<StrId>)>,
    /// Category 4b (intermediate result): the function-sorting order, from
    /// §V-B, computed on the seeder.
    pub func_order: Vec<FuncId>,
}

impl ProfilePackage {
    /// Serializes to the sealed wire format. The exact encoded size is
    /// computed up front ([`ProfilePackage::encoded_len`]) and the
    /// envelope is written inline, so the whole package lands in one
    /// exactly-sized buffer: no payload copy, no reallocation.
    pub fn serialize(&self) -> Bytes {
        let payload_len = self.encoded_len();
        let _span = telemetry::span!("package-serialize", "bytes" => payload_len + ENVELOPE_LEN);
        let mut w = Writer::with_capacity(payload_len + ENVELOPE_LEN);
        begin_sealed(&mut w, payload_len);
        let funcs = sorted_funcs(&self.tier);
        let refs = hash_refs(&self.tier);
        write_head(&mut w, self, &funcs);
        for (_, p) in funcs {
            write_func_record(&mut w, p, &refs);
        }
        write_tail(&mut w, self);
        debug_assert_eq!(
            w.len(),
            payload_len + ENVELOPE_LEN - 4,
            "encoded_len must mirror the writers exactly"
        );
        finish_sealed(w)
    }

    /// Exact payload size [`ProfilePackage::serialize`] will produce
    /// (excluding the envelope), mirroring the writers field for field.
    ///
    /// The payload is the concatenation of three regions — head (meta +
    /// preload + function count), one record per profiled function in
    /// `FuncId` order, and the tail (property counters, ctx profile,
    /// orders) — which is exactly how [`crate::chunk`] slices it into
    /// content-addressed chunks.
    pub fn encoded_len(&self) -> usize {
        let mut len = head_encoded_len(self);
        let refs = hash_refs(&self.tier);
        for p in self.tier.funcs.values() {
            len += func_record_len(p, &refs);
        }
        len + tail_encoded_len(self)
    }

    /// Deserializes from the sealed wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any corruption; never panics.
    pub fn deserialize(data: &[u8]) -> Result<ProfilePackage, WireError> {
        let payload = unseal(data)?;
        let version = crate::wire::sealed_version(data);
        let mut r = Reader::new(payload);
        decode_payload(&mut r, version)
    }

    /// Deserializes from shared bytes (a stored package): the payload is
    /// accessed as a zero-copy slice of `data`'s backing allocation —
    /// no intermediate payload `Vec`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any corruption; never panics.
    pub fn deserialize_shared(data: &Bytes) -> Result<ProfilePackage, WireError> {
        let payload = unseal_shared(data)?;
        let version = crate::wire::sealed_version(data);
        let mut r = Reader::new_shared(&payload);
        decode_payload(&mut r, version)
    }

    /// Exact serialized size in bytes without serializing.
    pub fn approx_size(&self) -> usize {
        self.encoded_len() + ENVELOPE_LEN
    }
}

fn decode_payload(r: &mut Reader<'_>, version: u32) -> Result<ProfilePackage, WireError> {
    let mut tier = TierProfile::default();
    let (meta, preload) = if version >= 6 {
        let (meta, preload, dir) = read_head(r)?;
        for i in 0..dir.len() {
            let p = read_func_record(r, &dir)?;
            if p.name_hash != dir.hashes[i] {
                return Err(WireError::Corrupt(format!(
                    "record {i} name hash {:#018x} disagrees with the head directory",
                    p.name_hash
                )));
            }
            tier.funcs.insert(dir.ids[i], p);
        }
        (meta, preload)
    } else {
        let (meta, preload, nfuncs) = read_head_v5(r)?;
        for _ in 0..nfuncs {
            let (f, p) = read_func_record_v5(r)?;
            tier.funcs.insert(f, p);
        }
        (meta, preload)
    };
    let (ctx, prop_orders, func_order) = read_tail(r, &mut tier)?;
    if r.remaining() != 0 {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes",
            r.remaining()
        )));
    }
    Ok(ProfilePackage {
        meta,
        preload,
        tier,
        ctx,
        prop_orders,
        func_order,
    })
}

/// The tier's functions in `FuncId` order — the canonical record order of
/// the payload's function region (and the chunk order of
/// [`crate::chunk::chunk_package`]).
pub(crate) fn sorted_funcs(tier: &TierProfile) -> Vec<(&FuncId, &FuncProfile)> {
    let mut funcs: Vec<_> = tier.funcs.iter().collect();
    funcs.sort_by_key(|(f, _)| **f);
    funcs
}

/// Function-identity directory of a v6+ payload head: the per-record
/// `FuncId`s in payload order, plus name-hash → `FuncId` resolution for
/// the id-free call-target references inside function records.
///
/// Function records deliberately carry no raw `FuncId`s (see
/// [`write_func_record`]): a new release renumbers functions wholesale
/// when units are inserted or reordered, so any raw id embedded in a
/// record would change its bytes — and therefore its content-addressed
/// chunk ([`crate::chunk`]) — even though the profile itself is
/// unchanged. Identity lives here in the head, which every push ships
/// anyway.
#[derive(Debug, Default)]
pub(crate) struct FuncDirectory {
    /// Record-order `FuncId`s (strictly ascending — the payload's
    /// function-record order).
    pub ids: Vec<FuncId>,
    /// Name hashes parallel to `ids`.
    pub hashes: Vec<u64>,
    /// Resolution map over the usable (nonzero, unambiguous) hashes.
    by_hash: HashMap<u64, FuncId>,
}

impl FuncDirectory {
    /// Builds the directory from `(id, name_hash)` pairs in record order.
    pub fn new(pairs: Vec<(FuncId, u64)>) -> Self {
        let by_hash = usable_hashes(pairs.iter().copied());
        let (ids, hashes) = pairs.into_iter().unzip();
        Self {
            ids,
            hashes,
            by_hash,
        }
    }

    /// Number of function records in the payload.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Resolves a callee name hash back to this package's `FuncId`.
    pub fn resolve(&self, hash: u64) -> Option<FuncId> {
        self.by_hash.get(&hash).copied()
    }
}

/// The hash → id map over hashes usable as record references: nonzero
/// and unique across the package's functions. Zero (an unset hash) and
/// duplicated hashes fall back to raw-id encoding on the write side, so
/// both sides must agree on exactly this set.
fn usable_hashes(pairs: impl Iterator<Item = (FuncId, u64)>) -> HashMap<u64, FuncId> {
    let mut map: HashMap<u64, FuncId> = HashMap::new();
    let mut dup: HashSet<u64> = HashSet::new();
    for (f, h) in pairs {
        if h == 0 {
            continue;
        }
        if map.insert(h, f).is_some() {
            dup.insert(h);
        }
    }
    for h in &dup {
        map.remove(h);
    }
    map
}

/// Write-side view of which callees can be referenced by name hash —
/// the exact inverse of [`FuncDirectory::resolve`] over the same tier.
pub(crate) struct HashRefs {
    by_id: HashMap<FuncId, u64>,
}

impl HashRefs {
    /// The reference hash for `f`, if it is hash-encodable.
    fn hash_of(&self, f: FuncId) -> Option<u64> {
        self.by_id.get(&f).copied()
    }
}

/// Builds the write-side hash-reference view of a tier.
pub(crate) fn hash_refs(tier: &TierProfile) -> HashRefs {
    let usable = usable_hashes(tier.funcs.iter().map(|(f, p)| (*f, p.name_hash)));
    HashRefs {
        by_id: usable.into_iter().map(|(h, f)| (f, h)).collect(),
    }
}

/// Writes the payload head: package meta, preload lists, the count of
/// function records that follow, and the function-identity directory
/// ([`FuncDirectory`]) in record order.
pub(crate) fn write_head(w: &mut Writer, pkg: &ProfilePackage, funcs: &[(&FuncId, &FuncProfile)]) {
    write_head_common(w, pkg, funcs.len());
    for (f, p) in funcs {
        w.u32(f.0);
        w.u64(p.name_hash);
    }
}

/// The head fields shared by every payload version: meta, preload lists,
/// function-record count (v5 heads stop here).
fn write_head_common(w: &mut Writer, pkg: &ProfilePackage, nfuncs: usize) {
    w.u32(pkg.meta.region);
    w.u32(pkg.meta.bucket);
    w.u64(pkg.meta.seeder_id);
    w.u64(pkg.meta.created_ms);
    w.u64(pkg.meta.coverage.funcs_profiled);
    w.u64(pkg.meta.coverage.counter_mass);
    w.u64(pkg.meta.coverage.requests);
    match pkg.meta.poison {
        Poison::None => w.u8(0),
        Poison::CompileCrash => w.u8(1),
        Poison::RuntimeCrash { per_mille } => {
            w.u8(2);
            w.u32(per_mille as u32);
        }
    }
    w.seq(pkg.preload.unit_order.len());
    for u in &pkg.preload.unit_order {
        w.u32(u.0);
    }
    w.seq(nfuncs);
}

/// Exact encoded size of the payload head, mirroring [`write_head`].
pub(crate) fn head_encoded_len(pkg: &ProfilePackage) -> usize {
    // meta: region, bucket (u32) + seeder, created, 3×coverage (u64).
    let mut len = 4 + 4 + 5 * 8;
    len += match pkg.meta.poison {
        Poison::RuntimeCrash { .. } => 1 + 4,
        _ => 1,
    };
    len += 4 + 4 * pkg.preload.unit_order.len();
    len += 4; // function-record count
    len + (4 + 8) * pkg.tier.funcs.len() // function-identity directory
}

/// Reads a v6+ payload head back: meta, preload, and the
/// function-identity directory.
pub(crate) fn read_head(
    r: &mut Reader<'_>,
) -> Result<(PackageMeta, PreloadLists, FuncDirectory), WireError> {
    let (meta, preload, nfuncs) = read_head_v5(r)?;
    let mut pairs = Vec::with_capacity(nfuncs.min(1 << 20));
    for _ in 0..nfuncs {
        let f = FuncId(r.u32()?);
        pairs.push((f, r.u64()?));
    }
    if !pairs.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(WireError::Corrupt("function directory out of order".into()));
    }
    Ok((meta, preload, FuncDirectory::new(pairs)))
}

/// Reads the version-independent head prefix: meta, preload,
/// function-record count. This is the complete head of a v5 payload.
pub(crate) fn read_head_v5(
    r: &mut Reader<'_>,
) -> Result<(PackageMeta, PreloadLists, usize), WireError> {
    let mut meta = PackageMeta {
        region: r.u32()?,
        bucket: r.u32()?,
        seeder_id: r.u64()?,
        created_ms: r.u64()?,
        coverage: Coverage {
            funcs_profiled: r.u64()?,
            counter_mass: r.u64()?,
            requests: r.u64()?,
        },
        poison: Poison::None,
    };
    meta.poison = match r.u8()? {
        0 => Poison::None,
        1 => Poison::CompileCrash,
        2 => Poison::RuntimeCrash {
            per_mille: r.u32()? as u16,
        },
        t => return Err(WireError::Corrupt(format!("poison tag {t}"))),
    };
    let n = r.seq()?;
    let mut unit_order = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        unit_order.push(UnitId(r.u32()?));
    }
    let nfuncs = r.seq()?;
    Ok((meta, PreloadLists { unit_order }, nfuncs))
}

/// Writes the payload tail: tier-level property counters, the ctx
/// profile, property orders and the function order.
pub(crate) fn write_tail(w: &mut Writer, pkg: &ProfilePackage) {
    let mut counts: Vec<_> = pkg.tier.prop_counts.iter().collect();
    counts.sort_by_key(|((c, p), _)| (*c, *p));
    w.seq(counts.len());
    for ((c, p), n) in counts {
        w.u32(c.0);
        w.u32(p.0);
        w.u64(*n);
    }
    let mut pairs: Vec<_> = pkg.tier.prop_pairs.iter().collect();
    pairs.sort_by_key(|((c, a, b), _)| (*c, *a, *b));
    w.seq(pairs.len());
    for ((c, a, b), n) in pairs {
        w.u32(c.0);
        w.u32(a.0);
        w.u32(b.0);
        w.u64(*n);
    }
    write_ctx(w, &pkg.ctx);
    w.seq(pkg.prop_orders.len());
    for (c, order) in &pkg.prop_orders {
        w.u32(c.0);
        w.seq(order.len());
        for s in order {
            w.u32(s.0);
        }
    }
    w.seq(pkg.func_order.len());
    for f in &pkg.func_order {
        w.u32(f.0);
    }
}

/// Exact encoded size of the payload tail, mirroring [`write_tail`].
pub(crate) fn tail_encoded_len(pkg: &ProfilePackage) -> usize {
    let mut len = 4 + (4 + 4 + 8) * pkg.tier.prop_counts.len();
    len += 4 + (4 + 4 + 4 + 8) * pkg.tier.prop_pairs.len();
    len += ctx_encoded_len(&pkg.ctx);
    len += 4;
    for (_, order) in &pkg.prop_orders {
        len += 4 + 4 + 4 * order.len();
    }
    len + 4 + 4 * pkg.func_order.len()
}

/// The non-function parts decoded from the payload tail: ctx profile,
/// property orders, function order.
pub(crate) type TailParts = (CtxProfile, Vec<(ClassId, Vec<StrId>)>, Vec<FuncId>);

/// Reads the payload tail back, filling `tier`'s property counters and
/// returning the remaining package parts.
pub(crate) fn read_tail(
    r: &mut Reader<'_>,
    tier: &mut TierProfile,
) -> Result<TailParts, WireError> {
    let n = r.seq()?;
    for _ in 0..n {
        let c = ClassId(r.u32()?);
        let p = StrId(r.u32()?);
        tier.prop_counts.insert((c, p), r.u64()?);
    }
    let n = r.seq()?;
    for _ in 0..n {
        let c = ClassId(r.u32()?);
        let a = StrId(r.u32()?);
        let b = StrId(r.u32()?);
        tier.prop_pairs.insert((c, a, b), r.u64()?);
    }
    let ctx = read_ctx(r)?;
    let n = r.seq()?;
    let mut prop_orders = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let c = ClassId(r.u32()?);
        let m = r.seq()?;
        let mut order = Vec::with_capacity(m.min(1 << 12));
        for _ in 0..m {
            order.push(StrId(r.u32()?));
        }
        prop_orders.push((c, order));
    }
    let n = r.seq()?;
    let mut func_order = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        func_order.push(FuncId(r.u32()?));
    }
    Ok((ctx, prop_orders, func_order))
}

/// Exact encoded size of one function record, mirroring
/// [`write_func_record`] — the chunk length of that function's chunk.
pub(crate) fn func_record_len(p: &FuncProfile, refs: &HashRefs) -> usize {
    let mut len = 8 + 8; // enter_count, name_hash
    len += 4 + 8 * p.block_counts.len();
    len += 4 + 8 * p.block_hashes.len();
    len += 4 + 8 * p.block_opcode_hashes.len();
    len += 4 + 8 * p.block_neighbor_hashes.len();
    len += 4 + 8 * p.block_anchor_hashes.len();
    len += 4;
    for targets in p.call_targets.values() {
        len += 4 + 4; // site, target count
        for f2 in targets.keys() {
            // tag + (name hash | raw id) + count
            len += 1 + if refs.hash_of(*f2).is_some() { 8 } else { 4 } + 8;
        }
    }
    len += 4 + (4 + 1 + 8 * ValueKind::ALL.len()) * p.types.len();
    len += 4;
    for classes in p.prop_site_classes.values() {
        len += 4 + 4 + (4 + 8) * classes.len();
    }
    len
}

/// Exact encoded size of the ctx-profile section, mirroring
/// [`write_ctx`].
fn ctx_encoded_len(ctx: &CtxProfile) -> usize {
    fn ictx_len(ictx: &InlineCtx) -> usize {
        match ictx {
            None => 1,
            Some(_) => 1 + 4 + 4,
        }
    }
    let mut len = 4;
    for (ictx, _, _) in ctx.branches.keys() {
        len += ictx_len(ictx) + 4 + 4 + 8 + 8;
    }
    len += 4;
    for (ictx, _) in ctx.entries.keys() {
        len += ictx_len(ictx) + 4 + 8;
    }
    len
}

/// Writes one function's tier-profile record. Records are
/// self-delimiting ([`func_record_len`]) and deliberately id-free: the
/// function's identity lives in the head directory and call targets are
/// referenced by callee *name hash* (with a raw-id fallback for refs the
/// package cannot hash), so an unchanged profile encodes to
/// byte-identical — and therefore chunk-identical — bytes even when a
/// release renumbers every `FuncId`. One record is exactly one
/// content-addressed chunk.
pub(crate) fn write_func_record(w: &mut Writer, p: &FuncProfile, refs: &HashRefs) {
    w.u64(p.enter_count);
    w.u64(p.name_hash);
    w.seq(p.block_counts.len());
    for &c in &p.block_counts {
        w.u64(c);
    }
    w.seq(p.block_hashes.len());
    for &h in &p.block_hashes {
        w.u64(h);
    }
    for sig in [
        &p.block_opcode_hashes,
        &p.block_neighbor_hashes,
        &p.block_anchor_hashes,
    ] {
        w.seq(sig.len());
        for &h in sig {
            w.u64(h);
        }
    }
    let mut sites: Vec<_> = p.call_targets.iter().collect();
    sites.sort_by_key(|(s, _)| **s);
    w.seq(sites.len());
    for (s, targets) in sites {
        w.u32(*s);
        // Hash-keyed refs first (sorted by hash), raw-id fallbacks after
        // (sorted by id) — a deterministic order that does not depend on
        // the release's FuncId numbering.
        let mut ts: Vec<(u8, u64, u64)> = targets
            .iter()
            .map(|(f2, c)| match refs.hash_of(*f2) {
                Some(h) => (0u8, h, *c),
                None => (1u8, f2.0 as u64, *c),
            })
            .collect();
        ts.sort_unstable();
        w.seq(ts.len());
        for (tag, key, c) in ts {
            w.u8(tag);
            match tag {
                0 => w.u64(key),
                _ => w.u32(key as u32),
            }
            w.u64(c);
        }
    }
    let mut types: Vec<_> = p.types.iter().collect();
    types.sort_by_key(|((at, slot), _)| (*at, *slot));
    w.seq(types.len());
    for ((at, slot), dist) in types {
        w.u32(*at);
        w.u8(*slot);
        for &c in dist.counts() {
            w.u64(c);
        }
    }
    let mut props: Vec<_> = p.prop_site_classes.iter().collect();
    props.sort_by_key(|(at, _)| **at);
    w.seq(props.len());
    for (at, classes) in props {
        w.u32(*at);
        let mut cs: Vec<_> = classes.iter().collect();
        cs.sort_by_key(|(c, _)| **c);
        w.seq(cs.len());
        for (c, n) in cs {
            w.u32(c.0);
            w.u64(*n);
        }
    }
}

/// Reads one function's tier-profile record back (v6+ layout), resolving
/// hash-keyed call-target references through the head directory. The
/// record's own `FuncId` comes from the directory position (monolithic
/// decode) or the manifest entry (lazy decode), not the record bytes.
pub(crate) fn read_func_record(
    r: &mut Reader<'_>,
    dir: &FuncDirectory,
) -> Result<FuncProfile, WireError> {
    let mut p = FuncProfile {
        enter_count: r.u64()?,
        name_hash: r.u64()?,
        ..Default::default()
    };
    read_record_blocks(r, &mut p)?;
    let ns = r.seq()?;
    for _ in 0..ns {
        let site = r.u32()?;
        let nt = r.seq()?;
        let mut targets = HashMap::with_capacity(nt.min(1 << 10));
        for _ in 0..nt {
            let callee = match r.u8()? {
                0 => {
                    let h = r.u64()?;
                    dir.resolve(h).ok_or_else(|| {
                        WireError::Corrupt(format!("unresolvable callee hash {h:#018x}"))
                    })?
                }
                1 => FuncId(r.u32()?),
                t => return Err(WireError::Corrupt(format!("callee ref tag {t}"))),
            };
            targets.insert(callee, r.u64()?);
        }
        p.call_targets.insert(site, targets);
    }
    read_record_sites(r, &mut p)?;
    Ok(p)
}

/// Reads one function's tier-profile record in the v5 layout: a leading
/// raw `FuncId` and raw-id call-target references.
pub(crate) fn read_func_record_v5(r: &mut Reader<'_>) -> Result<(FuncId, FuncProfile), WireError> {
    let f = FuncId(r.u32()?);
    let mut p = FuncProfile {
        enter_count: r.u64()?,
        name_hash: r.u64()?,
        ..Default::default()
    };
    read_record_blocks(r, &mut p)?;
    let ns = r.seq()?;
    for _ in 0..ns {
        let site = r.u32()?;
        let nt = r.seq()?;
        let mut targets = HashMap::with_capacity(nt.min(1 << 10));
        for _ in 0..nt {
            let callee = FuncId(r.u32()?);
            targets.insert(callee, r.u64()?);
        }
        p.call_targets.insert(site, targets);
    }
    read_record_sites(r, &mut p)?;
    Ok((f, p))
}

/// Reads the block-counter and signature arrays shared by every record
/// layout.
fn read_record_blocks(r: &mut Reader<'_>, p: &mut FuncProfile) -> Result<(), WireError> {
    let nb = r.seq()?;
    p.block_counts.reserve(nb.min(1 << 16));
    for _ in 0..nb {
        p.block_counts.push(r.u64()?);
    }
    let nh = r.seq()?;
    p.block_hashes.reserve(nh.min(1 << 16));
    for _ in 0..nh {
        p.block_hashes.push(r.u64()?);
    }
    for sig in [
        &mut p.block_opcode_hashes,
        &mut p.block_neighbor_hashes,
        &mut p.block_anchor_hashes,
    ] {
        let n = r.seq()?;
        sig.reserve(n.min(1 << 16));
        for _ in 0..n {
            sig.push(r.u64()?);
        }
    }
    Ok(())
}

/// Reads the type-distribution and property-site sections shared by
/// every record layout.
fn read_record_sites(r: &mut Reader<'_>, p: &mut FuncProfile) -> Result<(), WireError> {
    let ny = r.seq()?;
    for _ in 0..ny {
        let at = r.u32()?;
        let slot = r.u8()?;
        let mut dist = TypeDist::default();
        for kind in ValueKind::ALL {
            let c = r.u64()?;
            dist.add_raw(kind, c);
        }
        p.types.insert((at, slot), dist);
    }
    let np = r.seq()?;
    for _ in 0..np {
        let at = r.u32()?;
        let nc = r.seq()?;
        let mut classes = HashMap::with_capacity(nc.min(1 << 10));
        for _ in 0..nc {
            let c = ClassId(r.u32()?);
            classes.insert(c, r.u64()?);
        }
        p.prop_site_classes.insert(at, classes);
    }
    Ok(())
}

fn write_ctx(w: &mut Writer, ctx: &CtxProfile) {
    let mut branches: Vec<_> = ctx.branches.iter().collect();
    branches.sort_by_key(|(k, _)| **k);
    w.seq(branches.len());
    for ((ictx, f, at), b) in branches {
        write_inline_ctx(w, *ictx);
        w.u32(f.0);
        w.u32(*at);
        w.u64(b.taken);
        w.u64(b.not_taken);
    }
    let mut entries: Vec<_> = ctx.entries.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    w.seq(entries.len());
    for ((ictx, f), n) in entries {
        write_inline_ctx(w, *ictx);
        w.u32(f.0);
        w.u64(*n);
    }
}

fn read_ctx(r: &mut Reader<'_>) -> Result<CtxProfile, WireError> {
    let mut ctx = CtxProfile::default();
    let n = r.seq()?;
    for _ in 0..n {
        let ictx = read_inline_ctx(r)?;
        let f = FuncId(r.u32()?);
        let at = r.u32()?;
        let b = BranchCount {
            taken: r.u64()?,
            not_taken: r.u64()?,
        };
        ctx.branches.insert((ictx, f, at), b);
    }
    let n = r.seq()?;
    for _ in 0..n {
        let ictx = read_inline_ctx(r)?;
        let f = FuncId(r.u32()?);
        ctx.entries.insert((ictx, f), r.u64()?);
    }
    Ok(ctx)
}

fn write_inline_ctx(w: &mut Writer, ctx: InlineCtx) {
    match ctx {
        None => w.u8(0),
        Some((f, at)) => {
            w.u8(1);
            w.u32(f.0);
            w.u32(at);
        }
    }
}

fn read_inline_ctx(r: &mut Reader<'_>) -> Result<InlineCtx, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let f = FuncId(r.u32()?);
            let at = r.u32()?;
            Ok(Some((f, at)))
        }
        t => Err(WireError::Corrupt(format!("inline-ctx tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    fn sample_package() -> ProfilePackage {
        let src = r#"
            class C { public $a = 1; public $b = 2; }
            function helper($f) { if ($f) { return 1; } return 2; }
            function main($n) {
                $o = new C();
                $s = $o->a;
                for ($i = 0; $i < $n; $i++) {
                    $s = $s + helper($i % 2) + $o->b;
                }
                return $s;
            }
        "#;
        let repo = hackc::compile_unit("p.hl", src).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..3 {
            vm.call_observed(f, &[Value::Int(20)], &mut col).unwrap();
            col.end_request();
        }
        let c = repo.class_by_name("C").unwrap().id;
        let a = repo.str_id("a").unwrap();
        let b = repo.str_id("b").unwrap();
        ProfilePackage {
            meta: PackageMeta {
                region: 3,
                bucket: 7,
                seeder_id: 42,
                created_ms: 1234,
                coverage: Coverage {
                    funcs_profiled: col.tier.profiled_count() as u64,
                    counter_mass: col.tier.total_counter_mass(),
                    requests: 3,
                },
                poison: Poison::None,
            },
            preload: PreloadLists {
                unit_order: vm.loader().load_order(),
            },
            tier: col.tier,
            ctx: col.ctx,
            prop_orders: vec![(c, vec![b, a])],
            func_order: vec![f],
        }
    }

    #[test]
    fn package_round_trips_exactly() {
        let pkg = sample_package();
        let bytes = pkg.serialize();
        let back = ProfilePackage::deserialize(&bytes).unwrap();
        assert_eq!(pkg, back);
    }

    #[test]
    fn serialization_is_deterministic() {
        let pkg = sample_package();
        assert_eq!(pkg.serialize(), pkg.serialize());
    }

    #[test]
    fn encoded_len_is_exact_and_stable() {
        for pkg in [sample_package(), ProfilePackage::default()] {
            let bytes = pkg.serialize();
            assert_eq!(bytes.len(), pkg.encoded_len() + ENVELOPE_LEN);
            assert_eq!(pkg.approx_size(), bytes.len());
            // Stability: round-tripping must not change the encoded size.
            let back = ProfilePackage::deserialize(&bytes).unwrap();
            assert_eq!(back.encoded_len(), pkg.encoded_len());
            assert_eq!(back.serialize(), bytes);
        }
    }

    #[test]
    fn deserialize_shared_matches_plain_decode() {
        let pkg = sample_package();
        let bytes = pkg.serialize();
        let shared = ProfilePackage::deserialize_shared(&bytes).unwrap();
        let plain = ProfilePackage::deserialize(&bytes).unwrap();
        assert_eq!(shared, plain);
        assert_eq!(shared, pkg);

        // Corruption surfaces identically through the shared path.
        let mut bad = bytes.to_vec();
        bad[20] ^= 0x11;
        assert!(ProfilePackage::deserialize_shared(&Bytes::from(bad)).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_survivable() {
        let pkg = sample_package();
        let bytes = pkg.serialize().to_vec();
        // Flip a sample of bytes: each must produce Err (never panic) or —
        // only for flips inside the magic-length prefix region — a clean
        // structured error.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5a;
            assert!(
                ProfilePackage::deserialize(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncations_never_panic() {
        let pkg = sample_package();
        let bytes = pkg.serialize();
        for len in (0..bytes.len()).step_by(11) {
            assert!(ProfilePackage::deserialize(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn poison_variants_round_trip() {
        for poison in [
            Poison::None,
            Poison::CompileCrash,
            Poison::RuntimeCrash { per_mille: 250 },
        ] {
            let mut pkg = sample_package();
            pkg.meta.poison = poison;
            let back = ProfilePackage::deserialize(&pkg.serialize()).unwrap();
            assert_eq!(back.meta.poison, poison);
        }
    }

    #[test]
    fn empty_package_round_trips() {
        let pkg = ProfilePackage::default();
        let back = ProfilePackage::deserialize(&pkg.serialize()).unwrap();
        assert_eq!(pkg, back);
    }

    /// Encodes `pkg` in the v5 payload layout — raw-id records, no head
    /// directory — and seals it under a v5 version envelope, exactly
    /// what a v5 seeder would have produced.
    fn serialize_v5(pkg: &ProfilePackage) -> Vec<u8> {
        let mut w = Writer::new();
        let funcs = sorted_funcs(&pkg.tier);
        write_head_common(&mut w, pkg, funcs.len());
        for (f, p) in funcs {
            w.u32(f.0);
            w.u64(p.enter_count);
            w.u64(p.name_hash);
            w.seq(p.block_counts.len());
            for &c in &p.block_counts {
                w.u64(c);
            }
            w.seq(p.block_hashes.len());
            for &h in &p.block_hashes {
                w.u64(h);
            }
            for sig in [
                &p.block_opcode_hashes,
                &p.block_neighbor_hashes,
                &p.block_anchor_hashes,
            ] {
                w.seq(sig.len());
                for &h in sig {
                    w.u64(h);
                }
            }
            let mut sites: Vec<_> = p.call_targets.iter().collect();
            sites.sort_by_key(|(s, _)| **s);
            w.seq(sites.len());
            for (s, targets) in sites {
                w.u32(*s);
                let mut ts: Vec<_> = targets.iter().collect();
                ts.sort_by_key(|(f2, _)| **f2);
                w.seq(ts.len());
                for (f2, c) in ts {
                    w.u32(f2.0);
                    w.u64(*c);
                }
            }
            let mut types: Vec<_> = p.types.iter().collect();
            types.sort_by_key(|((at, slot), _)| (*at, *slot));
            w.seq(types.len());
            for ((at, slot), dist) in types {
                w.u32(*at);
                w.u8(*slot);
                for &c in dist.counts() {
                    w.u64(c);
                }
            }
            let mut props: Vec<_> = p.prop_site_classes.iter().collect();
            props.sort_by_key(|(at, _)| **at);
            w.seq(props.len());
            for (at, classes) in props {
                w.u32(*at);
                let mut cs: Vec<_> = classes.iter().collect();
                cs.sort_by_key(|(c, _)| **c);
                w.seq(cs.len());
                for (c, n) in cs {
                    w.u32(c.0);
                    w.u64(*n);
                }
            }
        }
        write_tail(&mut w, pkg);
        let mut sealed = crate::wire::seal(w.finish()).to_vec();
        sealed[8..12].copy_from_slice(&crate::wire::MIN_VERSION.to_le_bytes());
        sealed
    }

    #[test]
    fn v5_payloads_still_deserialize() {
        for pkg in [sample_package(), ProfilePackage::default()] {
            let sealed = serialize_v5(&pkg);
            let back =
                ProfilePackage::deserialize(&sealed).expect("v5 payloads decode via the v5 path");
            assert_eq!(back, pkg);
            // Re-serializing upgrades to the current id-free layout, which
            // still round-trips.
            let v6 = back.serialize();
            assert_eq!(ProfilePackage::deserialize(&v6).unwrap(), pkg);
        }
    }

    #[test]
    fn records_reference_callees_by_name_hash_not_id() {
        // Renumber every FuncId in the package; the per-function record
        // bytes must be unaffected (identity lives in the head directory),
        // which is what keeps content-addressed chunks stable across
        // releases that insert or reorder units.
        let pkg = sample_package();
        let shift = |f: FuncId| FuncId(f.0 + 1000);
        let mut pkg2 = pkg.clone();
        pkg2.tier.funcs = pkg
            .tier
            .funcs
            .iter()
            .map(|(f, p)| {
                let mut p = p.clone();
                for targets in p.call_targets.values_mut() {
                    *targets = targets.iter().map(|(f2, c)| (shift(*f2), *c)).collect();
                }
                (shift(*f), p)
            })
            .collect();
        pkg2.func_order = pkg.func_order.iter().map(|f| shift(*f)).collect();

        // Both packages round-trip losslessly...
        assert_eq!(
            ProfilePackage::deserialize(&pkg2.serialize()).unwrap(),
            pkg2
        );
        // ... and their function-record regions are byte-identical: only
        // the head (directory ids) and tail (func_order) moved.
        let refs = hash_refs(&pkg.tier);
        let a = pkg.serialize();
        let b = pkg2.serialize();
        let head_a = head_encoded_len(&pkg);
        let funcs_len: usize = pkg
            .tier
            .funcs
            .values()
            .map(|p| func_record_len(p, &refs))
            .sum();
        use crate::wire::HEADER_LEN;
        let records_a = &a[HEADER_LEN + head_a..HEADER_LEN + head_a + funcs_len];
        let head_b = head_encoded_len(&pkg2);
        let records_b = &b[HEADER_LEN + head_b..HEADER_LEN + head_b + funcs_len];
        assert_eq!(
            records_a, records_b,
            "renumbering FuncIds must not change one record byte"
        );
    }
}
