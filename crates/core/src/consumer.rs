//! The consumer workflow (Fig. 3c): deserialize → lint (and repair, if
//! the profile is stale) → preload → compile all optimized code through
//! the streaming work-stealing pipeline → ready to serve.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use analysis::{
    is_own_layer_order, lint_profile_with, repair_profile, LintOptions, ProfileView, RepairReport,
};
use bytecode::{ClassId, FuncId, Repo, StrId, UnitId};
use jit::{CtxProfile, JitEngine, JitOptions, TierProfile, WeightSource};
use vm::ClassTable;

use crate::chunk::{ChunkPool, LazyLoader, Manifest};
use crate::config::{FuncSort, JumpStartOptions, PropReorder};
use crate::package::{Poison, ProfilePackage};
use crate::pipeline::{self, BootStats, EarlyServe, PipelineJob, WorkerStats};
use crate::wire::WireError;

/// Consumer failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsumerError {
    /// The package failed to decode.
    Wire(WireError),
    /// The profile data triggered a (simulated) JIT compiler crash —
    /// §VI-A's widespread-bug scenario.
    JitCrash,
    /// The static linter found structural errors the stale-profile
    /// repairer could not fix — the package cannot describe this repo.
    InvalidProfile {
        /// Error-severity diagnostics remaining after repair.
        errors: usize,
        /// The first diagnostic, rendered.
        first: String,
    },
}

impl std::fmt::Display for ConsumerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsumerError::Wire(e) => write!(f, "package decode failed: {e}"),
            ConsumerError::JitCrash => write!(f, "JIT crashed while compiling profile data"),
            ConsumerError::InvalidProfile { errors, first } => {
                write!(
                    f,
                    "profile failed static lint ({errors} errors, unrepairable): {first}"
                )
            }
        }
    }
}

impl std::error::Error for ConsumerError {}

impl From<WireError> for ConsumerError {
    fn from(e: WireError) -> Self {
        ConsumerError::Wire(e)
    }
}

/// What a successful consumer boot produces: a fully-compiled engine plus
/// the state the executor needs (property slots, unit layout).
#[derive(Debug)]
pub struct ConsumerOutcome<'r> {
    /// The engine holding all optimized translations.
    pub engine: JitEngine<'r>,
    /// Physical slot per (class, property) under the installed layout.
    pub prop_slots: HashMap<(ClassId, StrId), u16>,
    /// Unit preload order applied.
    pub unit_order: Vec<UnitId>,
    /// Functions compiled to optimized code.
    pub compiled_funcs: usize,
    /// Bytes of optimized code emitted.
    pub compile_bytes: u64,
    /// Set when the package failed the structural lint and was repaired
    /// (stale counters remapped, dead entries pruned) before consumption.
    pub repair: Option<RepairReport>,
    /// Boot-phase timeline: decode, lint/repair, prop slots, per-worker
    /// translate busy/steal/stall, emit, bytes (the `jsboot` telemetry).
    /// Rendered from [`ConsumerOutcome::registry`].
    pub boot: BootStats,
    /// The per-boot metrics registry: the `boot.*` gauges behind `boot`,
    /// plus pipeline-time histograms (`pipeline.translate_ns`,
    /// `pipeline.emit_ns`) and the `pipeline.steals` counter. Fleet runs
    /// snapshot this per server and aggregate across the fleet.
    pub registry: telemetry::Registry,
}

/// The profile parts of a package after lint-and-repair, owned because
/// repair mutates them. `None` means the package was consumable as-is.
struct OwnedProfile {
    tier: TierProfile,
    ctx: CtxProfile,
    unit_order: Vec<UnitId>,
    prop_orders: Vec<(ClassId, Vec<StrId>)>,
    func_order: Vec<FuncId>,
}

/// Consumers hold every profile — fresh or repaired — to the Kirchhoff
/// flow-conservation standard: the stale matcher's count inference
/// produces flow-consistent counters by construction, so a violation
/// after repair means the package cannot describe this repo. Type
/// feasibility stays a warning: an impossible observation skews layout
/// but cannot feed garbage into translation.
const CONSUMER_LINT: LintOptions = LintOptions {
    flow_conservation: true,
    type_feasibility: false,
};

fn lint_errors(repo: &Repo, view: &ProfileView<'_>) -> usize {
    lint_profile_with(repo, view, &CONSUMER_LINT).error_count()
}

/// Mirrors a repair report into the boot registry as `repair.*` counters,
/// so fleet aggregation sees per-boot match-ladder quality alongside the
/// `boot.*` timeline.
fn record_repair(registry: &telemetry::Registry, report: &RepairReport) {
    let s = &report.stats;
    for (name, v) in [
        ("repair.funcs_repaired", report.repaired.len() as u64),
        ("repair.funcs_dropped", report.dropped.len() as u64),
        ("repair.counters_pruned", report.pruned as u64),
        ("repair.funcs_fresh", s.funcs_fresh),
        ("repair.funcs_renamed", s.funcs_renamed),
        ("repair.funcs_rebalanced", s.funcs_rebalanced),
        ("repair.blocks_exact", s.blocks_exact),
        ("repair.blocks_opcode", s.blocks_opcode),
        ("repair.blocks_neighbor", s.blocks_neighbor),
        ("repair.blocks_anchor", s.blocks_anchor),
        ("repair.blocks_inferred", s.blocks_inferred),
        ("repair.blocks_dropped", s.blocks_dropped),
        ("repair.mass_matched", s.mass_matched),
        ("repair.mass_dropped", s.mass_dropped),
        ("repair.branches_synthesized", s.branches_synthesized),
    ] {
        registry.counter(name).add(v);
    }
}

/// Repairs a package's profile against the current repo: remaps stale
/// block counters by structural hash, drops unrepairable functions,
/// prunes dangling/phantom entries and sanitizes the order lists.
fn repair_package(repo: &Repo, pkg: &ProfilePackage) -> (OwnedProfile, RepairReport) {
    let mut tier = pkg.tier.clone();
    let mut ctx = pkg.ctx.clone();
    let report = repair_profile(repo, &mut tier, &mut ctx);

    let mut seen_units = HashSet::new();
    let unit_order: Vec<UnitId> = pkg
        .preload
        .unit_order
        .iter()
        .copied()
        .filter(|u| u.index() < repo.units().len() && seen_units.insert(*u))
        .collect();
    let mut seen_funcs = HashSet::new();
    let func_order: Vec<FuncId> = pkg
        .func_order
        .iter()
        .copied()
        .filter(|f| f.index() < repo.funcs().len() && seen_funcs.insert(*f))
        .collect();
    let mut seen_classes = HashSet::new();
    let prop_orders: Vec<(ClassId, Vec<StrId>)> = pkg
        .prop_orders
        .iter()
        .filter(|(c, order)| {
            c.index() < repo.classes().len()
                && is_own_layer_order(repo, *c, order)
                && seen_classes.insert(*c)
        })
        .cloned()
        .collect();

    (
        OwnedProfile {
            tier,
            ctx,
            unit_order,
            prop_orders,
            func_order,
        },
        report,
    )
}

/// Resolves physical property slots for every class, honoring the
/// package's installed orders (or declared order with reordering off).
pub(crate) fn resolve_prop_slots(
    repo: &Repo,
    prop_orders: &[(ClassId, Vec<StrId>)],
    apply: bool,
) -> HashMap<(ClassId, StrId), u16> {
    let mut table = ClassTable::new(repo);
    if apply {
        table.install_prop_orders(prop_orders.iter().cloned());
    }
    let mut slots = HashMap::new();
    for class in repo.classes() {
        let rc = table.resolve(repo, class.id);
        for (&name, &slot) in &rc.layout.slot_by_name {
            slots.insert((class.id, name), slot as u16);
        }
    }
    slots
}

/// Runs the consumer boot sequence over a serialized package, timing the
/// decode into the boot telemetry ([`BootStats::decode_ns`]).
///
/// # Errors
///
/// As [`consume`], plus [`ConsumerError::Wire`] when decoding fails.
pub fn consume_bytes<'r>(
    repo: &'r Repo,
    data: &bytes::Bytes,
    jit_opts: JitOptions,
    opts: &JumpStartOptions,
    threads: usize,
) -> Result<ConsumerOutcome<'r>, ConsumerError> {
    let t0 = Instant::now();
    let decode_span = telemetry::span!("decode", "bytes" => data.len());
    let pkg = ProfilePackage::deserialize_shared(data)?;
    drop(decode_span);
    let decode_ns = t0.elapsed().as_nanos() as u64;
    let mut out = consume(repo, &pkg, jit_opts, opts, threads)?;
    out.boot.decode_ns = decode_ns;
    out.boot.total_ns += decode_ns;
    // Keep the registry view in sync — BootStats is rendered from it.
    out.registry.gauge("boot.decode_ns").set(decode_ns);
    out.registry.gauge("boot.total_ns").set(out.boot.total_ns);
    Ok(out)
}

/// Chunk-level accounting of a lazy consumer boot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkBootStats {
    /// Encoded manifest size (always fetched and decoded up front).
    pub manifest_bytes: u64,
    /// Total package payload bytes across all chunks.
    pub payload_bytes: u64,
    /// Chunk bytes decoded before serve-start: head + tail + the hot
    /// closure.
    pub hot_bytes: u64,
    /// Chunk bytes decoded in the background stage.
    pub cold_bytes: u64,
    /// Chunks decoded before serve-start.
    pub hot_chunks: usize,
    /// Chunks decoded in the background stage.
    pub cold_chunks: usize,
    /// Time spent decoding before serve-start (manifest-driven).
    pub hot_decode_ns: u64,
    /// Time spent decoding the cold tail in the background.
    pub cold_decode_ns: u64,
}

impl ChunkBootStats {
    /// Fraction of package payload bytes decoded before serve-start —
    /// the lazy-decode win (1.0 = the monolithic behavior).
    pub fn before_serve_frac(&self) -> f64 {
        if self.payload_bytes == 0 {
            return 1.0;
        }
        self.hot_bytes as f64 / self.payload_bytes as f64
    }
}

/// Sums two worker-stat vectors elementwise (the two lazy-boot pipeline
/// stages run on the same logical workers).
fn merge_workers(a: Vec<WorkerStats>, b: Vec<WorkerStats>) -> Vec<WorkerStats> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = a;
    for (w, x) in out.iter_mut().zip(b) {
        w.translated += x.translated;
        w.stolen += x.stolen;
        w.busy_ns += x.busy_ns;
        w.steal_ns += x.steal_ns;
        w.stall_ns += x.stall_ns;
    }
    out
}

/// Runs the consumer boot sequence over a chunked package: decode the
/// manifest's hot closure, compile and serve, then decode and compile
/// the cold tail in the background — without ever materializing the
/// monolithic package.
///
/// With `opts.early_serve_frac < 1` only the chunks covering the hottest
/// fraction of heat mass (plus their transitive callees, so inline
/// templates always find callee profiles) are decoded before
/// serve-start; [`ChunkBootStats`] reports exactly how many bytes that
/// touched. The two pipeline stages emit in the same concatenated order
/// a monolithic boot would, so the code-cache layout is byte-identical.
///
/// The lazy path never lints or repairs — it is reserved for packages
/// whose manifest matches the running release (`repo_funcs`, per-record
/// name hashes). Anything stale fails fast with
/// [`ConsumerError::InvalidProfile`] and the boot controller falls back
/// to the monolithic lint-and-repair path.
///
/// # Errors
///
/// [`ConsumerError::Wire`] for missing/corrupt chunks,
/// [`ConsumerError::InvalidProfile`] for release mismatches, and
/// [`ConsumerError::JitCrash`] as in [`consume`].
pub fn consume_chunked<'r>(
    repo: &'r Repo,
    man: &Manifest,
    pool: &ChunkPool,
    jit_opts: JitOptions,
    opts: &JumpStartOptions,
    threads: usize,
) -> Result<(ConsumerOutcome<'r>, ChunkBootStats), ConsumerError> {
    let boot_start = Instant::now();
    let registry = telemetry::Registry::default();
    let _boot_span = telemetry::span!("consumer-boot-chunked", "threads" => threads.max(1));

    // Release guard: the manifest records which repo the profile was
    // collected against. Lazy decode skips lint/repair, so a package
    // from another release must not get this far.
    if man.repo_funcs as usize != repo.funcs().len() {
        return Err(ConsumerError::InvalidProfile {
            errors: 1,
            first: format!(
                "manifest built against a {}-function release, this repo has {}",
                man.repo_funcs,
                repo.funcs().len()
            ),
        });
    }

    let mut chunk_stats = ChunkBootStats {
        manifest_bytes: man.wire_len() as u64,
        payload_bytes: man.payload_len as u64,
        ..Default::default()
    };

    // Hot decode: head (meta, preload), tail (counters, ctx, orders).
    let hot_decode_start = Instant::now();
    let loader = LazyLoader::new(man, pool);
    let (meta, preload) = loader.decode_head()?;
    let mut tier = TierProfile::default();
    let (ctx, prop_orders, func_order) = loader.decode_tail(&mut tier)?;
    chunk_stats.hot_bytes += (man.entries[0].len + man.entries[man.entries.len() - 1].len) as u64;
    chunk_stats.hot_chunks += 2;

    let poison_crash = meta.poison == Poison::CompileCrash;
    if poison_crash && threads <= 1 {
        return Err(ConsumerError::JitCrash);
    }

    // Compile order and early-serve threshold straight off the manifest —
    // no function chunk has been decoded yet. Both computations mirror
    // the monolithic path exactly (`functions_by_heat` ordering,
    // `early_serve_prefix` threshold), so the two-stage emission below
    // concatenates to the same order a monolithic boot emits in.
    let order: Vec<FuncId> = if func_order.is_empty() || opts.func_sort == FuncSort::SourceOrder {
        man.funcs_by_heat()
    } else {
        func_order.clone()
    };
    let work: Vec<FuncId> = order
        .into_iter()
        .filter(|f| loader.entry_of(*f).is_some())
        .collect();
    let heat = man.heat_map();
    let hot_count = pipeline::early_serve_prefix_by_heat(&heat, &work, opts.early_serve_frac);

    // Decode the hot closure: the serve-start prefix plus every function
    // transitively reachable through its recorded call targets.
    let hot_entries = loader.hot_closure(work[..hot_count].iter().copied());
    for &i in &hot_entries {
        let e = &man.entries[i];
        if let crate::chunk::ChunkKind::Func { func, .. } = e.kind {
            if func.index() >= repo.funcs().len() {
                return Err(ConsumerError::InvalidProfile {
                    errors: 1,
                    first: format!("profile for {func:?} beyond this release"),
                });
            }
        }
    }
    chunk_stats.hot_bytes += loader.decode_funcs(&hot_entries, &mut tier)?;
    chunk_stats.hot_chunks += hot_entries.len();
    // Stale-record guard (cheap, in place of the full lint): a record
    // whose name hash disagrees with the current repo is from another
    // release even if the function count matches.
    for (&f, p) in &tier.funcs {
        if p.name_hash != 0 && p.name_hash != bytecode::fnv_str(repo.str(repo.func(f).name)) {
            return Err(ConsumerError::InvalidProfile {
                errors: 1,
                first: format!("profile for {f:?} names a different function"),
            });
        }
    }
    chunk_stats.hot_decode_ns = hot_decode_start.elapsed().as_nanos() as u64;

    // Property layout before any translation resolves slots (§V-C).
    let slots_start = Instant::now();
    let apply_props = opts.prop_reorder != PropReorder::Off;
    let prop_slots = resolve_prop_slots(repo, &prop_orders, apply_props);
    let prop_slots_ns = slots_start.elapsed().as_nanos() as u64;

    let weights = if opts.accurate_bb_weights {
        WeightSource::Accurate
    } else {
        WeightSource::TierOnly
    };
    let jit_opts = JitOptions {
        weights,
        ..jit_opts
    };
    let mut engine = JitEngine::new(repo, jit_opts);
    let resolver = |class: ClassId, name: StrId| prop_slots.get(&(class, name)).copied();
    let caches = opts.compile_caches.then(pipeline::CompileCaches::default);

    // Stage 1: compile the serve-start prefix against the partial tier.
    // Each stage runs at frac 1.0 — the early-serve split is the stage
    // boundary itself.
    let r1 = {
        let job = PipelineJob {
            repo,
            tier: &tier,
            ctx: &ctx,
            work: work[..hot_count].to_vec(),
            jit_opts,
            resolver: &resolver,
            early_serve_frac: 1.0,
            poison_crash,
            caches: caches.as_ref(),
            metrics: registry.clone(),
        };
        pipeline::run(&job, &mut engine, threads).map_err(|()| ConsumerError::JitCrash)?
    };

    // Background: decode the cold tail, then compile it on the same
    // engine. Emission continues exactly where stage 1 stopped.
    let cold_decode_start = Instant::now();
    let all_entries = loader.all_func_entries();
    // `hot_closure` returns sorted indices.
    let cold_entries: Vec<usize> = all_entries
        .iter()
        .copied()
        .filter(|i| hot_entries.binary_search(i).is_err())
        .collect();
    chunk_stats.cold_bytes = loader.decode_funcs(&all_entries, &mut tier)?;
    chunk_stats.cold_chunks = cold_entries.len();
    chunk_stats.cold_decode_ns = cold_decode_start.elapsed().as_nanos() as u64;

    let r2 = {
        let job = PipelineJob {
            repo,
            tier: &tier,
            ctx: &ctx,
            work: work[hot_count..].to_vec(),
            jit_opts,
            resolver: &resolver,
            early_serve_frac: 1.0,
            poison_crash,
            caches: caches.as_ref(),
            metrics: registry.clone(),
        };
        pipeline::run(&job, &mut engine, threads).map_err(|()| ConsumerError::JitCrash)?
    };

    let compiled_funcs = r1.compiled_funcs + r2.compiled_funcs;
    let compile_bytes = r1.compile_bytes + r2.compile_bytes;
    let early_serve = if opts.early_serve_frac < 1.0 {
        Some(EarlyServe {
            frac: opts.early_serve_frac,
            ready_funcs: r1.compiled_funcs,
            ready_bytes: r1.compile_bytes,
            ready_ns: r1.pipeline_ns,
            background_funcs: r2.compiled_funcs,
            background_bytes: r2.compile_bytes,
        })
    } else {
        // Full-fraction boots report ready at the last unit, mirroring
        // the monolithic EmitTracker.
        r1.early_serve.map(|e| EarlyServe {
            ready_funcs: compiled_funcs,
            ready_bytes: compile_bytes,
            ready_ns: r1.pipeline_ns + r2.pipeline_ns,
            ..e
        })
    };

    let unit_order = if opts.preload_units {
        preload.unit_order
    } else {
        Vec::new()
    };
    let stats = BootStats {
        threads: threads.max(1),
        decode_ns: chunk_stats.hot_decode_ns,
        lint_repair_ns: 0,
        prop_slots_ns,
        pipeline_ns: r1.pipeline_ns + r2.pipeline_ns,
        emit_ns: r1.emit_ns + r2.emit_ns,
        emit_stall_ns: r1.emit_stall_ns + r2.emit_stall_ns,
        total_ns: boot_start.elapsed().as_nanos() as u64,
        compiled_funcs,
        compile_bytes,
        workers: merge_workers(r1.workers, r2.workers),
        early_serve,
        caches: caches.as_ref().map(pipeline::CompileCaches::stats),
    };
    for (name, v) in [
        ("chunk.manifest_bytes", chunk_stats.manifest_bytes),
        ("chunk.payload_bytes", chunk_stats.payload_bytes),
        ("chunk.hot_bytes", chunk_stats.hot_bytes),
        ("chunk.cold_bytes", chunk_stats.cold_bytes),
        ("chunk.hot_chunks", chunk_stats.hot_chunks as u64),
        ("chunk.cold_chunks", chunk_stats.cold_chunks as u64),
        ("chunk.hot_decode_ns", chunk_stats.hot_decode_ns),
        ("chunk.cold_decode_ns", chunk_stats.cold_decode_ns),
    ] {
        registry.counter(name).add(v);
    }
    stats.record(&registry);
    let boot = BootStats::from_registry(&registry);
    debug_assert_eq!(boot, stats);
    Ok((
        ConsumerOutcome {
            engine,
            prop_slots,
            unit_order,
            compiled_funcs,
            compile_bytes,
            repair: None,
            boot,
            registry,
        },
        chunk_stats,
    ))
}

/// Runs the consumer boot sequence over a deserialized package.
///
/// Translation runs on `threads` worker threads (the paper: "JITing
/// happens in parallel using all the cores", §IV-A), streaming completed
/// units through a reorder buffer into the emitter, which places them in
/// the package's function order *while translation continues* — the
/// resulting code-cache layout is byte-identical to a sequential boot.
/// With `opts.early_serve_frac < 1.0` the boot reports ready once the
/// hottest fraction of heat mass is emitted ([`BootStats::early_serve`]).
///
/// # Errors
///
/// Returns [`ConsumerError::JitCrash`] for compile-poisoned packages —
/// including when the (simulated) compiler bug panics a translation
/// worker thread, which is caught rather than aborting the boot.
pub fn consume<'r>(
    repo: &'r Repo,
    pkg: &ProfilePackage,
    jit_opts: JitOptions,
    opts: &JumpStartOptions,
    threads: usize,
) -> Result<ConsumerOutcome<'r>, ConsumerError> {
    let boot_start = Instant::now();
    let registry = telemetry::Registry::default();
    let _boot_span = telemetry::span!("consumer-boot", "threads" => threads.max(1));
    let poison_crash = pkg.meta.poison == Poison::CompileCrash;
    if poison_crash && threads <= 1 {
        // A sequential boot hits the compiler bug on the first unit; no
        // worker thread exists to catch a panic from.
        return Err(ConsumerError::JitCrash);
    }

    // Static lint first: refuse to feed structurally impossible profile
    // data into translation. A dirty package gets one repair attempt
    // (stale-counter remap + pruning) before the consumer gives up and
    // lets the boot controller fall back (§VI-A.3).
    let lint_start = Instant::now();
    let lint_span = telemetry::span!("lint-repair", "enabled" => opts.lint_repair);
    let mut repair = None;
    let owned: Option<OwnedProfile> = if opts.lint_repair
        && lint_errors(
            repo,
            &ProfileView {
                tier: &pkg.tier,
                ctx: &pkg.ctx,
                unit_order: &pkg.preload.unit_order,
                prop_orders: &pkg.prop_orders,
                func_order: &pkg.func_order,
            },
        ) > 0
    {
        let (fixed, report) = repair_package(repo, pkg);
        let relint = lint_profile_with(
            repo,
            &ProfileView {
                tier: &fixed.tier,
                ctx: &fixed.ctx,
                unit_order: &fixed.unit_order,
                prop_orders: &fixed.prop_orders,
                func_order: &fixed.func_order,
            },
            &CONSUMER_LINT,
        );
        if relint.error_count() > 0 {
            return Err(ConsumerError::InvalidProfile {
                errors: relint.error_count(),
                first: relint
                    .errors()
                    .next()
                    .map(ToString::to_string)
                    .unwrap_or_default(),
            });
        }
        record_repair(&registry, &report);
        repair = Some(report);
        Some(fixed)
    } else {
        None
    };
    let (tier, ctx): (&TierProfile, &CtxProfile) = match &owned {
        Some(o) => (&o.tier, &o.ctx),
        None => (&pkg.tier, &pkg.ctx),
    };
    let prop_orders: &[(ClassId, Vec<StrId>)] =
        owned.as_ref().map_or(&pkg.prop_orders, |o| &o.prop_orders);
    let pkg_func_order: &[FuncId] = owned.as_ref().map_or(&pkg.func_order, |o| &o.func_order);
    let pkg_unit_order: &[UnitId] = owned
        .as_ref()
        .map_or(&pkg.preload.unit_order, |o| &o.unit_order);
    let lint_repair_ns = lint_start.elapsed().as_nanos() as u64;
    drop(lint_span);

    // Property layout must be installed before any translation resolves
    // slots (the same ordering constraint HHVM has, §V-C).
    let slots_start = Instant::now();
    let slots_span = telemetry::span!("prop-slots", "orders" => prop_orders.len());
    let apply_props = opts.prop_reorder != PropReorder::Off;
    let prop_slots = resolve_prop_slots(repo, prop_orders, apply_props);
    drop(slots_span);
    let prop_slots_ns = slots_start.elapsed().as_nanos() as u64;

    let weights = if opts.accurate_bb_weights {
        WeightSource::Accurate
    } else {
        WeightSource::TierOnly
    };
    let jit_opts = JitOptions {
        weights,
        ..jit_opts
    };
    let mut engine = JitEngine::new(repo, jit_opts);

    let order: Vec<FuncId> = if pkg_func_order.is_empty() || opts.func_sort == FuncSort::SourceOrder
    {
        tier.functions_by_heat()
    } else {
        pkg_func_order.to_vec()
    };

    // The streaming pipeline: work-stealing translation feeding the
    // reorder-buffer emitter; emission order is exactly `order`.
    let resolver = |class: ClassId, name: StrId| prop_slots.get(&(class, name)).copied();
    let work: Vec<FuncId> = order
        .into_iter()
        .filter(|f| tier.funcs.contains_key(f))
        .collect();
    // The compile caches (inline-body templates + layout plans) are
    // per-boot and shared across the translation workers; they memoize
    // exactly, so the emitted layout is byte-identical with them off.
    let caches = opts.compile_caches.then(pipeline::CompileCaches::default);
    let job = PipelineJob {
        repo,
        tier,
        ctx,
        work,
        jit_opts,
        resolver: &resolver,
        early_serve_frac: opts.early_serve_frac,
        poison_crash,
        caches: caches.as_ref(),
        metrics: registry.clone(),
    };
    let result = pipeline::run(&job, &mut engine, threads).map_err(|()| ConsumerError::JitCrash)?;

    let unit_order = if opts.preload_units {
        pkg_unit_order.to_vec()
    } else {
        Vec::new()
    };
    let stats = BootStats {
        threads: threads.max(1),
        decode_ns: 0,
        lint_repair_ns,
        prop_slots_ns,
        pipeline_ns: result.pipeline_ns,
        emit_ns: result.emit_ns,
        emit_stall_ns: result.emit_stall_ns,
        total_ns: boot_start.elapsed().as_nanos() as u64,
        compiled_funcs: result.compiled_funcs,
        compile_bytes: result.compile_bytes,
        workers: result.workers,
        early_serve: result.early_serve,
        caches: caches.as_ref().map(pipeline::CompileCaches::stats),
    };
    // The registry is the source of truth; BootStats is the rendered
    // view. Recording then re-rendering must round-trip exactly.
    stats.record(&registry);
    let boot = BootStats::from_registry(&registry);
    debug_assert_eq!(boot, stats);
    Ok(ConsumerOutcome {
        engine,
        prop_slots,
        unit_order,
        compiled_funcs: result.compiled_funcs,
        compile_bytes: result.compile_bytes,
        repair,
        boot,
        registry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageMeta;
    use crate::seeder::{build_package, SeederInputs};
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    fn make_package() -> (Repo, ProfilePackage) {
        let src = r#"
            class P { public $cold = 0; public $hot = 0; }
            function work($x) {
                $o = new P();
                $o->hot = $x;
                return $o->hot * 2;
            }
            function main($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s += work($i); }
                return $s;
            }
        "#;
        let repo = hackc::compile_unit("c.hl", src).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..4 {
            vm.call_observed(f, &[Value::Int(30)], &mut col).unwrap();
            col.end_request();
        }
        let order = vm.loader().load_order();
        let (tier, ctx) = (col.tier, col.ctx);
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order: order,
                requests: 4,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        (repo, pkg)
    }

    #[test]
    fn consumer_compiles_everything_before_serving() {
        let (repo, pkg) = make_package();
        let out = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap();
        assert!(out.compiled_funcs >= 2, "main and work should be optimized");
        assert!(out.compile_bytes > 0);
        let main = repo.func_by_name("main").unwrap().id;
        assert!(out.engine.code_cache.translation(main).is_some());
    }

    #[test]
    fn parallel_consume_matches_sequential() {
        let (repo, pkg) = make_package();
        let seq = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap();
        let par = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            4,
        )
        .unwrap();
        assert_eq!(seq.compiled_funcs, par.compiled_funcs);
        assert_eq!(seq.compile_bytes, par.compile_bytes);
        // Byte-identical layout: the reorder buffer must place every
        // block at the same address a sequential boot would.
        assert_eq!(
            seq.engine.code_cache.layout_digest(),
            par.engine.code_cache.layout_digest()
        );
        assert_eq!(par.boot.threads, 4);
        assert_eq!(par.boot.workers.len(), 4);
        assert_eq!(
            par.boot.workers.iter().map(|w| w.translated).sum::<usize>(),
            par.compiled_funcs
        );
    }

    #[test]
    fn compile_caches_preserve_layout_and_report_stats() {
        let (repo, pkg) = make_package();
        let uncached = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions {
                compile_caches: false,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let cached = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap();
        // The caches are exact memoization: the emitted code cache must be
        // byte-identical with them on or off.
        assert_eq!(
            cached.engine.code_cache.layout_digest(),
            uncached.engine.code_cache.layout_digest()
        );
        assert_eq!(cached.compile_bytes, uncached.compile_bytes);
        // Telemetry: off → absent; on → present, with every planned unit
        // passing through the plan cache.
        assert!(uncached.boot.caches.is_none());
        let stats = cached.boot.caches.expect("caches on by default");
        assert!(stats.plan_hits + stats.plan_misses >= cached.compiled_funcs as u64);
        // A cached parallel boot still matches the uncached layout.
        let par = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            4,
        )
        .unwrap();
        assert_eq!(
            par.engine.code_cache.layout_digest(),
            uncached.engine.code_cache.layout_digest()
        );
        assert!(par.boot.caches.is_some());
    }

    #[test]
    fn early_serve_reports_ready_before_full_boot() {
        let (repo, pkg) = make_package();
        let out = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions {
                early_serve_frac: 0.5,
                ..Default::default()
            },
            2,
        )
        .unwrap();
        let early = out.boot.early_serve.expect("threshold crossing recorded");
        assert!(early.ready_funcs >= 1);
        assert!(early.ready_funcs + early.background_funcs == out.compiled_funcs);
        assert!(early.ready_bytes + early.background_bytes == out.compile_bytes);
        assert!(
            early.ready_funcs < out.compiled_funcs,
            "remainder is background"
        );
        assert!(early.ready_ns <= out.boot.pipeline_ns);
        // The full boot still compiled everything (background completes
        // inside consume; the fleet model prices the overlap).
        assert_eq!(
            out.compile_bytes,
            consume(
                &repo,
                &pkg,
                JitOptions::default(),
                &JumpStartOptions::default(),
                1
            )
            .unwrap()
            .compile_bytes
        );
    }

    #[test]
    fn prop_reorder_changes_hot_slot() {
        let (repo, pkg) = make_package();
        let class = repo.class_by_name("P").unwrap().id;
        let hot = repo.str_id("hot").unwrap();
        let with = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap();
        let without = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions {
                prop_reorder: PropReorder::Off,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        assert_eq!(
            with.prop_slots[&(class, hot)],
            0,
            "hot property moves to slot 0"
        );
        assert_eq!(
            without.prop_slots[&(class, hot)],
            1,
            "declared order keeps slot 1"
        );
    }

    #[test]
    fn compile_poison_errors_out() {
        let (repo, mut pkg) = make_package();
        pkg.meta.poison = Poison::CompileCrash;
        let err = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap_err();
        assert_eq!(err, ConsumerError::JitCrash);
        let _ = PackageMeta::default();
    }

    #[test]
    fn compile_poison_panic_in_worker_is_caught() {
        // With threads > 1 the simulated compiler bug panics inside a
        // translation worker; the pipeline must catch it and surface a
        // JitCrash instead of aborting the process or hanging the
        // emitter on a disconnected channel.
        let (repo, mut pkg) = make_package();
        pkg.meta.poison = Poison::CompileCrash;
        for threads in [2, 4] {
            let err = consume(
                &repo,
                &pkg,
                JitOptions::default(),
                &JumpStartOptions::default(),
                threads,
            )
            .unwrap_err();
            assert_eq!(err, ConsumerError::JitCrash);
        }
    }

    fn chunked(pkg: &ProfilePackage, repo: &Repo) -> (crate::chunk::Manifest, ChunkPool) {
        let cp = crate::chunk::chunk_package(pkg, repo.funcs().len());
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        (cp.manifest, pool)
    }

    #[test]
    fn chunked_boot_matches_monolithic_layout() {
        let (repo, pkg) = make_package();
        let (man, pool) = chunked(&pkg, &repo);
        for frac in [1.0, 0.5, 0.25] {
            let opts = JumpStartOptions {
                early_serve_frac: frac,
                ..Default::default()
            };
            let mono = consume(&repo, &pkg, JitOptions::default(), &opts, 1).unwrap();
            for threads in [1, 4] {
                let (lazy, stats) =
                    consume_chunked(&repo, &man, &pool, JitOptions::default(), &opts, threads)
                        .unwrap();
                assert_eq!(
                    lazy.engine.code_cache.layout_digest(),
                    mono.engine.code_cache.layout_digest(),
                    "frac {frac} threads {threads}: two-stage emission must \
                     concatenate to the monolithic order"
                );
                assert_eq!(lazy.compiled_funcs, mono.compiled_funcs);
                assert_eq!(lazy.compile_bytes, mono.compile_bytes);
                assert_eq!(lazy.prop_slots, mono.prop_slots);
                assert_eq!(
                    stats.hot_bytes + stats.cold_bytes,
                    stats.payload_bytes,
                    "every chunk is decoded exactly once"
                );
            }
        }
    }

    /// A package where the hot function's call closure does NOT cover
    /// the cold functions, so lazy decode has a real cold tail.
    fn make_wide_package() -> (Repo, ProfilePackage) {
        let src = r#"
            function hot($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s += $i * 3; }
                return $s;
            }
            function cold_a($x) { return $x + 1; }
            function cold_b($x) { return $x * 2; }
            function cold_c($x) { return $x - 4; }
        "#;
        let repo = hackc::compile_unit("w.hl", src).unwrap();
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        let hot = repo.func_by_name("hot").unwrap().id;
        for _ in 0..6 {
            vm.call_observed(hot, &[Value::Int(50)], &mut col).unwrap();
            col.end_request();
        }
        for name in ["cold_a", "cold_b", "cold_c"] {
            let f = repo.func_by_name(name).unwrap().id;
            vm.call_observed(f, &[Value::Int(1)], &mut col).unwrap();
            col.end_request();
        }
        let order = vm.loader().load_order();
        let (tier, ctx) = (col.tier, col.ctx);
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order: order,
                requests: 9,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        (repo, pkg)
    }

    #[test]
    fn lazy_boot_decodes_only_hot_bytes_before_serve() {
        let (repo, pkg) = make_wide_package();
        let (man, pool) = chunked(&pkg, &repo);
        let opts = JumpStartOptions {
            early_serve_frac: 0.25,
            ..Default::default()
        };
        let (out, stats) =
            consume_chunked(&repo, &man, &pool, JitOptions::default(), &opts, 2).unwrap();
        assert!(
            stats.before_serve_frac() < 1.0,
            "a 0.25-frac boot must not touch the whole payload up front"
        );
        assert!(stats.cold_chunks > 0, "a cold tail exists");
        let early = out.boot.early_serve.expect("crossing recorded");
        assert!(early.ready_funcs < out.compiled_funcs);
        assert_eq!(
            early.ready_funcs + early.background_funcs,
            out.compiled_funcs
        );
        // Chunk counters surface in the boot registry for fleet rollup.
        assert_eq!(out.registry.value_u64("chunk.hot_bytes"), stats.hot_bytes);
        assert_eq!(
            out.registry.value_u64("chunk.cold_chunks"),
            stats.cold_chunks as u64
        );
    }

    #[test]
    fn chunked_boot_rejects_release_mismatch() {
        let (repo, pkg) = make_package();
        let cp = crate::chunk::chunk_package(&pkg, repo.funcs().len() + 1);
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        let err = consume_chunked(
            &repo,
            &cp.manifest,
            &pool,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ConsumerError::InvalidProfile { .. }));
    }

    #[test]
    fn chunked_boot_surfaces_missing_chunks_as_wire_errors() {
        let (repo, pkg) = make_package();
        let cp = crate::chunk::chunk_package(&pkg, repo.funcs().len());
        let mut pool = ChunkPool::new();
        // Drop one function chunk: the boot must fail with a wire error
        // (dangling chunk), which the boot controller treats like any
        // other corrupt download.
        for c in cp.chunks.iter().skip(1) {
            pool.insert(c);
        }
        let err = consume_chunked(
            &repo,
            &cp.manifest,
            &pool,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ConsumerError::Wire(WireError::Corrupt(_))));
    }

    #[test]
    fn round_tripped_package_consumes_identically() {
        let (repo, pkg) = make_package();
        let bytes = pkg.serialize();
        let back = ProfilePackage::deserialize(&bytes).unwrap();
        let a = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap();
        let b = consume(
            &repo,
            &back,
            JitOptions::default(),
            &JumpStartOptions::default(),
            1,
        )
        .unwrap();
        assert_eq!(a.compile_bytes, b.compile_bytes);
        assert_eq!(a.prop_slots, b.prop_slots);
    }
}
