//! The consumer workflow (Fig. 3c): deserialize → preload → compile all
//! optimized code in parallel → ready to serve.

use std::collections::HashMap;

use bytecode::{ClassId, FuncId, Repo, StrId, UnitId};
use jit::{translate_optimized, JitEngine, JitOptions, WeightSource};
use vm::ClassTable;

use crate::config::{FuncSort, JumpStartOptions, PropReorder};
use crate::package::{Poison, ProfilePackage};
use crate::wire::WireError;

/// Consumer failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsumerError {
    /// The package failed to decode.
    Wire(WireError),
    /// The profile data triggered a (simulated) JIT compiler crash —
    /// §VI-A's widespread-bug scenario.
    JitCrash,
}

impl std::fmt::Display for ConsumerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsumerError::Wire(e) => write!(f, "package decode failed: {e}"),
            ConsumerError::JitCrash => write!(f, "JIT crashed while compiling profile data"),
        }
    }
}

impl std::error::Error for ConsumerError {}

impl From<WireError> for ConsumerError {
    fn from(e: WireError) -> Self {
        ConsumerError::Wire(e)
    }
}

/// What a successful consumer boot produces: a fully-compiled engine plus
/// the state the executor needs (property slots, unit layout).
#[derive(Debug)]
pub struct ConsumerOutcome<'r> {
    /// The engine holding all optimized translations.
    pub engine: JitEngine<'r>,
    /// Physical slot per (class, property) under the installed layout.
    pub prop_slots: HashMap<(ClassId, StrId), u16>,
    /// Unit preload order applied.
    pub unit_order: Vec<UnitId>,
    /// Functions compiled to optimized code.
    pub compiled_funcs: usize,
    /// Bytes of optimized code emitted.
    pub compile_bytes: u64,
}

/// Resolves physical property slots for every class, honoring the
/// package's installed orders (or declared order with reordering off).
pub(crate) fn resolve_prop_slots(
    repo: &Repo,
    prop_orders: &[(ClassId, Vec<StrId>)],
    apply: bool,
) -> HashMap<(ClassId, StrId), u16> {
    let mut table = ClassTable::new(repo);
    if apply {
        table.install_prop_orders(prop_orders.iter().cloned());
    }
    let mut slots = HashMap::new();
    for class in repo.classes() {
        let rc = table.resolve(repo, class.id);
        for (&name, &slot) in &rc.layout.slot_by_name {
            slots.insert((class.id, name), slot as u16);
        }
    }
    slots
}

/// Runs the consumer boot sequence over a deserialized package.
///
/// Translation runs on `threads` worker threads (the paper: "JITing
/// happens in parallel using all the cores", §IV-A); emission then places
/// translations sequentially in the package's function order.
///
/// # Errors
///
/// Returns [`ConsumerError::JitCrash`] for compile-poisoned packages.
pub fn consume<'r>(
    repo: &'r Repo,
    pkg: &ProfilePackage,
    jit_opts: JitOptions,
    opts: &JumpStartOptions,
    threads: usize,
) -> Result<ConsumerOutcome<'r>, ConsumerError> {
    if pkg.meta.poison == Poison::CompileCrash {
        return Err(ConsumerError::JitCrash);
    }
    // Property layout must be installed before any translation resolves
    // slots (the same ordering constraint HHVM has, §V-C).
    let apply_props = opts.prop_reorder != PropReorder::Off;
    let prop_slots = resolve_prop_slots(repo, &pkg.prop_orders, apply_props);

    let weights = if opts.accurate_bb_weights {
        WeightSource::Accurate
    } else {
        WeightSource::TierOnly
    };
    let jit_opts = JitOptions { weights, ..jit_opts };
    let mut engine = JitEngine::new(repo, jit_opts);

    let order: Vec<FuncId> = if pkg.func_order.is_empty() || opts.func_sort == FuncSort::SourceOrder
    {
        pkg.tier.functions_by_heat()
    } else {
        pkg.func_order.clone()
    };

    // Parallel translation; sequential in-order emission.
    let resolver = |class: ClassId, name: StrId| prop_slots.get(&(class, name)).copied();
    let units: Vec<jit::vasm::VasmUnit> = if threads <= 1 {
        order
            .iter()
            .filter(|f| pkg.tier.funcs.contains_key(f))
            .map(|&f| {
                translate_optimized(
                    repo,
                    f,
                    &pkg.tier,
                    &pkg.ctx,
                    weights,
                    jit_opts.inline,
                    &resolver,
                )
            })
            .collect()
    } else {
        let work: Vec<FuncId> = order
            .iter()
            .copied()
            .filter(|f| pkg.tier.funcs.contains_key(f))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slot_refs: Vec<parking_lot::Mutex<Option<jit::vasm::VasmUnit>>> =
            (0..work.len()).map(|_| parking_lot::Mutex::new(None)).collect();
        crossbeam::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let unit = translate_optimized(
                        repo,
                        work[i],
                        &pkg.tier,
                        &pkg.ctx,
                        weights,
                        jit_opts.inline,
                        &resolver,
                    );
                    *slot_refs[i].lock() = Some(unit);
                });
            }
        })
        .expect("translation workers do not panic");
        slot_refs
            .into_iter()
            .map(|m| m.into_inner().expect("every slot filled"))
            .collect()
    };

    let mut compile_bytes = 0;
    let mut compiled_funcs = 0;
    for unit in units {
        let bytes = engine.emit_optimized(unit);
        if bytes > 0 {
            compiled_funcs += 1;
            compile_bytes += bytes;
        }
    }

    let unit_order = if opts.preload_units {
        pkg.preload.unit_order.clone()
    } else {
        Vec::new()
    };
    Ok(ConsumerOutcome { engine, prop_slots, unit_order, compiled_funcs, compile_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageMeta;
    use crate::seeder::{build_package, SeederInputs};
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    fn make_package() -> (Repo, ProfilePackage) {
        let src = r#"
            class P { public $cold = 0; public $hot = 0; }
            function work($x) {
                $o = new P();
                $o->hot = $x;
                return $o->hot * 2;
            }
            function main($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s += work($i); }
                return $s;
            }
        "#;
        let repo = hackc::compile_unit("c.hl", src).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..4 {
            vm.call_observed(f, &[Value::Int(30)], &mut col).unwrap();
            col.end_request();
        }
        let order = vm.loader().load_order();
        let (tier, ctx) = (col.tier, col.ctx);
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order: order,
                requests: 4,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        (repo, pkg)
    }

    #[test]
    fn consumer_compiles_everything_before_serving() {
        let (repo, pkg) = make_package();
        let out = consume(&repo, &pkg, JitOptions::default(), &JumpStartOptions::default(), 1)
            .unwrap();
        assert!(out.compiled_funcs >= 2, "main and work should be optimized");
        assert!(out.compile_bytes > 0);
        let main = repo.func_by_name("main").unwrap().id;
        assert!(out.engine.code_cache.translation(main).is_some());
    }

    #[test]
    fn parallel_consume_matches_sequential() {
        let (repo, pkg) = make_package();
        let seq = consume(&repo, &pkg, JitOptions::default(), &JumpStartOptions::default(), 1)
            .unwrap();
        let par = consume(&repo, &pkg, JitOptions::default(), &JumpStartOptions::default(), 4)
            .unwrap();
        assert_eq!(seq.compiled_funcs, par.compiled_funcs);
        assert_eq!(seq.compile_bytes, par.compile_bytes);
    }

    #[test]
    fn prop_reorder_changes_hot_slot() {
        let (repo, pkg) = make_package();
        let class = repo.class_by_name("P").unwrap().id;
        let hot = repo.str_id("hot").unwrap();
        let with = consume(&repo, &pkg, JitOptions::default(), &JumpStartOptions::default(), 1)
            .unwrap();
        let without = consume(
            &repo,
            &pkg,
            JitOptions::default(),
            &JumpStartOptions { prop_reorder: PropReorder::Off, ..Default::default() },
            1,
        )
        .unwrap();
        assert_eq!(with.prop_slots[&(class, hot)], 0, "hot property moves to slot 0");
        assert_eq!(without.prop_slots[&(class, hot)], 1, "declared order keeps slot 1");
    }

    #[test]
    fn compile_poison_errors_out() {
        let (repo, mut pkg) = make_package();
        pkg.meta.poison = Poison::CompileCrash;
        let err = consume(&repo, &pkg, JitOptions::default(), &JumpStartOptions::default(), 1)
            .unwrap_err();
        assert_eq!(err, ConsumerError::JitCrash);
        let _ = PackageMeta::default();
    }

    #[test]
    fn round_tripped_package_consumes_identically() {
        let (repo, pkg) = make_package();
        let bytes = pkg.serialize();
        let back = ProfilePackage::deserialize(&bytes).unwrap();
        let a = consume(&repo, &pkg, JitOptions::default(), &JumpStartOptions::default(), 1)
            .unwrap();
        let b = consume(&repo, &back, JitOptions::default(), &JumpStartOptions::default(), 1)
            .unwrap();
        assert_eq!(a.compile_bytes, b.compile_bytes);
        assert_eq!(a.prop_slots, b.prop_slots);
    }
}
