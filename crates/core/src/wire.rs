//! The package wire format: a small, explicit binary codec.
//!
//! HHVM's profile serializer is bespoke (acknowledgments credit its
//! initial implementation); this reproduction's codec is likewise
//! hand-rolled on top of [`bytes`]: little-endian primitives,
//! length-prefixed sequences, and a trailing CRC-32 over the payload.
//! Every decode path returns a typed [`WireError`] — a corrupted package
//! must never panic a consumer (§VI-A.3 falls back instead).

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a field required.
    Truncated { needed: usize, left: usize },
    /// The magic prefix did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion { found: u32, supported: u32 },
    /// Payload checksum mismatch (corruption in transit/storage).
    BadChecksum { expected: u32, found: u32 },
    /// Structurally invalid content (bad tag, oversized length, ...).
    Corrupt(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, left } => {
                write!(f, "truncated package: needed {needed} bytes, {left} left")
            }
            WireError::BadMagic => write!(f, "not a jump-start package (bad magic)"),
            WireError::BadVersion { found, supported } => {
                write!(
                    f,
                    "unsupported package version {found} (supported: {supported})"
                )
            }
            WireError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            WireError::Corrupt(msg) => write!(f, "corrupt package: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Write cursor.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `cap` bytes reserved up front. A caller that
    /// knows its exact encoded size (see `ProfilePackage::encoded_len`)
    /// never triggers a buffer reallocation while writing.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far (for checksumming sections in place).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes with no length prefix (envelope fields).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `f64` (LE bits).
    pub fn f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a sequence length (for the caller to follow with items).
    pub fn seq(&mut self, len: usize) {
        self.u32(len as u32);
    }

    /// Finishes, returning the raw payload (no envelope).
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Read cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    /// Set when the reader was built over shared [`Bytes`]: byte-string
    /// fields can then be decoded as zero-copy slices of the backing
    /// allocation instead of fresh `Vec`s.
    shared: Option<&'a Bytes>,
}

/// Cap on decoded sequence lengths; anything bigger is corruption, not a
/// real package (prevents attacker-controlled allocations).
const MAX_SEQ: u32 = 64 << 20;

impl<'a> Reader<'a> {
    /// Creates a reader over a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, shared: None }
    }

    /// Creates a reader over shared bytes; [`Reader::bytes_shared`] then
    /// returns zero-copy sub-slices.
    pub fn new_shared(buf: &'a Bytes) -> Self {
        Self {
            buf,
            shared: Some(buf),
        }
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError::Truncated {
                needed: n,
                left: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        Ok(self.bytes_ref()?.to_vec())
    }

    /// Reads a length-prefixed byte string as a borrowed slice of the
    /// input buffer — no allocation. Decode paths that only *validate*
    /// (checksum a section, compare against a manifest entry) should use
    /// this instead of [`Reader::bytes`], which copies into a `Vec`.
    pub fn bytes_ref(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()?;
        if len > MAX_SEQ {
            return Err(WireError::Corrupt(format!("byte string of {len} bytes")));
        }
        self.need(len as usize)?;
        let buf: &'a [u8] = self.buf;
        let (head, tail) = buf.split_at(len as usize);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a length-prefixed byte string as a zero-copy slice of the
    /// shared backing buffer. Falls back to a copy when the reader was
    /// built with [`Reader::new`] over a plain slice.
    pub fn bytes_shared(&mut self) -> Result<Bytes, WireError> {
        let Some(origin) = self.shared else {
            return Ok(Bytes::from(self.bytes()?));
        };
        let len = self.u32()?;
        if len > MAX_SEQ {
            return Err(WireError::Corrupt(format!("byte string of {len} bytes")));
        }
        self.need(len as usize)?;
        let pos = origin.len() - self.buf.remaining();
        let out = origin.slice(pos..pos + len as usize);
        let (_, tail) = self.buf.split_at(len as usize);
        self.buf = tail;
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::Corrupt("invalid utf-8".into()))
    }

    /// Reads a sequence length.
    pub fn seq(&mut self) -> Result<usize, WireError> {
        let len = self.u32()?;
        if len > MAX_SEQ {
            return Err(WireError::Corrupt(format!("sequence of {len} items")));
        }
        Ok(len as usize)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// Magic prefix of every package.
pub const MAGIC: &[u8; 8] = b"HHJSPKG\0";

/// Current format version.
///
/// v5 added the per-function stale-matching signatures (`name_hash` and
/// the opcode / neighbor / anchor block-hash arrays). v6 added the chunk
/// manifest codec ([`crate::chunk`]) and made function records id-free:
/// each record's identity moved into a head-resident `(FuncId,
/// name-hash)` directory and call targets are referenced by callee name
/// hash, so an unchanged profile encodes to byte-identical chunks even
/// across releases that renumber every `FuncId`.
pub const VERSION: u32 = 6;

/// Oldest envelope version [`unseal`] still accepts. v5 payloads (raw-id
/// records, no head directory) decode through a retained v5 read path,
/// so packages sealed by a v5 seeder remain consumable after a rollout.
pub const MIN_VERSION: u32 = 5;

/// Envelope bytes before the payload: magic, version, payload length.
pub const HEADER_LEN: usize = 16;

/// Total envelope overhead: [`HEADER_LEN`] plus the trailing CRC-32.
pub const ENVELOPE_LEN: usize = HEADER_LEN + 4;

/// Writes the envelope header into `w`; the caller appends exactly
/// `payload_len` payload bytes and then calls [`finish_sealed`]. Writing
/// the envelope inline (instead of sealing a finished payload buffer)
/// avoids copying the whole payload a second time.
pub fn begin_sealed(w: &mut Writer, payload_len: usize) {
    w.raw(MAGIC);
    w.u32(VERSION);
    w.u32(payload_len as u32);
}

/// Appends the CRC-32 of everything after the header and freezes. The
/// writer must hold exactly a header plus payload.
pub fn finish_sealed(mut w: Writer) -> Bytes {
    let crc = crate::crc32::crc32(&w.as_slice()[HEADER_LEN..]);
    w.u32(crc);
    w.finish()
}

/// Wraps a payload in the envelope: magic, version, length, payload, CRC.
/// (Copies the payload once; writers that know their encoded length use
/// [`begin_sealed`]/[`finish_sealed`] instead.)
pub fn seal(payload: Bytes) -> Bytes {
    let mut out = Writer::with_capacity(payload.len() + ENVELOPE_LEN);
    begin_sealed(&mut out, payload.len());
    out.raw(&payload);
    finish_sealed(out)
}

/// Unwraps the envelope, verifying magic, version, length and checksum.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first problem found.
pub fn unseal(data: &[u8]) -> Result<&[u8], WireError> {
    if data.len() < MAGIC.len() + 12 {
        return Err(WireError::Truncated {
            needed: MAGIC.len() + 12,
            left: data.len(),
        });
    }
    if &data[..8] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::BadVersion {
            found: version,
            supported: VERSION,
        });
    }
    let len = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
    if data.len() < 16 + len + 4 {
        return Err(WireError::Truncated {
            needed: 16 + len + 4,
            left: data.len(),
        });
    }
    let payload = &data[16..16 + len];
    let stored = u32::from_le_bytes(data[16 + len..16 + len + 4].try_into().expect("4 bytes"));
    let actual = crate::crc32::crc32(payload);
    if stored != actual {
        return Err(WireError::BadChecksum {
            expected: stored,
            found: actual,
        });
    }
    Ok(payload)
}

/// The envelope version of sealed bytes. Only reads the version field —
/// callers must have validated `data` with [`unseal`] first.
pub fn sealed_version(data: &[u8]) -> u32 {
    u32::from_le_bytes(data[8..12].try_into().expect("validated envelope"))
}

/// Like [`unseal`], but over shared bytes: the returned payload is a
/// zero-copy slice of `data`'s backing allocation.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first problem found.
pub fn unseal_shared(data: &Bytes) -> Result<Bytes, WireError> {
    let payload = unseal(data)?;
    let len = payload.len();
    Ok(data.slice(HEADER_LEN..HEADER_LEN + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.f64(0.25);
        w.str("héllo");
        w.seq(3);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.seq().unwrap(), 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_sequences_are_corrupt() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        assert!(matches!(r.seq(), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn envelope_round_trips() {
        let mut w = Writer::new();
        w.str("payload");
        let sealed = seal(w.finish());
        let payload = unseal(&sealed).unwrap();
        let mut r = Reader::new(payload);
        assert_eq!(r.str().unwrap(), "payload");
    }

    #[test]
    fn inline_envelope_matches_seal_and_never_reallocates() {
        let mut plain = Writer::new();
        plain.str("payload");
        plain.u64(77);
        let payload = plain.finish();
        let sealed = seal(payload.clone());

        let mut inline = Writer::with_capacity(payload.len() + ENVELOPE_LEN);
        begin_sealed(&mut inline, payload.len());
        inline.str("payload");
        inline.u64(77);
        assert_eq!(inline.len(), HEADER_LEN + payload.len());
        let inlined = finish_sealed(inline);
        assert_eq!(sealed, inlined, "inline envelope is byte-identical");
    }

    #[test]
    fn unseal_shared_is_zero_copy() {
        let mut w = Writer::new();
        w.bytes(b"0123456789");
        let sealed = seal(w.finish());
        let payload = unseal_shared(&sealed).unwrap();
        // The payload view aliases the sealed buffer — no copy.
        assert_eq!(
            payload.as_ref().as_ptr(),
            sealed.as_ref()[HEADER_LEN..].as_ptr()
        );
        let mut r = Reader::new_shared(&payload);
        let table = r.bytes_shared().unwrap();
        assert_eq!(&table[..], b"0123456789");
        // ... and the decoded byte table aliases it too.
        assert_eq!(table.as_ref().as_ptr(), payload.as_ref()[4..].as_ptr());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_shared_falls_back_to_copy_on_plain_readers() {
        let mut w = Writer::new();
        w.bytes(b"abc");
        w.u8(9);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        assert_eq!(&r.bytes_shared().unwrap()[..], b"abc");
        assert_eq!(r.u8().unwrap(), 9);
    }

    #[test]
    fn bytes_ref_borrows_without_copying() {
        let mut w = Writer::new();
        w.bytes(b"zero-copy");
        w.u8(5);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        let slice = r.bytes_ref().unwrap();
        assert_eq!(slice, b"zero-copy");
        // The slice aliases the payload buffer — no allocation happened.
        assert_eq!(slice.as_ptr(), payload[4..].as_ptr());
        assert_eq!(r.u8().unwrap(), 5);
        assert_eq!(r.remaining(), 0);

        let mut truncated = Reader::new(&payload[..7]);
        assert!(matches!(
            truncated.bytes_ref(),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn previous_version_envelope_still_unseals() {
        let mut w = Writer::new();
        w.str("payload");
        let sealed = seal(w.finish());
        // The crc covers only the payload, so rewriting the version field
        // yields a well-formed older envelope.
        let mut v5 = sealed.to_vec();
        v5[8..12].copy_from_slice(&MIN_VERSION.to_le_bytes());
        let payload = unseal(&v5).expect("v5 envelopes are still supported");
        let mut r = Reader::new(payload);
        assert_eq!(r.str().unwrap(), "payload");

        // One before the floor is rejected.
        let mut v4 = sealed.to_vec();
        v4[8..12].copy_from_slice(&(MIN_VERSION - 1).to_le_bytes());
        assert_eq!(
            unseal(&v4),
            Err(WireError::BadVersion {
                found: MIN_VERSION - 1,
                supported: VERSION
            })
        );
    }

    #[test]
    fn envelope_rejects_corruption() {
        let mut w = Writer::new();
        w.u64(12345);
        let sealed = seal(w.finish());

        let mut bad_magic = sealed.to_vec();
        bad_magic[0] ^= 0xff;
        assert_eq!(unseal(&bad_magic), Err(WireError::BadMagic));

        let mut bad_version = sealed.to_vec();
        bad_version[8] = 99;
        assert!(matches!(
            unseal(&bad_version),
            Err(WireError::BadVersion { found: 99, .. })
        ));

        let mut bad_payload = sealed.to_vec();
        bad_payload[18] ^= 0x40;
        assert!(matches!(
            unseal(&bad_payload),
            Err(WireError::BadChecksum { .. })
        ));

        assert!(matches!(
            unseal(&sealed[..10]),
            Err(WireError::Truncated { .. })
        ));
    }
}
