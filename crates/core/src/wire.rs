//! The package wire format: a small, explicit binary codec.
//!
//! HHVM's profile serializer is bespoke (acknowledgments credit its
//! initial implementation); this reproduction's codec is likewise
//! hand-rolled on top of [`bytes`]: little-endian primitives,
//! length-prefixed sequences, and a trailing CRC-32 over the payload.
//! Every decode path returns a typed [`WireError`] — a corrupted package
//! must never panic a consumer (§VI-A.3 falls back instead).

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a field required.
    Truncated { needed: usize, left: usize },
    /// The magic prefix did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion { found: u32, supported: u32 },
    /// Payload checksum mismatch (corruption in transit/storage).
    BadChecksum { expected: u32, found: u32 },
    /// Structurally invalid content (bad tag, oversized length, ...).
    Corrupt(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, left } => {
                write!(f, "truncated package: needed {needed} bytes, {left} left")
            }
            WireError::BadMagic => write!(f, "not a jump-start package (bad magic)"),
            WireError::BadVersion { found, supported } => {
                write!(
                    f,
                    "unsupported package version {found} (supported: {supported})"
                )
            }
            WireError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            WireError::Corrupt(msg) => write!(f, "corrupt package: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Write cursor.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `f64` (LE bits).
    pub fn f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a sequence length (for the caller to follow with items).
    pub fn seq(&mut self, len: usize) {
        self.u32(len as u32);
    }

    /// Finishes, returning the raw payload (no envelope).
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Read cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

/// Cap on decoded sequence lengths; anything bigger is corruption, not a
/// real package (prevents attacker-controlled allocations).
const MAX_SEQ: u32 = 64 << 20;

impl<'a> Reader<'a> {
    /// Creates a reader over a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError::Truncated {
                needed: n,
                left: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()?;
        if len > MAX_SEQ {
            return Err(WireError::Corrupt(format!("byte string of {len} bytes")));
        }
        self.need(len as usize)?;
        let mut v = vec![0u8; len as usize];
        self.buf.copy_to_slice(&mut v);
        Ok(v)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::Corrupt("invalid utf-8".into()))
    }

    /// Reads a sequence length.
    pub fn seq(&mut self) -> Result<usize, WireError> {
        let len = self.u32()?;
        if len > MAX_SEQ {
            return Err(WireError::Corrupt(format!("sequence of {len} items")));
        }
        Ok(len as usize)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// Magic prefix of every package.
pub const MAGIC: &[u8; 8] = b"HHJSPKG\0";

/// Current format version.
pub const VERSION: u32 = 4;

/// Wraps a payload in the envelope: magic, version, length, payload, CRC.
pub fn seal(payload: Bytes) -> Bytes {
    let mut out = BytesMut::with_capacity(payload.len() + 20);
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le(payload.len() as u32);
    out.put_slice(&payload);
    out.put_u32_le(crate::crc32::crc32(&payload));
    out.freeze()
}

/// Unwraps the envelope, verifying magic, version, length and checksum.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first problem found.
pub fn unseal(data: &[u8]) -> Result<&[u8], WireError> {
    if data.len() < MAGIC.len() + 12 {
        return Err(WireError::Truncated {
            needed: MAGIC.len() + 12,
            left: data.len(),
        });
    }
    if &data[..8] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(WireError::BadVersion {
            found: version,
            supported: VERSION,
        });
    }
    let len = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
    if data.len() < 16 + len + 4 {
        return Err(WireError::Truncated {
            needed: 16 + len + 4,
            left: data.len(),
        });
    }
    let payload = &data[16..16 + len];
    let stored = u32::from_le_bytes(data[16 + len..16 + len + 4].try_into().expect("4 bytes"));
    let actual = crate::crc32::crc32(payload);
    if stored != actual {
        return Err(WireError::BadChecksum {
            expected: stored,
            found: actual,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.f64(0.25);
        w.str("héllo");
        w.seq(3);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.seq().unwrap(), 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_sequences_are_corrupt() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        assert!(matches!(r.seq(), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn envelope_round_trips() {
        let mut w = Writer::new();
        w.str("payload");
        let sealed = seal(w.finish());
        let payload = unseal(&sealed).unwrap();
        let mut r = Reader::new(payload);
        assert_eq!(r.str().unwrap(), "payload");
    }

    #[test]
    fn envelope_rejects_corruption() {
        let mut w = Writer::new();
        w.u64(12345);
        let sealed = seal(w.finish());

        let mut bad_magic = sealed.to_vec();
        bad_magic[0] ^= 0xff;
        assert_eq!(unseal(&bad_magic), Err(WireError::BadMagic));

        let mut bad_version = sealed.to_vec();
        bad_version[8] = 99;
        assert!(matches!(
            unseal(&bad_version),
            Err(WireError::BadVersion { found: 99, .. })
        ));

        let mut bad_payload = sealed.to_vec();
        bad_payload[18] ^= 0x40;
        assert!(matches!(
            unseal(&bad_payload),
            Err(WireError::BadChecksum { .. })
        ));

        assert!(matches!(
            unseal(&sealed[..10]),
            Err(WireError::Truncated { .. })
        ));
    }
}
