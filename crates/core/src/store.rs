//! The package store: multiple randomized packages per (region, bucket),
//! held as a content-addressed chunk pool.
//!
//! §VI-A.2: "Instead of having a single seeder server for each data center
//! and semantic partition, we actually have several. ... A consumer
//! randomly picks a profile-data package for its corresponding data center
//! and semantic partition each time it restarts."
//!
//! Two scale mechanisms on top of the paper's design:
//!
//! * **Chunk dedup** ([`PackageStore::publish_chunked`]): packages are
//!   stored as [`crate::chunk`] manifests over a per-cell pool, so the N
//!   randomized packages of a cell — and consecutive pushes of churned
//!   releases — share the bytes of every identical function record. The
//!   per-publish [`PublishReceipt`] reports how many chunk bytes were
//!   actually new, which is what a seeder→store delta upload would send.
//! * **Shared handles**: lookups return `Arc<StoredPackage>`, so a fleet
//!   orchestrator fanning one cell's packages out to thousands of
//!   consumers never deep-copies package state per server.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::chunk::{chunk_package, ChunkPool, Manifest};
use crate::package::{PackageMeta, ProfilePackage};

/// A published package: serialized bytes plus a meta summary, and — for
/// chunk-published packages — the chunk manifest.
#[derive(Clone, Debug)]
pub struct StoredPackage {
    /// Store-assigned id.
    pub id: u64,
    /// Serialized (sealed) package bytes.
    pub bytes: Bytes,
    /// Meta summary (as published; the authoritative copy is in `bytes`).
    pub meta: PackageMeta,
    /// Chunk manifest, when published via
    /// [`PackageStore::publish_chunked`]. Consumers with a warm chunk
    /// cache use it for delta fetch and lazy decode; `None` means the
    /// package is only available monolithically.
    pub manifest: Option<Arc<Manifest>>,
}

/// What one [`PackageStore::publish_chunked`] call actually stored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PublishReceipt {
    /// Chunks in the package.
    pub chunks_total: usize,
    /// Chunks not previously pooled in this cell (bytes retained).
    pub chunks_new: usize,
    /// Total payload bytes across the package's chunks.
    pub bytes_total: u64,
    /// Payload bytes actually added to the pool.
    pub bytes_new: u64,
    /// Encoded manifest size.
    pub manifest_bytes: u64,
}

impl PublishReceipt {
    /// Bytes a seeder→store delta upload would send: manifest plus the
    /// chunks the store lacked.
    pub fn wire_bytes(&self) -> u64 {
        self.manifest_bytes + self.bytes_new
    }
}

/// Cumulative dedup accounting for one (region, bucket) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellDedup {
    /// Chunk-published packages.
    pub published: u64,
    /// Chunks across all publishes (with repetition).
    pub chunks_total: u64,
    /// Distinct chunks retained.
    pub chunks_new: u64,
    /// Payload bytes across all publishes (with repetition).
    pub bytes_total: u64,
    /// Distinct payload bytes retained.
    pub bytes_new: u64,
}

impl CellDedup {
    /// Fraction of published bytes the pool did **not** have to retain
    /// (0.0 = every chunk unique, higher = more sharing).
    pub fn dedup_ratio(&self) -> f64 {
        if self.bytes_total == 0 {
            return 0.0;
        }
        1.0 - self.bytes_new as f64 / self.bytes_total as f64
    }
}

/// One (region, bucket) cell: its packages plus the shared chunk pool.
#[derive(Debug, Default)]
struct Cell {
    packages: Vec<Arc<StoredPackage>>,
    pool: ChunkPool,
    dedup: CellDedup,
}

/// Thread-safe store keyed by (region, bucket).
#[derive(Debug, Default)]
pub struct PackageStore {
    inner: RwLock<HashMap<(u32, u32), Cell>>,
    next_id: AtomicU64,
}

impl PackageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a validated package as an opaque blob; returns its id.
    ///
    /// The legacy full-bytes path: no chunking, no dedup. Prefer
    /// [`PackageStore::publish_chunked`] for real packages.
    pub fn publish(&self, meta: PackageMeta, bytes: Bytes) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .write()
            .entry((meta.region, meta.bucket))
            .or_default()
            .packages
            .push(Arc::new(StoredPackage {
                id,
                bytes,
                meta,
                manifest: None,
            }));
        id
    }

    /// Publishes a package as content-addressed chunks, deduplicating
    /// against the cell's pool. Returns the package id and what the
    /// publish actually stored.
    ///
    /// `repo_funcs` is the function count of the release the profile was
    /// collected against (recorded in the manifest as the lazy-decode
    /// guard).
    pub fn publish_chunked(
        &self,
        pkg: &ProfilePackage,
        repo_funcs: usize,
    ) -> (u64, PublishReceipt) {
        let cp = chunk_package(pkg, repo_funcs);
        let mut receipt = PublishReceipt {
            chunks_total: cp.chunks.len(),
            manifest_bytes: cp.manifest.wire_len() as u64,
            ..Default::default()
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let cell = inner.entry((pkg.meta.region, pkg.meta.bucket)).or_default();
        for c in &cp.chunks {
            receipt.bytes_total += c.bytes.len() as u64;
            if cell.pool.insert(c) {
                receipt.chunks_new += 1;
                receipt.bytes_new += c.bytes.len() as u64;
            }
        }
        cell.dedup.published += 1;
        cell.dedup.chunks_total += receipt.chunks_total as u64;
        cell.dedup.chunks_new += receipt.chunks_new as u64;
        cell.dedup.bytes_total += receipt.bytes_total;
        cell.dedup.bytes_new += receipt.bytes_new;
        cell.packages.push(Arc::new(StoredPackage {
            id,
            bytes: cp.sealed,
            meta: pkg.meta,
            manifest: Some(Arc::new(cp.manifest)),
        }));
        (id, receipt)
    }

    /// Picks a random package for (region, bucket), if any.
    pub fn pick_random(
        &self,
        region: u32,
        bucket: u32,
        rng: &mut SmallRng,
    ) -> Option<Arc<StoredPackage>> {
        let inner = self.inner.read();
        let list = &inner.get(&(region, bucket))?.packages;
        if list.is_empty() {
            return None;
        }
        Some(Arc::clone(&list[rng.gen_range(0..list.len())]))
    }

    /// Number of packages available for (region, bucket).
    pub fn count(&self, region: u32, bucket: u32) -> usize {
        self.inner
            .read()
            .get(&(region, bucket))
            .map_or(0, |c| c.packages.len())
    }

    /// Every package published for (region, bucket), in publish order.
    ///
    /// Lets a fleet orchestrator decode each cell's packages once and
    /// share them read-only across thousands of consumers. The handles
    /// are `Arc`-shared — fan-out to 2000+ servers clones pointers, not
    /// package state.
    pub fn cell_packages(&self, region: u32, bucket: u32) -> Vec<Arc<StoredPackage>> {
        self.inner
            .read()
            .get(&(region, bucket))
            .map(|c| c.packages.clone())
            .unwrap_or_default()
    }

    /// A snapshot of the cell's chunk pool (cheap: the chunk bytes are
    /// reference-counted views). This is what a consumer's chunk cache
    /// warms from.
    pub fn cell_pool(&self, region: u32, bucket: u32) -> ChunkPool {
        self.inner
            .read()
            .get(&(region, bucket))
            .map(|c| c.pool.clone())
            .unwrap_or_default()
    }

    /// Cumulative chunk-dedup accounting for the cell.
    pub fn dedup_stats(&self, region: u32, bucket: u32) -> CellDedup {
        self.inner
            .read()
            .get(&(region, bucket))
            .map(|c| c.dedup)
            .unwrap_or_default()
    }

    /// Removes a package by id (e.g. pulled after incident response).
    /// The cell's chunk pool is left untouched — other packages may
    /// share the chunks.
    pub fn remove(&self, id: u64) -> bool {
        let mut inner = self.inner.write();
        for cell in inner.values_mut() {
            if let Some(i) = cell.packages.iter().position(|p| p.id == id) {
                cell.packages.remove(i);
                return true;
            }
        }
        false
    }

    /// Corrupts one byte of a stored package (fault injection for the
    /// §VI-A.3 "package itself gets corrupted" scenario). Drops the
    /// package's manifest: the corruption model targets the monolithic
    /// bytes, and a manifest describing bytes the package no longer has
    /// would be a lie.
    pub fn corrupt(&self, id: u64, byte: usize) -> bool {
        let mut inner = self.inner.write();
        for cell in inner.values_mut() {
            if let Some(p) = cell.packages.iter_mut().find(|p| p.id == id) {
                if p.bytes.is_empty() {
                    return false;
                }
                let pkg = Arc::make_mut(p);
                let mut v = pkg.bytes.to_vec();
                let i = byte % v.len();
                v[i] ^= 0xa5;
                pkg.bytes = Bytes::from(v);
                pkg.manifest = None;
                return true;
            }
        }
        false
    }

    /// Drops everything (a new release invalidates old profiles).
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn meta(region: u32, bucket: u32, seeder: u64) -> PackageMeta {
        PackageMeta {
            region,
            bucket,
            seeder_id: seeder,
            ..Default::default()
        }
    }

    fn pkg(region: u32, bucket: u32, seeder: u64) -> ProfilePackage {
        ProfilePackage {
            meta: meta(region, bucket, seeder),
            ..Default::default()
        }
    }

    #[test]
    fn publish_and_pick() {
        let store = PackageStore::new();
        assert_eq!(store.count(0, 0), 0);
        store.publish(meta(0, 0, 1), Bytes::from_static(b"aaa"));
        store.publish(meta(0, 0, 2), Bytes::from_static(b"bbb"));
        store.publish(meta(1, 0, 3), Bytes::from_static(b"ccc"));
        assert_eq!(store.count(0, 0), 2);
        assert_eq!(store.count(1, 0), 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let p = store.pick_random(0, 0, &mut rng).unwrap();
        assert!(p.meta.seeder_id == 1 || p.meta.seeder_id == 2);
        assert!(p.manifest.is_none(), "opaque publish has no manifest");
        assert!(store.pick_random(9, 9, &mut rng).is_none());
    }

    #[test]
    fn random_pick_covers_all_packages() {
        let store = PackageStore::new();
        for s in 0..4 {
            store.publish(meta(0, 0, s), Bytes::from_static(b"x"));
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(store.pick_random(0, 0, &mut rng).unwrap().meta.seeder_id);
        }
        assert_eq!(seen.len(), 4, "randomized selection should spread load");
    }

    #[test]
    fn remove_by_id() {
        let store = PackageStore::new();
        let id = store.publish(meta(0, 1, 1), Bytes::from_static(b"x"));
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert_eq!(store.count(0, 1), 0);
    }

    #[test]
    fn corrupt_flips_a_byte_and_drops_the_manifest() {
        let store = PackageStore::new();
        let (id, _) = store.publish_chunked(&pkg(0, 0, 1), 0);
        let mut rng = SmallRng::seed_from_u64(0);
        let clean = store.pick_random(0, 0, &mut rng).unwrap();
        assert!(clean.manifest.is_some());
        assert!(store.corrupt(id, 1));
        let p = store.pick_random(0, 0, &mut rng).unwrap();
        assert_ne!(p.bytes, clean.bytes);
        assert!(p.manifest.is_none());
        // The pre-corruption handle is unaffected (copy-on-write).
        assert!(clean.manifest.is_some());
    }

    #[test]
    fn clear_empties_the_store() {
        let store = PackageStore::new();
        store.publish(meta(0, 0, 1), Bytes::from_static(b"x"));
        store.clear();
        assert_eq!(store.count(0, 0), 0);
    }

    #[test]
    fn chunked_republish_stores_no_new_bytes() {
        let store = PackageStore::new();
        let p = pkg(2, 3, 1);
        let (_, first) = store.publish_chunked(&p, 0);
        assert_eq!(first.chunks_new, first.chunks_total);
        assert_eq!(first.bytes_new, first.bytes_total);
        // Same content from another seeder: everything dedups.
        let mut p2 = p.clone();
        p2.meta.seeder_id = 2;
        let (_, second) = store.publish_chunked(&p2, 0);
        // Only the head chunk (it holds the seeder id) differs; every
        // other chunk shares pool bytes.
        assert_eq!(second.chunks_new, 1);
        assert!(second.bytes_new < second.bytes_total);
        let d = store.dedup_stats(2, 3);
        assert_eq!(d.published, 2);
        assert!(d.dedup_ratio() > 0.0);
        // Different cell, separate pool.
        assert_eq!(store.dedup_stats(0, 0), CellDedup::default());
    }

    #[test]
    fn cell_pool_reassembles_published_packages() {
        let store = PackageStore::new();
        let p = pkg(1, 1, 9);
        store.publish_chunked(&p, 0);
        let pool = store.cell_pool(1, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let sp = store.pick_random(1, 1, &mut rng).unwrap();
        let man = sp.manifest.as_ref().unwrap();
        let sealed = crate::chunk::reassemble(man, &pool).unwrap();
        assert_eq!(sealed, sp.bytes);
        assert_eq!(sealed, p.serialize());
    }

    #[test]
    fn cell_fanout_shares_handles() {
        let store = PackageStore::new();
        store.publish_chunked(&pkg(0, 0, 1), 0);
        let a = store.cell_packages(0, 0);
        let b = store.cell_packages(0, 0);
        assert!(Arc::ptr_eq(&a[0], &b[0]), "fan-out clones pointers only");
    }
}
