//! The package store: multiple randomized packages per (region, bucket).
//!
//! §VI-A.2: "Instead of having a single seeder server for each data center
//! and semantic partition, we actually have several. ... A consumer
//! randomly picks a profile-data package for its corresponding data center
//! and semantic partition each time it restarts."

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::package::PackageMeta;

/// A published package: serialized bytes plus a meta summary.
#[derive(Clone, Debug)]
pub struct StoredPackage {
    /// Store-assigned id.
    pub id: u64,
    /// Serialized (sealed) package bytes.
    pub bytes: Bytes,
    /// Meta summary (as published; the authoritative copy is in `bytes`).
    pub meta: PackageMeta,
}

/// Thread-safe store keyed by (region, bucket).
#[derive(Debug, Default)]
pub struct PackageStore {
    inner: RwLock<HashMap<(u32, u32), Vec<StoredPackage>>>,
    next_id: AtomicU64,
}

impl PackageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a validated package; returns its id.
    pub fn publish(&self, meta: PackageMeta, bytes: Bytes) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .write()
            .entry((meta.region, meta.bucket))
            .or_default()
            .push(StoredPackage { id, bytes, meta });
        id
    }

    /// Picks a random package for (region, bucket), if any.
    pub fn pick_random(
        &self,
        region: u32,
        bucket: u32,
        rng: &mut SmallRng,
    ) -> Option<StoredPackage> {
        let inner = self.inner.read();
        let list = inner.get(&(region, bucket))?;
        if list.is_empty() {
            return None;
        }
        Some(list[rng.gen_range(0..list.len())].clone())
    }

    /// Number of packages available for (region, bucket).
    pub fn count(&self, region: u32, bucket: u32) -> usize {
        self.inner.read().get(&(region, bucket)).map_or(0, Vec::len)
    }

    /// Every package published for (region, bucket), in publish order.
    ///
    /// Lets a fleet orchestrator decode each cell's packages once and
    /// share them read-only across thousands of consumers, instead of
    /// re-deserializing per server; the clones are cheap (`Bytes` is
    /// reference-counted).
    pub fn cell_packages(&self, region: u32, bucket: u32) -> Vec<StoredPackage> {
        self.inner
            .read()
            .get(&(region, bucket))
            .cloned()
            .unwrap_or_default()
    }

    /// Removes a package by id (e.g. pulled after incident response).
    pub fn remove(&self, id: u64) -> bool {
        let mut inner = self.inner.write();
        for list in inner.values_mut() {
            if let Some(i) = list.iter().position(|p| p.id == id) {
                list.remove(i);
                return true;
            }
        }
        false
    }

    /// Corrupts one byte of a stored package (fault injection for the
    /// §VI-A.3 "package itself gets corrupted" scenario).
    pub fn corrupt(&self, id: u64, byte: usize) -> bool {
        let mut inner = self.inner.write();
        for list in inner.values_mut() {
            if let Some(p) = list.iter_mut().find(|p| p.id == id) {
                let mut v = p.bytes.to_vec();
                if v.is_empty() {
                    return false;
                }
                let i = byte % v.len();
                v[i] ^= 0xa5;
                p.bytes = Bytes::from(v);
                return true;
            }
        }
        false
    }

    /// Drops everything (a new release invalidates old profiles).
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn meta(region: u32, bucket: u32, seeder: u64) -> PackageMeta {
        PackageMeta {
            region,
            bucket,
            seeder_id: seeder,
            ..Default::default()
        }
    }

    #[test]
    fn publish_and_pick() {
        let store = PackageStore::new();
        assert_eq!(store.count(0, 0), 0);
        store.publish(meta(0, 0, 1), Bytes::from_static(b"aaa"));
        store.publish(meta(0, 0, 2), Bytes::from_static(b"bbb"));
        store.publish(meta(1, 0, 3), Bytes::from_static(b"ccc"));
        assert_eq!(store.count(0, 0), 2);
        assert_eq!(store.count(1, 0), 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let p = store.pick_random(0, 0, &mut rng).unwrap();
        assert!(p.meta.seeder_id == 1 || p.meta.seeder_id == 2);
        assert!(store.pick_random(9, 9, &mut rng).is_none());
    }

    #[test]
    fn random_pick_covers_all_packages() {
        let store = PackageStore::new();
        for s in 0..4 {
            store.publish(meta(0, 0, s), Bytes::from_static(b"x"));
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(store.pick_random(0, 0, &mut rng).unwrap().meta.seeder_id);
        }
        assert_eq!(seen.len(), 4, "randomized selection should spread load");
    }

    #[test]
    fn remove_by_id() {
        let store = PackageStore::new();
        let id = store.publish(meta(0, 1, 1), Bytes::from_static(b"x"));
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert_eq!(store.count(0, 1), 0);
    }

    #[test]
    fn corrupt_flips_a_byte() {
        let store = PackageStore::new();
        let id = store.publish(meta(0, 0, 1), Bytes::from_static(b"hello"));
        assert!(store.corrupt(id, 1));
        let mut rng = SmallRng::seed_from_u64(0);
        let p = store.pick_random(0, 0, &mut rng).unwrap();
        assert_ne!(&p.bytes[..], b"hello");
    }

    #[test]
    fn clear_empties_the_store() {
        let store = PackageStore::new();
        store.publish(meta(0, 0, 1), Bytes::from_static(b"x"));
        store.clear();
        assert_eq!(store.count(0, 0), 0);
    }
}
