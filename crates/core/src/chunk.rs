//! Content-addressed package chunks: delta distribution + lazy decode.
//!
//! Consecutive releases share most of their function profiles, yet the
//! baseline distribution path re-sends the full [`ProfilePackage`] to
//! every consumer on every push. This module slices the canonical
//! serialized payload into *chunks* keyed by a content hash, so
//!
//! * the store deduplicates identical chunks across pushes (a churn-0.1
//!   release re-uses the unchanged ~90% of function records),
//! * a push ships a small [`Manifest`] plus only the chunks the receiver
//!   does not already hold ([`delta_against`]),
//! * a consumer boot with `early_serve_frac < 1` decodes only the hot
//!   chunks' bytes before serve-start ([`LazyLoader`]), leaving the cold
//!   tail to the background pipeline.
//!
//! The chunk boundaries are the payload's natural record boundaries
//! (see [`ProfilePackage::encoded_len`]): one *head* chunk (meta +
//! preload + function count), one chunk per function record in `FuncId`
//! order, one *tail* chunk (property counters, ctx profile, orders).
//! Because chunks are byte slices of the canonical encoding,
//! [`reassemble`] is lossless by construction: concatenating the chunks
//! reproduces the monolithic sealed bytes exactly, which the manifest's
//! payload CRC re-verifies end to end.
//!
//! Chunk ids are length-prefixed FNV-1a ([`analysis::chunk_fingerprint`]
//! — the same hasher family as every structural fingerprint in the
//! system); each chunk additionally carries a CRC-32, so an id collision
//! is detected at reassembly, never silently merged.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use bytecode::FuncId;
use jit::TierProfile;

use crate::crc32::crc32;
use crate::package::{
    self, head_encoded_len, read_func_record, read_head, read_tail, sorted_funcs, PackageMeta,
    PreloadLists, ProfilePackage,
};
use crate::wire::{
    begin_sealed, finish_sealed, unseal, Reader, WireError, Writer, ENVELOPE_LEN, HEADER_LEN,
};

/// Content hash of a chunk's bytes ([`analysis::chunk_fingerprint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// One content-addressed chunk: a byte slice of the canonical payload.
/// The bytes are a zero-copy view of the sealed package buffer.
#[derive(Clone, Debug)]
pub struct Chunk {
    /// Content hash of `bytes`.
    pub id: ChunkId,
    /// The raw payload slice.
    pub bytes: Bytes,
}

/// What a manifest entry describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkKind {
    /// Package meta + preload lists + function-record count.
    Head,
    /// One function's tier-profile record.
    Func {
        /// The function the record profiles.
        func: FuncId,
        /// Summed block counters — the consumer ranks compile order by
        /// this without decoding the chunk.
        heat: u64,
        /// Every function the record's call-target profile references.
        /// The lazy decoder closes the hot set over these so inline
        /// templates always find their callee profiles decoded.
        callees: Vec<FuncId>,
    },
    /// Property counters, ctx profile, prop orders, function order.
    Tail,
}

/// One row of the manifest: identity, length and checksum of a chunk,
/// plus what it holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Content hash of the chunk bytes.
    pub id: ChunkId,
    /// Chunk length in bytes.
    pub len: u32,
    /// CRC-32 of the chunk bytes (collision guard for the FNV id).
    pub crc: u32,
    /// What the chunk holds.
    pub kind: ChunkKind,
}

/// The chunk manifest of one package: everything a consumer needs to
/// fetch, verify, reassemble and *lazily* decode the package.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Region the package was collected in (mirrors the head meta).
    pub region: u32,
    /// Semantic bucket (mirrors the head meta).
    pub bucket: u32,
    /// Seeder that produced the package (mirrors the head meta).
    pub seeder_id: u64,
    /// Collection timestamp (mirrors the head meta).
    pub created_ms: u64,
    /// Function count of the repo the profile was collected against; a
    /// consumer on a different release must fall back to the monolithic
    /// lint-and-repair path instead of lazy decode.
    pub repo_funcs: u32,
    /// Total payload length (sum of all chunk lengths).
    pub payload_len: u32,
    /// CRC-32 of the whole payload — the same checksum the monolithic
    /// envelope carries, re-verified after reassembly.
    pub payload_crc: u32,
    /// Chunks in payload order: head, function records in `FuncId`
    /// order, tail.
    pub entries: Vec<ManifestEntry>,
    /// Indices into `entries` of the function chunks, hottest first
    /// (ties broken by `FuncId`, exactly like
    /// [`TierProfile::heat_ranked`]) — the hot-rank order the lazy
    /// decoder walks.
    pub hot_rank: Vec<u32>,
}

/// Distinguishes a manifest payload from a package payload under the
/// shared envelope magic.
const MANIFEST_TAG: u32 = 0x4d_4e_46_31; // "MNF1"

/// Version of the manifest payload encoding itself.
const MANIFEST_VERSION: u32 = 1;

impl Manifest {
    /// Function-chunk entries as `(entry index, func, heat)`.
    pub fn func_entries(&self) -> impl Iterator<Item = (usize, FuncId, u64)> + '_ {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            if let ChunkKind::Func { func, heat, .. } = &e.kind {
                Some((i, *func, *heat))
            } else {
                None
            }
        })
    }

    /// Number of function chunks.
    pub fn func_count(&self) -> usize {
        self.entries.len().saturating_sub(2)
    }

    /// Compile order by descending heat — what
    /// [`TierProfile::functions_by_heat`] would return, available
    /// without decoding a single function chunk.
    pub fn funcs_by_heat(&self) -> Vec<FuncId> {
        self.hot_rank
            .iter()
            .filter_map(|&i| match &self.entries[i as usize].kind {
                ChunkKind::Func { func, .. } => Some(*func),
                _ => None,
            })
            .collect()
    }

    /// Per-function heat, read off the manifest.
    pub fn heat_map(&self) -> HashMap<FuncId, u64> {
        self.func_entries().map(|(_, f, h)| (f, h)).collect()
    }

    /// Total bytes across all chunks (== payload length).
    pub fn total_chunk_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len as u64).sum()
    }

    /// Fraction of payload bytes a lazy boot decodes before serve-start
    /// at `frac`: head + tail + the early-serve prefix of the hot rank,
    /// closed over callees — priced off the manifest alone, without
    /// touching a single chunk. This is exactly the set
    /// [`LazyLoader::hot_closure`] decodes for the same fraction.
    pub fn early_decode_frac(&self, frac: f64) -> f64 {
        if self.payload_len == 0 {
            return 1.0;
        }
        let order = self.funcs_by_heat();
        let hot_count = crate::pipeline::early_serve_prefix_by_heat(&self.heat_map(), &order, frac);
        let by_func: HashMap<FuncId, usize> = self.func_entries().map(|(i, f, _)| (f, i)).collect();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = order[..hot_count]
            .iter()
            .filter_map(|f| by_func.get(f).copied())
            .collect();
        seen.extend(stack.iter().copied());
        while let Some(i) = stack.pop() {
            if let ChunkKind::Func { callees, .. } = &self.entries[i].kind {
                for c in callees {
                    if let Some(&j) = by_func.get(c) {
                        if seen.insert(j) {
                            stack.push(j);
                        }
                    }
                }
            }
        }
        let mut bytes: u64 = seen.iter().map(|&i| self.entries[i].len as u64).sum();
        bytes += self.entries.first().map_or(0, |e| e.len as u64);
        bytes += self.entries.last().map_or(0, |e| e.len as u64);
        (bytes as f64 / self.payload_len as f64).min(1.0)
    }

    /// Exact size [`Manifest::encode`] produces, envelope included.
    pub fn wire_len(&self) -> usize {
        self.encoded_len() + ENVELOPE_LEN
    }

    /// Exact payload size of the encoded manifest, mirroring the writer.
    pub fn encoded_len(&self) -> usize {
        // tag, version, region, bucket, repo_funcs, payload_len,
        // payload_crc (u32) + seeder, created (u64).
        let mut len = 7 * 4 + 2 * 8;
        len += 4; // entry count
        for e in &self.entries {
            len += 1 + 8 + 4 + 4; // kind tag, id, len, crc
            if let ChunkKind::Func { callees, .. } = &e.kind {
                len += 4 + 8 + 4 + 4 * callees.len(); // func, heat, callee seq
            }
        }
        len + 4 + 4 * self.hot_rank.len()
    }

    /// Encodes to the sealed wire format (shared envelope, manifest tag).
    pub fn encode(&self) -> Bytes {
        let payload_len = self.encoded_len();
        let mut w = Writer::with_capacity(payload_len + ENVELOPE_LEN);
        begin_sealed(&mut w, payload_len);
        w.u32(MANIFEST_TAG);
        w.u32(MANIFEST_VERSION);
        w.u32(self.region);
        w.u32(self.bucket);
        w.u64(self.seeder_id);
        w.u64(self.created_ms);
        w.u32(self.repo_funcs);
        w.u32(self.payload_len);
        w.u32(self.payload_crc);
        w.seq(self.entries.len());
        for e in &self.entries {
            match &e.kind {
                ChunkKind::Head => w.u8(0),
                ChunkKind::Func { .. } => w.u8(1),
                ChunkKind::Tail => w.u8(2),
            }
            w.u64(e.id.0);
            w.u32(e.len);
            w.u32(e.crc);
            if let ChunkKind::Func {
                func,
                heat,
                callees,
            } = &e.kind
            {
                w.u32(func.0);
                w.u64(*heat);
                w.seq(callees.len());
                for c in callees {
                    w.u32(c.0);
                }
            }
        }
        w.seq(self.hot_rank.len());
        for &i in &self.hot_rank {
            w.u32(i);
        }
        debug_assert_eq!(
            w.len(),
            payload_len + ENVELOPE_LEN - 4,
            "encoded_len must mirror the writer exactly"
        );
        finish_sealed(w)
    }

    /// Decodes and structurally validates a sealed manifest.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope corruption, version skew, or
    /// any structural violation: wrong chunk-kind shape, duplicate chunk
    /// ids, length totals that disagree with the payload length, or a
    /// hot-rank that is not a permutation of the function chunks.
    pub fn decode(data: &[u8]) -> Result<Manifest, WireError> {
        let payload = unseal(data)?;
        let mut r = Reader::new(payload);
        if r.u32()? != MANIFEST_TAG {
            return Err(WireError::Corrupt("not a chunk manifest".into()));
        }
        let version = r.u32()?;
        if version != MANIFEST_VERSION {
            return Err(WireError::Corrupt(format!(
                "manifest version {version} (supported: {MANIFEST_VERSION})"
            )));
        }
        let region = r.u32()?;
        let bucket = r.u32()?;
        let seeder_id = r.u64()?;
        let created_ms = r.u64()?;
        let repo_funcs = r.u32()?;
        let payload_len = r.u32()?;
        let payload_crc = r.u32()?;
        let n = r.seq()?;
        if n < 2 {
            return Err(WireError::Corrupt(format!("{n} chunk entries")));
        }
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        let mut seen_ids = HashSet::with_capacity(n.min(1 << 16));
        let mut last_func: Option<FuncId> = None;
        let mut len_sum = 0u64;
        for i in 0..n {
            let tag = r.u8()?;
            let id = ChunkId(r.u64()?);
            let len = r.u32()?;
            let crc = r.u32()?;
            let kind = match tag {
                0 if i == 0 => ChunkKind::Head,
                2 if i == n - 1 => ChunkKind::Tail,
                1 if i > 0 && i < n - 1 => {
                    let func = FuncId(r.u32()?);
                    let heat = r.u64()?;
                    let nc = r.seq()?;
                    let mut callees = Vec::with_capacity(nc.min(1 << 12));
                    for _ in 0..nc {
                        callees.push(FuncId(r.u32()?));
                    }
                    // Function records are canonical: strictly ascending
                    // FuncId, so a duplicated function is corruption.
                    if last_func.is_some_and(|prev| prev >= func) {
                        return Err(WireError::Corrupt(format!(
                            "function chunks out of order at {func:?}"
                        )));
                    }
                    last_func = Some(func);
                    ChunkKind::Func {
                        func,
                        heat,
                        callees,
                    }
                }
                t => {
                    return Err(WireError::Corrupt(format!(
                        "chunk kind {t} at entry {i}/{n}"
                    )))
                }
            };
            if !seen_ids.insert(id) {
                return Err(WireError::Corrupt(format!("duplicate chunk {id}")));
            }
            len_sum += len as u64;
            entries.push(ManifestEntry { id, len, crc, kind });
        }
        if len_sum != payload_len as u64 {
            return Err(WireError::Corrupt(format!(
                "chunk lengths sum to {len_sum}, payload is {payload_len}"
            )));
        }
        let nr = r.seq()?;
        if nr != n - 2 {
            return Err(WireError::Corrupt(format!(
                "hot-rank of {nr} over {} function chunks",
                n - 2
            )));
        }
        let mut hot_rank = Vec::with_capacity(nr.min(1 << 16));
        let mut seen_rank = HashSet::with_capacity(nr.min(1 << 16));
        for _ in 0..nr {
            let i = r.u32()?;
            let is_func = entries
                .get(i as usize)
                .is_some_and(|e| matches!(e.kind, ChunkKind::Func { .. }));
            if !is_func || !seen_rank.insert(i) {
                return Err(WireError::Corrupt(format!("hot-rank index {i}")));
            }
            hot_rank.push(i);
        }
        if r.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing manifest bytes",
                r.remaining()
            )));
        }
        Ok(Manifest {
            region,
            bucket,
            seeder_id,
            created_ms,
            repo_funcs,
            payload_len,
            payload_crc,
            entries,
            hot_rank,
        })
    }
}

/// A package split into chunks, plus the monolithic sealed bytes the
/// chunks were sliced from (all zero-copy views of one buffer).
#[derive(Clone, Debug)]
pub struct ChunkedPackage {
    /// The manifest describing the chunks.
    pub manifest: Manifest,
    /// Chunks parallel to `manifest.entries`.
    pub chunks: Vec<Chunk>,
    /// The monolithic sealed encoding (envelope included).
    pub sealed: Bytes,
}

/// Splits a package into content-addressed chunks at its record
/// boundaries. `repo_funcs` is the function count of the repo the
/// profile was collected against (the lazy-decode release guard).
///
/// The chunks are byte slices of the canonical [`ProfilePackage::serialize`]
/// output, so reassembling them reproduces the monolithic encoding
/// byte for byte.
pub fn chunk_package(pkg: &ProfilePackage, repo_funcs: usize) -> ChunkedPackage {
    let sealed = pkg.serialize();
    let payload_len = sealed.len() - ENVELOPE_LEN;
    let _span = telemetry::span!("package-chunk", "bytes" => payload_len);
    let payload_crc = crc32(&sealed[HEADER_LEN..HEADER_LEN + payload_len]);

    let funcs = sorted_funcs(&pkg.tier);
    let refs = package::hash_refs(&pkg.tier);
    let mut entries = Vec::with_capacity(funcs.len() + 2);
    let mut chunks = Vec::with_capacity(funcs.len() + 2);
    let mut pos = HEADER_LEN;
    let mut push = |pos: &mut usize, len: usize, kind: ChunkKind| {
        let bytes = sealed.slice(*pos..*pos + len);
        *pos += len;
        let id = ChunkId(analysis::chunk_fingerprint(&bytes));
        entries.push(ManifestEntry {
            id,
            len: len as u32,
            crc: crc32(&bytes),
            kind,
        });
        chunks.push(Chunk { id, bytes });
    };

    push(&mut pos, head_encoded_len(pkg), ChunkKind::Head);
    let mut rank: Vec<(u64, FuncId, u32)> = Vec::with_capacity(funcs.len());
    for (f, p) in funcs {
        let heat: u64 = p.block_counts.iter().sum();
        let mut callees: Vec<FuncId> = p
            .call_targets
            .values()
            .flat_map(|targets| targets.keys().copied())
            .collect();
        callees.sort_unstable();
        callees.dedup();
        // Entry index of this function chunk: head + funcs pushed so far.
        rank.push((heat, *f, (1 + rank.len()) as u32));
        push(
            &mut pos,
            package::func_record_len(p, &refs),
            ChunkKind::Func {
                func: *f,
                heat,
                callees,
            },
        );
    }
    push(&mut pos, package::tail_encoded_len(pkg), ChunkKind::Tail);
    debug_assert_eq!(
        pos,
        HEADER_LEN + payload_len,
        "chunk boundaries must tile the payload exactly"
    );

    // Hottest first, FuncId tie-break — identical to heat_ranked().
    rank.sort_by_key(|&(heat, f, _)| (std::cmp::Reverse(heat), f));
    let hot_rank = rank.into_iter().map(|(_, _, i)| i).collect();

    ChunkedPackage {
        manifest: Manifest {
            region: pkg.meta.region,
            bucket: pkg.meta.bucket,
            seeder_id: pkg.meta.seeder_id,
            created_ms: pkg.meta.created_ms,
            repo_funcs: repo_funcs as u32,
            payload_len: payload_len as u32,
            payload_crc,
            entries,
            hot_rank,
        },
        chunks,
        sealed,
    }
}

/// A content-addressed pool of chunks, keyed by chunk id. The values are
/// shared [`Bytes`] views, so a pool holding every chunk of ten pushes
/// that share 90% of their records costs ~one package of backing memory.
#[derive(Clone, Debug, Default)]
pub struct ChunkPool {
    map: HashMap<ChunkId, Bytes>,
}

impl ChunkPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a chunk; returns `false` when the id was already present
    /// (the bytes are deduplicated — first insert wins).
    pub fn insert(&mut self, chunk: &Chunk) -> bool {
        match self.map.entry(chunk.id) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(chunk.bytes.clone());
                true
            }
        }
    }

    /// The chunk bytes for `id`, if pooled.
    pub fn get(&self, id: ChunkId) -> Option<&Bytes> {
        self.map.get(&id)
    }

    /// Whether `id` is pooled.
    pub fn contains(&self, id: ChunkId) -> bool {
        self.map.contains_key(&id)
    }

    /// Number of distinct chunks pooled.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total distinct bytes pooled.
    pub fn total_bytes(&self) -> u64 {
        self.map.values().map(|b| b.len() as u64).sum()
    }

    /// The pooled chunk ids.
    pub fn ids(&self) -> impl Iterator<Item = ChunkId> + '_ {
        self.map.keys().copied()
    }
}

/// Looks up, verifies and returns one chunk from a pool.
fn fetch_verified<'p>(pool: &'p ChunkPool, e: &ManifestEntry) -> Result<&'p Bytes, WireError> {
    let bytes = pool
        .get(e.id)
        .ok_or_else(|| WireError::Corrupt(format!("dangling chunk {}", e.id)))?;
    if bytes.len() != e.len as usize {
        return Err(WireError::Corrupt(format!(
            "chunk {} is {} bytes, manifest says {}",
            e.id,
            bytes.len(),
            e.len
        )));
    }
    let crc = crc32(bytes);
    if crc != e.crc {
        return Err(WireError::BadChecksum {
            expected: e.crc,
            found: crc,
        });
    }
    Ok(bytes)
}

/// Reassembles the monolithic sealed package from pooled chunks.
///
/// The output is byte-identical to the [`ProfilePackage::serialize`]
/// encoding the chunks were sliced from: every chunk is CRC-verified,
/// and the concatenated payload must match the manifest's whole-payload
/// CRC.
///
/// # Errors
///
/// Returns a [`WireError`] when a chunk is missing from the pool
/// (dangling id), a chunk's bytes disagree with the manifest, or the
/// reassembled payload fails the package checksum.
pub fn reassemble(man: &Manifest, pool: &ChunkPool) -> Result<Bytes, WireError> {
    let payload_len = man.payload_len as usize;
    let mut w = Writer::with_capacity(payload_len + ENVELOPE_LEN);
    begin_sealed(&mut w, payload_len);
    for e in &man.entries {
        w.raw(fetch_verified(pool, e)?);
    }
    let crc = crc32(&w.as_slice()[HEADER_LEN..]);
    if crc != man.payload_crc {
        return Err(WireError::BadChecksum {
            expected: man.payload_crc,
            found: crc,
        });
    }
    Ok(finish_sealed(w))
}

/// What a delta push against a receiver's chunk cache would send.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Chunks in the package.
    pub chunks_total: usize,
    /// Chunks the receiver lacked (shipped).
    pub chunks_sent: usize,
    /// Chunks served from the receiver's cache.
    pub chunks_reused: usize,
    /// Total payload bytes across all chunks.
    pub bytes_total: u64,
    /// Bytes shipped (the missing chunks).
    pub bytes_sent: u64,
    /// Bytes served from cache.
    pub bytes_reused: u64,
    /// Encoded manifest size — always shipped.
    pub manifest_bytes: u64,
}

impl DeltaReport {
    /// Bytes on the wire: manifest plus missing chunks.
    pub fn wire_bytes(&self) -> u64 {
        self.manifest_bytes + self.bytes_sent
    }

    /// Bytes the full (non-chunked) push would send: the monolithic
    /// sealed package.
    pub fn full_bytes(&self) -> u64 {
        self.bytes_total + ENVELOPE_LEN as u64
    }

    /// Wire bytes as a fraction of the full push (< 1.0 is a win).
    pub fn wire_ratio(&self) -> f64 {
        if self.full_bytes() == 0 {
            return 1.0;
        }
        self.wire_bytes() as f64 / self.full_bytes() as f64
    }
}

/// Computes the delta a push of `man` would ship to a receiver that
/// already holds `have` (e.g. the previous release's chunks).
pub fn delta_against(man: &Manifest, have: &ChunkPool) -> DeltaReport {
    let mut d = DeltaReport {
        chunks_total: man.entries.len(),
        manifest_bytes: man.wire_len() as u64,
        ..Default::default()
    };
    for e in &man.entries {
        d.bytes_total += e.len as u64;
        if have.contains(e.id) {
            d.chunks_reused += 1;
            d.bytes_reused += e.len as u64;
        } else {
            d.chunks_sent += 1;
            d.bytes_sent += e.len as u64;
        }
    }
    d
}

/// Chunk-granular lazy decoder: decodes head, tail and any subset of
/// function chunks into a [`TierProfile`], touching only those chunks'
/// bytes. The consumer's early-serve boot decodes the hot closure before
/// serve-start and leaves the rest to the background stage.
pub struct LazyLoader<'a> {
    man: &'a Manifest,
    pool: &'a ChunkPool,
    /// Function → entry index, for closure walks.
    by_func: HashMap<FuncId, usize>,
    /// The head's function-identity directory, decoded on first use —
    /// function records are id-free (v6), so decoding any of them needs
    /// the directory for callee-hash resolution.
    dir: std::cell::OnceCell<package::FuncDirectory>,
}

impl<'a> LazyLoader<'a> {
    /// Creates a loader over a manifest and a pool holding its chunks.
    pub fn new(man: &'a Manifest, pool: &'a ChunkPool) -> Self {
        let by_func = man.func_entries().map(|(i, f, _)| (f, i)).collect();
        Self {
            man,
            pool,
            by_func,
            dir: std::cell::OnceCell::new(),
        }
    }

    /// The head directory, decoding the head chunk on first use.
    fn directory(&self) -> Result<&package::FuncDirectory, WireError> {
        if let Some(d) = self.dir.get() {
            return Ok(d);
        }
        let bytes = fetch_verified(self.pool, &self.man.entries[0])?;
        let mut r = Reader::new(bytes);
        let (_, _, dir) = read_head(&mut r)?;
        Ok(self.dir.get_or_init(|| dir))
    }

    /// The manifest this loader decodes.
    pub fn manifest(&self) -> &Manifest {
        self.man
    }

    /// Entry index of `func`'s chunk, if the package profiles it.
    pub fn entry_of(&self, func: FuncId) -> Option<usize> {
        self.by_func.get(&func).copied()
    }

    /// Decodes the head chunk: meta, preload lists, function count.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the chunk is missing, corrupt, or
    /// disagrees with the manifest (function count mismatch).
    pub fn decode_head(&self) -> Result<(PackageMeta, PreloadLists), WireError> {
        let bytes = fetch_verified(self.pool, &self.man.entries[0])?;
        let mut r = Reader::new(bytes);
        let (meta, preload, dir) = read_head(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Corrupt("trailing bytes in head chunk".into()));
        }
        if dir.len() != self.man.func_count() {
            return Err(WireError::Corrupt(format!(
                "head says {} function records, manifest has {}",
                dir.len(),
                self.man.func_count()
            )));
        }
        let _ = self.dir.set(dir);
        Ok((meta, preload))
    }

    /// Decodes the tail chunk into `tier` (property counters) and
    /// returns the ctx profile and order lists.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the chunk is missing or corrupt.
    pub fn decode_tail(&self, tier: &mut TierProfile) -> Result<package::TailParts, WireError> {
        let e = self.man.entries.last().expect("manifest has a tail entry");
        let bytes = fetch_verified(self.pool, e)?;
        let mut r = Reader::new(bytes);
        let parts = read_tail(&mut r, tier)?;
        if r.remaining() != 0 {
            return Err(WireError::Corrupt("trailing bytes in tail chunk".into()));
        }
        tier.mark_counters_dirty();
        Ok(parts)
    }

    /// Decodes the function chunks at `entry_idxs` into `tier`,
    /// returning the chunk bytes touched. Chunks already decoded into
    /// `tier` are skipped.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when a chunk is missing, corrupt, or its
    /// record's function id disagrees with the manifest.
    pub fn decode_funcs(
        &self,
        entry_idxs: &[usize],
        tier: &mut TierProfile,
    ) -> Result<u64, WireError> {
        let mut touched = 0u64;
        for &i in entry_idxs {
            let e = &self.man.entries[i];
            let ChunkKind::Func { func, .. } = e.kind else {
                return Err(WireError::Corrupt(format!("entry {i} is not a function")));
            };
            if tier.funcs.contains_key(&func) {
                continue;
            }
            let dir = self.directory()?;
            let bytes = fetch_verified(self.pool, e)?;
            let mut r = Reader::new(bytes);
            let p = read_func_record(&mut r, dir)?;
            // Records are id-free: the chunk's identity is cross-checked
            // against the head directory at its record position (entry 0
            // is the head, so record index = entry index - 1).
            let ri = i - 1;
            if r.remaining() != 0
                || dir.ids.get(ri) != Some(&func)
                || dir.hashes.get(ri) != Some(&p.name_hash)
            {
                return Err(WireError::Corrupt(format!(
                    "function chunk {} does not hold {func:?}",
                    e.id
                )));
            }
            touched += bytes.len() as u64;
            tier.funcs.insert(func, p);
        }
        tier.mark_counters_dirty();
        Ok(touched)
    }

    /// The hot decode set: entry indices of `hot` plus every function
    /// transitively reachable through the manifest's callee lists.
    /// Inline templates read callee profiles out of the tier during
    /// translation, so compiling the hot set against a partial tier is
    /// only sound once this closure is decoded.
    pub fn hot_closure(&self, hot: impl IntoIterator<Item = FuncId>) -> Vec<usize> {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = hot.into_iter().filter_map(|f| self.entry_of(f)).collect();
        for &i in &stack {
            seen.insert(i);
        }
        while let Some(i) = stack.pop() {
            if let ChunkKind::Func { callees, .. } = &self.man.entries[i].kind {
                for c in callees {
                    if let Some(j) = self.entry_of(*c) {
                        if seen.insert(j) {
                            stack.push(j);
                        }
                    }
                }
            }
        }
        let mut out: Vec<usize> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Every function-chunk entry index, in payload order.
    pub fn all_func_entries(&self) -> Vec<usize> {
        self.man.func_entries().map(|(i, _, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::Poison;

    fn sample() -> ProfilePackage {
        let src = r#"
            class C { public $a = 1; public $b = 2; }
            function leaf($x) { return $x + 1; }
            function mid($x) { return leaf($x) * 2; }
            function main($n) {
                $o = new C();
                $s = $o->a;
                for ($i = 0; $i < $n; $i++) { $s += mid($i) + $o->b; }
                return $s;
            }
        "#;
        let repo = hackc::compile_unit("chunk.hl", src).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = vm::Vm::new(&repo);
        let mut col = jit::ProfileCollector::new(&repo);
        for _ in 0..3 {
            vm.call_observed(f, &[vm::Value::Int(12)], &mut col)
                .unwrap();
            col.end_request();
        }
        ProfilePackage {
            meta: crate::package::PackageMeta {
                region: 1,
                bucket: 2,
                seeder_id: 7,
                created_ms: 99,
                ..Default::default()
            },
            preload: PreloadLists {
                unit_order: vm.loader().load_order(),
            },
            tier: col.tier,
            ctx: col.ctx,
            prop_orders: vec![],
            func_order: vec![f],
        }
    }

    #[test]
    fn chunks_tile_the_payload_and_reassemble_byte_identically() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        assert_eq!(cp.chunks.len(), cp.manifest.entries.len());
        assert!(cp.manifest.func_count() >= 3);
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        let sealed = reassemble(&cp.manifest, &pool).unwrap();
        assert_eq!(sealed, cp.sealed);
        assert_eq!(sealed, pkg.serialize());
        // The reassembled bytes decode to the original package.
        assert_eq!(ProfilePackage::deserialize(&sealed).unwrap(), pkg);
    }

    #[test]
    fn chunk_ids_are_content_addressed() {
        let pkg = sample();
        let a = chunk_package(&pkg, 64);
        let b = chunk_package(&pkg, 64);
        // Same content, same ids.
        for (x, y) in a.chunks.iter().zip(&b.chunks) {
            assert_eq!(x.id, y.id);
        }
        // A changed function changes exactly the chunks that cover it
        // (and the head stays shared).
        let mut pkg2 = pkg.clone();
        let hot = *pkg2.tier.funcs.keys().next().unwrap();
        pkg2.tier.funcs.get_mut(&hot).unwrap().enter_count += 1;
        let c = chunk_package(&pkg2, 64);
        let ids_a: HashSet<ChunkId> = a.chunks.iter().map(|c| c.id).collect();
        let changed: usize = c.chunks.iter().filter(|ch| !ids_a.contains(&ch.id)).count();
        assert_eq!(changed, 1, "one mutated record, one new chunk");
    }

    #[test]
    fn manifest_round_trips() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        let enc = cp.manifest.encode();
        assert_eq!(enc.len(), cp.manifest.wire_len());
        let back = Manifest::decode(&enc).unwrap();
        assert_eq!(back, cp.manifest);
    }

    #[test]
    fn manifest_hot_rank_matches_heat_ranked() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        assert_eq!(cp.manifest.funcs_by_heat(), pkg.tier.functions_by_heat());
    }

    #[test]
    fn delta_between_identical_packages_ships_manifest_only() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        let d = delta_against(&cp.manifest, &pool);
        assert_eq!(d.chunks_sent, 0);
        assert_eq!(d.bytes_sent, 0);
        assert_eq!(d.wire_bytes(), cp.manifest.wire_len() as u64);
        assert!(d.wire_ratio() < 0.5);

        // Against an empty cache, everything ships.
        let d0 = delta_against(&cp.manifest, &ChunkPool::new());
        assert_eq!(d0.chunks_sent, cp.chunks.len());
        assert_eq!(d0.bytes_sent + ENVELOPE_LEN as u64, d0.full_bytes());
    }

    #[test]
    fn pool_deduplicates_identical_chunks() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        let mut pool = ChunkPool::new();
        let first: usize = cp.chunks.iter().map(|c| pool.insert(c) as usize).sum();
        assert_eq!(first, cp.chunks.len());
        let second: usize = cp.chunks.iter().map(|c| pool.insert(c) as usize).sum();
        assert_eq!(second, 0, "re-publish inserts nothing");
        assert_eq!(pool.total_bytes(), cp.manifest.payload_len as u64);
    }

    #[test]
    fn lazy_loader_decodes_subsets_that_agree_with_full_decode() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        let loader = LazyLoader::new(&cp.manifest, &pool);
        let (meta, preload) = loader.decode_head().unwrap();
        assert_eq!(meta, pkg.meta);
        assert_eq!(preload, pkg.preload);

        let mut tier = TierProfile::default();
        let (ctx, prop_orders, func_order) = loader.decode_tail(&mut tier).unwrap();
        assert_eq!(ctx, pkg.ctx);
        assert_eq!(prop_orders, pkg.prop_orders);
        assert_eq!(func_order, pkg.func_order);

        // Decode one hot function + its closure, then the rest; the
        // final tier must equal the monolithic decode.
        let hottest = cp.manifest.funcs_by_heat()[0];
        let hot = loader.hot_closure([hottest]);
        assert!(!hot.is_empty());
        let hot_bytes = loader.decode_funcs(&hot, &mut tier).unwrap();
        assert!(hot_bytes > 0);
        assert_eq!(
            tier.funcs.len(),
            hot.len(),
            "only the closure is decoded before serve"
        );
        let all = loader.all_func_entries();
        loader.decode_funcs(&all, &mut tier).unwrap();
        assert_eq!(tier, pkg.tier);
    }

    #[test]
    fn hot_closure_includes_transitive_callees() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        let loader = LazyLoader::new(&cp.manifest, &pool);
        // main → mid → leaf: seeding with just main must close over both.
        let main = pkg.func_order[0];
        let closure = loader.hot_closure([main]);
        assert!(
            closure.len() >= 3,
            "closure {closure:?} must reach mid and leaf"
        );
    }

    #[test]
    fn reassembly_rejects_dangling_and_corrupt_chunks() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        // Dangling: drop one chunk.
        let victim = cp.chunks[1].id;
        let mut partial = ChunkPool::new();
        for c in cp.chunks.iter().filter(|c| c.id != victim) {
            partial.insert(c);
        }
        assert!(matches!(
            reassemble(&cp.manifest, &partial),
            Err(WireError::Corrupt(_))
        ));
        // Corrupt: replace a chunk's bytes under its id.
        let mut bad = pool.clone();
        let mut v = cp.chunks[1].bytes.to_vec();
        v[0] ^= 0x5a;
        bad.map.insert(victim, Bytes::from(v));
        assert!(matches!(
            reassemble(&cp.manifest, &bad),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn func_chunks_survive_funcid_renumbering() {
        // A new release renumbers FuncIds wholesale (inserted/reordered
        // units). Records are id-free, so every unchanged function's
        // chunk id must survive the renumbering — this is what makes a
        // churned consecutive push a small delta instead of a full ship.
        let pkg = sample();
        let shift = |f: FuncId| FuncId(f.0 + 500);
        let mut pkg2 = pkg.clone();
        pkg2.tier.funcs = pkg
            .tier
            .funcs
            .iter()
            .map(|(f, p)| {
                let mut p = p.clone();
                for targets in p.call_targets.values_mut() {
                    *targets = targets.iter().map(|(f2, c)| (shift(*f2), *c)).collect();
                }
                (shift(*f), p)
            })
            .collect();
        pkg2.func_order = pkg.func_order.iter().map(|f| shift(*f)).collect();

        let a = chunk_package(&pkg, 64);
        let b = chunk_package(&pkg2, 64);
        let func_ids = |cp: &ChunkedPackage| -> HashSet<ChunkId> {
            cp.chunks
                .iter()
                .zip(&cp.manifest.entries)
                .filter(|(_, e)| matches!(e.kind, ChunkKind::Func { .. }))
                .map(|(c, _)| c.id)
                .collect()
        };
        assert_eq!(
            func_ids(&a),
            func_ids(&b),
            "renumbering FuncIds must not change one function chunk"
        );
        // The renumbered package still reassembles and decodes exactly.
        let mut pool = ChunkPool::new();
        for c in &b.chunks {
            pool.insert(c);
        }
        let sealed = reassemble(&b.manifest, &pool).unwrap();
        assert_eq!(ProfilePackage::deserialize(&sealed).unwrap(), pkg2);
    }

    #[test]
    fn manifest_rejects_truncation_at_every_length() {
        let pkg = sample();
        let enc = chunk_package(&pkg, 64).manifest.encode();
        for len in 0..enc.len() {
            assert!(
                Manifest::decode(&enc[..len]).is_err(),
                "truncated manifest at {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn manifest_rejects_version_skew() {
        let pkg = sample();
        let enc = chunk_package(&pkg, 64).manifest.encode();

        // Envelope version below the floor: rejected at unseal.
        let mut old = enc.to_vec();
        old[8..12].copy_from_slice(&(crate::wire::MIN_VERSION - 1).to_le_bytes());
        assert!(matches!(
            Manifest::decode(&old),
            Err(WireError::BadVersion { .. })
        ));

        // A future manifest payload version: structurally rejected (the
        // payload crc must be rewritten so the skew survives the envelope).
        let mut skew = enc.to_vec();
        let ver_at = HEADER_LEN + 4; // after the manifest tag
        skew[ver_at..ver_at + 4].copy_from_slice(&(MANIFEST_VERSION + 1).to_le_bytes());
        let crc = crc32(&skew[HEADER_LEN..skew.len() - 4]);
        let n = skew.len();
        skew[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match Manifest::decode(&skew) {
            Err(WireError::Corrupt(msg)) => {
                assert!(msg.contains("version"), "unexpected error: {msg}")
            }
            other => panic!("future manifest version accepted: {other:?}"),
        }

        // A package payload is not a manifest (wrong leading tag).
        assert!(matches!(
            Manifest::decode(&pkg.serialize()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_rejects_duplicate_and_reordered_chunks() {
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);

        // Duplicate chunk id: copy a function entry over its neighbor.
        let mut dup = cp.manifest.clone();
        dup.entries[2] = dup.entries[1].clone();
        if let ChunkKind::Func { func, .. } = &mut dup.entries[2].kind {
            // Keep ids strictly ascending so the duplicate-id check (not
            // the order check) is what must fire.
            *func = FuncId(func.0 + 1);
        }
        dup.payload_len = dup.entries.iter().map(|e| e.len).sum();
        match Manifest::decode(&dup.encode()) {
            Err(WireError::Corrupt(msg)) => {
                assert!(msg.contains("duplicate"), "unexpected error: {msg}")
            }
            other => panic!("duplicate chunk id accepted: {other:?}"),
        }

        // Function chunks out of FuncId order.
        let mut swapped = cp.manifest.clone();
        swapped.entries.swap(1, 2);
        assert!(matches!(
            Manifest::decode(&swapped.encode()),
            Err(WireError::Corrupt(_))
        ));

        // Chunk lengths that disagree with the payload length.
        let mut short = cp.manifest.clone();
        short.entries[1].len -= 1;
        assert!(matches!(
            Manifest::decode(&short.encode()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn lazy_decode_rejects_head_record_mismatch() {
        // A chunk that CRC-verifies but sits at the wrong record position
        // is caught by the head-directory cross-check.
        let pkg = sample();
        let cp = chunk_package(&pkg, 64);
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        // Swap two function entries' ids in a doctored manifest so entry
        // 1 points at entry 2's (valid, CRC-clean) chunk.
        let mut man = cp.manifest.clone();
        let (id1, id2) = (man.entries[1].id, man.entries[2].id);
        let (len1, len2) = (man.entries[1].len, man.entries[2].len);
        let (crc1, crc2) = (man.entries[1].crc, man.entries[2].crc);
        man.entries[1].id = id2;
        man.entries[1].len = len2;
        man.entries[1].crc = crc2;
        man.entries[2].id = id1;
        man.entries[2].len = len1;
        man.entries[2].crc = crc1;
        let loader = LazyLoader::new(&man, &pool);
        let mut tier = TierProfile::default();
        assert!(
            loader.decode_funcs(&[1], &mut tier).is_err(),
            "record/manifest mismatch must be rejected"
        );
    }

    #[test]
    fn empty_package_chunks_to_head_and_tail_only() {
        let pkg = ProfilePackage {
            meta: crate::package::PackageMeta {
                poison: Poison::RuntimeCrash { per_mille: 3 },
                ..Default::default()
            },
            ..Default::default()
        };
        let cp = chunk_package(&pkg, 0);
        assert_eq!(cp.chunks.len(), 2);
        assert!(cp.manifest.hot_rank.is_empty());
        let mut pool = ChunkPool::new();
        for c in &cp.chunks {
            pool.insert(c);
        }
        assert_eq!(reassemble(&cp.manifest, &pool).unwrap(), pkg.serialize());
        let man = Manifest::decode(&cp.manifest.encode()).unwrap();
        assert_eq!(man, cp.manifest);
    }
}
