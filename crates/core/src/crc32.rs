//! CRC-32 (IEEE 802.3), used to detect package corruption in transit.

/// Computes the CRC-32 of `data` (IEEE polynomial, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"jump-start profile package".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
