//! Seeder-side package validation (§VI-A.1, §VI-B).
//!
//! Before publishing, a seeder restarts in consumer mode with the package
//! it just collected and "only publishes the data if it remains healthy
//! for a few minutes". We reproduce that as: decode, coverage thresholds,
//! a static lint of the profile against the repo (cheap, catches
//! structural corruption before anything is compiled), a full consumer
//! compile (catches compile-time JIT crashes), and a number of simulated
//! healthy-boot trials (catches *most* latent runtime bugs — a
//! `RuntimeCrash` poison with low probability can slip through, which is
//! precisely why §VI-A.2's randomized selection exists).

use analysis::{lint_profile, ProfileView};
use bytecode::Repo;
use jit::JitOptions;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::JumpStartOptions;
use crate::consumer::{consume, ConsumerError};
use crate::package::{Poison, ProfilePackage};
use crate::wire::WireError;

/// Why validation rejected a package.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Decode failure (corruption).
    Wire(WireError),
    /// Coverage below thresholds (§VI-B), e.g. a drained data center.
    Coverage {
        /// Which threshold failed.
        what: &'static str,
        /// Observed value.
        got: u64,
        /// Required minimum.
        needed: u64,
    },
    /// The static linter proved the profile can't describe this repo
    /// (dangling ids, stale counters, impossible arcs...). Caught before
    /// any compile or boot is attempted.
    Static {
        /// Number of error-severity diagnostics.
        errors: usize,
        /// The first diagnostic, rendered.
        first: String,
    },
    /// The JIT crashed compiling the profile data.
    CompileCrash,
    /// A smoke boot crashed or raised errors.
    Unhealthy {
        /// Which trial failed.
        trial: u32,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Wire(e) => write!(f, "decode: {e}"),
            ValidationError::Coverage { what, got, needed } => {
                write!(f, "coverage: {what} = {got} below threshold {needed}")
            }
            ValidationError::Static { errors, first } => {
                write!(f, "static lint: {errors} errors, first: {first}")
            }
            ValidationError::CompileCrash => write!(f, "JIT crash during validation compile"),
            ValidationError::Unhealthy { trial } => {
                write!(f, "smoke boot {trial} was unhealthy")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// What a successful validation measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidationReport {
    /// Functions the validation compile optimized.
    pub compiled_funcs: usize,
    /// Optimized bytes emitted.
    pub compile_bytes: u64,
    /// Healthy-boot trials performed.
    pub trials: u32,
    /// Serialized package size.
    pub package_bytes: usize,
}

/// The validation harness.
#[derive(Clone, Copy, Debug)]
pub struct Validator {
    /// Jump-Start options (thresholds, trials).
    pub opts: JumpStartOptions,
    /// JIT options used for the validation compile.
    pub jit_opts: JitOptions,
}

impl Validator {
    /// Creates a validator.
    pub fn new(opts: JumpStartOptions, jit_opts: JitOptions) -> Self {
        Self { opts, jit_opts }
    }

    /// Validates serialized package bytes against `repo`.
    ///
    /// # Errors
    ///
    /// Returns the first failed check.
    pub fn validate(&self, repo: &Repo, bytes: &[u8]) -> Result<ValidationReport, ValidationError> {
        let decode_span = telemetry::span!("validate-decode", "bytes" => bytes.len());
        let pkg = ProfilePackage::deserialize(bytes).map_err(ValidationError::Wire)?;
        drop(decode_span);
        self.validate_package(repo, &pkg, bytes.len())
    }

    /// Validates an already-decoded package.
    ///
    /// # Errors
    ///
    /// Returns the first failed check.
    pub fn validate_package(
        &self,
        repo: &Repo,
        pkg: &ProfilePackage,
        package_bytes: usize,
    ) -> Result<ValidationReport, ValidationError> {
        let _validate_span = telemetry::span!("validate", "seeder" => pkg.meta.seeder_id);
        // Coverage thresholds (§VI-B).
        let coverage_span = telemetry::span!("coverage-check");
        let c = pkg.meta.coverage;
        let checks = [
            (
                "funcs_profiled",
                c.funcs_profiled,
                self.opts.min_funcs_profiled,
            ),
            ("counter_mass", c.counter_mass, self.opts.min_counter_mass),
            ("requests", c.requests, self.opts.min_requests),
        ];
        for (what, got, needed) in checks {
            if got < needed {
                return Err(ValidationError::Coverage { what, got, needed });
            }
        }
        drop(coverage_span);
        // Static lint — strict on the seeder: a seeder collects against
        // the exact repo it validates with, so *any* structural error
        // means corruption, and rejecting here costs no compile or boot.
        if self.opts.static_lint {
            let _lint_span = telemetry::span!("static-lint");
            let report = lint_profile(
                repo,
                &ProfileView {
                    tier: &pkg.tier,
                    ctx: &pkg.ctx,
                    unit_order: &pkg.preload.unit_order,
                    prop_orders: &pkg.prop_orders,
                    func_order: &pkg.func_order,
                },
            );
            if report.error_count() > 0 {
                return Err(ValidationError::Static {
                    errors: report.error_count(),
                    first: report
                        .errors()
                        .next()
                        .map(ToString::to_string)
                        .unwrap_or_default(),
                });
            }
        }
        // Full consumer compile — catches deterministic JIT crashes.
        let compile_span = telemetry::span!("validation-compile");
        let outcome = consume(repo, pkg, self.jit_opts, &self.opts, 1).map_err(|e| match e {
            ConsumerError::JitCrash => ValidationError::CompileCrash,
            ConsumerError::Wire(w) => ValidationError::Wire(w),
            ConsumerError::InvalidProfile { errors, first } => {
                ValidationError::Static { errors, first }
            }
        })?;
        drop(compile_span);
        // Healthy-boot trials — each trial is one simulated consumer boot.
        // Seeded by package identity so validation is reproducible.
        let _trials_span =
            telemetry::span!("smoke-trials", "trials" => self.opts.validation_trials);
        let mut rng =
            SmallRng::seed_from_u64(pkg.meta.seeder_id ^ pkg.meta.created_ms.rotate_left(17));
        for trial in 0..self.opts.validation_trials {
            if boot_crashes(pkg, &mut rng) {
                return Err(ValidationError::Unhealthy { trial });
            }
        }
        Ok(ValidationReport {
            compiled_funcs: outcome.compiled_funcs,
            compile_bytes: outcome.compile_bytes,
            trials: self.opts.validation_trials,
            package_bytes,
        })
    }
}

/// Whether one simulated boot with this package crashes (latent-bug model).
pub(crate) fn boot_crashes(pkg: &ProfilePackage, rng: &mut SmallRng) -> bool {
    match pkg.meta.poison {
        Poison::None => false,
        Poison::CompileCrash => true,
        Poison::RuntimeCrash { per_mille } => rng.gen_range(0..1000) < per_mille as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{Coverage, PackageMeta};
    use crate::seeder::{build_package, SeederInputs};
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    fn healthy_package() -> (Repo, ProfilePackage) {
        let src = r#"
            function work($x) { return $x * 3 + 1; }
            function main($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s += work($i); }
                return $s;
            }
        "#;
        let repo = hackc::compile_unit("v.hl", src).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..30 {
            vm.call_observed(f, &[Value::Int(40)], &mut col).unwrap();
            col.end_request();
        }
        let order = vm.loader().load_order();
        let (tier, ctx) = (col.tier, col.ctx);
        let pkg = build_package(
            SeederInputs {
                repo: &repo,
                tier,
                ctx,
                unit_order: order,
                requests: 30,
                region: 0,
                bucket: 0,
                seeder_id: 5,
                now_ms: 100,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        (repo, pkg)
    }

    fn lax_opts() -> JumpStartOptions {
        JumpStartOptions {
            min_funcs_profiled: 1,
            min_counter_mass: 10,
            min_requests: 5,
            ..Default::default()
        }
    }

    #[test]
    fn healthy_package_validates() {
        let (repo, pkg) = healthy_package();
        let v = Validator::new(lax_opts(), JitOptions::default());
        let bytes = pkg.serialize();
        let report = v.validate(&repo, &bytes).unwrap();
        assert!(report.compiled_funcs >= 2);
        assert!(report.package_bytes > 100);
    }

    #[test]
    fn corruption_fails_validation() {
        let (repo, pkg) = healthy_package();
        let v = Validator::new(lax_opts(), JitOptions::default());
        let mut bytes = pkg.serialize().to_vec();
        bytes[30] ^= 0xff;
        assert!(matches!(
            v.validate(&repo, &bytes),
            Err(ValidationError::Wire(_))
        ));
    }

    #[test]
    fn low_coverage_fails_validation() {
        // A drained data center: barely any requests (§VI-B).
        let (repo, mut pkg) = healthy_package();
        pkg.meta.coverage = Coverage {
            funcs_profiled: 1,
            counter_mass: 5,
            requests: 1,
        };
        let v = Validator::new(lax_opts(), JitOptions::default());
        assert!(matches!(
            v.validate_package(&repo, &pkg, 0),
            Err(ValidationError::Coverage {
                what: "counter_mass",
                ..
            })
        ));
        let _ = PackageMeta::default();
    }

    #[test]
    fn compile_poison_is_always_caught() {
        let (repo, mut pkg) = healthy_package();
        pkg.meta.poison = Poison::CompileCrash;
        let v = Validator::new(lax_opts(), JitOptions::default());
        assert_eq!(
            v.validate_package(&repo, &pkg, 0),
            Err(ValidationError::CompileCrash)
        );
    }

    #[test]
    fn frequent_latent_bug_is_caught_rare_one_can_slip() {
        let (repo, pkg) = healthy_package();
        let v = Validator::new(lax_opts(), JitOptions::default());
        // 80% crash probability: 8 trials catch it with p ~ 1 - 0.2^8.
        let mut frequent = pkg.clone();
        frequent.meta.poison = Poison::RuntimeCrash { per_mille: 800 };
        assert!(matches!(
            v.validate_package(&repo, &frequent, 0),
            Err(ValidationError::Unhealthy { .. })
        ));
        // A 0.1% latent bug usually slips through validation — the reason
        // §VI-A.2 exists. Check that over many seeder identities, at least
        // one slips.
        let mut slipped = 0;
        for seeder in 0..20 {
            let mut rare = pkg.clone();
            rare.meta.poison = Poison::RuntimeCrash { per_mille: 1 };
            rare.meta.seeder_id = seeder;
            if v.validate_package(&repo, &rare, 0).is_ok() {
                slipped += 1;
            }
        }
        assert!(
            slipped > 15,
            "rare bugs should usually pass validation, got {slipped}/20"
        );
    }
}
