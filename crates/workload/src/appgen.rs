//! Application source generation.

use bytecode::{FuncId, Repo};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppParams {
    /// RNG seed; the same seed generates the same application.
    pub seed: u64,
    /// Number of endpoint (entry) functions.
    pub endpoints: usize,
    /// Helper functions per level (levels call downward only, bounding
    /// call depth).
    pub helpers_per_level: [usize; 3],
    /// Number of classes (every second class subclasses the previous one).
    pub classes: usize,
    /// Properties per class layer.
    pub props_per_class: usize,
    /// Semantic partitions (the paper's fleet uses 10).
    pub partitions: usize,
    /// Zipf skew of endpoint popularity (lower = flatter profile).
    pub zipf_s: f64,
}

impl AppParams {
    /// A small app for unit tests (compiles in milliseconds).
    pub fn tiny() -> Self {
        Self {
            seed: 7,
            endpoints: 12,
            helpers_per_level: [10, 10, 8],
            classes: 6,
            props_per_class: 8,
            partitions: 4,
            zipf_s: 0.8,
        }
    }

    /// The default benchmark-scale app (hundreds of functions).
    pub fn bench() -> Self {
        Self {
            seed: 42,
            endpoints: 120,
            helpers_per_level: [260, 340, 260],
            classes: 64,
            props_per_class: 12,
            partitions: 10,
            zipf_s: 0.8,
        }
    }

    /// Total function count (endpoints + helpers + methods).
    pub fn approx_funcs(&self) -> usize {
        self.endpoints + self.helpers_per_level.iter().sum::<usize>() + self.classes
    }
}

impl Default for AppParams {
    fn default() -> Self {
        Self::bench()
    }
}

/// One web endpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Endpoint {
    /// The entry function.
    pub func: FuncId,
    /// Semantic partition the endpoint belongs to.
    pub partition: usize,
    /// Relative popularity (Zipf mass, normalized later by the mix).
    pub popularity: f64,
}

/// A generated application.
#[derive(Debug)]
pub struct App {
    /// The compiled bytecode repo.
    pub repo: Repo,
    /// Endpoints, indexed by endpoint id.
    pub endpoints: Vec<Endpoint>,
    /// Number of semantic partitions.
    pub partitions: usize,
    /// Parameters used to generate the app.
    pub params: AppParams,
}

/// Number of small "mode helper" functions. They branch on their argument
/// and are called with *constant* arguments from many sites, so their
/// per-site behavior diverges sharply from their average — the divergence
/// that tier-1 profiles cannot see and §V-A's instrumented optimized code
/// recovers.
const MODE_HELPERS: usize = 16;

/// Generates and compiles an application.
///
/// # Panics
///
/// Panics if the generated source fails to compile — that would be a bug
/// in the generator, not user error.
pub fn generate(params: &AppParams) -> App {
    let files = build_sources(params);
    compile_sources(params, &files)
}

/// Generates the application's source files without compiling them.
/// Deterministic in `params.seed`. The churn model
/// ([`crate::churn`]) edits these sources to simulate a new release
/// before [`compile_sources`] turns them into a repo.
pub fn build_sources(params: &AppParams) -> Vec<(String, String)> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut files: Vec<(String, String)> = Vec::new();

    // ---- classes, one unit per handful --------------------------------
    let mut class_src = String::new();
    for k in 0..params.classes {
        let parent = if k % 2 == 1 { Some(k - 1) } else { None };
        let own_props = params.props_per_class;
        let mut s = match parent {
            Some(p) => format!("class C{k} extends C{p} {{\n"),
            None => format!("class C{k} {{\n"),
        };
        for j in 0..own_props {
            s.push_str(&format!("  public $p{k}_{j} = {};\n", j));
        }
        // For a third of the classes the hot properties were appended late
        // (pessimal declared order — the case §V-C's reordering fixes);
        // the rest already declare them first, like most hand-tuned code.
        let (hot, _) = hot_props_for(own_props, k);
        s.push_str(&format!(
            "  function m{k}($x) {{ return $x + $this->p{k}_{hot} * 2; }}\n"
        ));
        s.push_str("}\n");
        class_src.push_str(&s);
        if k % 8 == 7 || k + 1 == params.classes {
            files.push((
                format!("classes_{}.hl", files.len()),
                std::mem::take(&mut class_src),
            ));
        }
    }

    // ---- mode helpers ---------------------------------------------------
    {
        let mut src = String::new();
        for m in 0..MODE_HELPERS {
            src.push_str(&format!(
                r#"function mode_{m}($f) {{
  if ($f > 0) {{
    $t = $f * 3 + {m};
    $t = $t + $f % 7;
    $t = $t * 2 - {m};
    $t = $t + ($t & 1023);
    $t = $t - ($t >> 3);
    return $t + $f;
  }}
  $u = {m} - 1;
  $u = $u * 2 + 5;
  $u = $u + ($u % 11);
  $u = $u * 3 - 4;
  $u = $u + ($u >> 2);
  return $u - {m};
}}
"#
            ));
        }
        files.push(("modes.hl".to_string(), src));
    }

    // ---- leveled helpers ----------------------------------------------
    // Level L-1 are leaves; level l calls into level l+1.
    let levels = params.helpers_per_level.len();
    for l in (0..levels).rev() {
        let count = params.helpers_per_level[l];
        let mut unit_src = String::new();
        let mut emitted = 0usize;
        for i in 0..count {
            let body = if l + 1 == levels {
                gen_leaf(params, &mut rng, l, i)
            } else {
                gen_helper(params, &mut rng, l, i)
            };
            unit_src.push_str(&body);
            emitted += 1;
            // ~6 functions per unit: many small files, like a real code base.
            if emitted.is_multiple_of(6) || i + 1 == count {
                files.push((
                    format!("mod{l}_{}.hl", files.len()),
                    std::mem::take(&mut unit_src),
                ));
            }
        }
    }

    // ---- endpoints ------------------------------------------------------
    let mut unit_src = String::new();
    for e in 0..params.endpoints {
        let partition = e % params.partitions;
        unit_src.push_str(&gen_endpoint(params, &mut rng, e, partition));
        if e % 4 == 3 || e + 1 == params.endpoints {
            files.push((
                format!("ep_{}.hl", files.len()),
                std::mem::take(&mut unit_src),
            ));
        }
    }

    files
}

/// Compiles a source file set (possibly churned) into an [`App`].
/// Endpoint functions are located by name (`ep_{e}`) — the churn model
/// never renames or deletes them, so every release serves the same
/// endpoint set.
///
/// # Panics
///
/// Panics if the sources fail to compile or an endpoint is missing.
pub fn compile_sources(params: &AppParams, files: &[(String, String)]) -> App {
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let repo = hackc::compile_program(&refs).expect("generated app compiles");

    // Zipf popularity over endpoints; long tail (paper: flat profile).
    let endpoints = (0..params.endpoints)
        .map(|e| {
            let func = repo
                .func_by_name(&format!("ep_{e}"))
                .expect("endpoint exists")
                .id;
            let popularity = 1.0 / ((e + 1) as f64).powf(params.zipf_s);
            Endpoint {
                func,
                partition: e % params.partitions,
                popularity,
            }
        })
        .collect();

    App {
        repo,
        endpoints,
        partitions: params.partitions,
        params: *params,
    }
}

/// The (hot, warm) property indices of class `k`'s own layer.
fn hot_props_for(own_props: usize, k: usize) -> (usize, usize) {
    if k.is_multiple_of(3) {
        (own_props - 1, own_props - 2)
    } else {
        (0, 1)
    }
}

fn hot_props(params: &AppParams, k: usize) -> (usize, usize) {
    hot_props_for(params.props_per_class, k)
}

/// A mid-level helper: loops, an argument-dependent branch + call, a
/// constant-argument call (per-site divergence), object traffic, and a
/// cold error path.
fn gen_helper(params: &AppParams, rng: &mut SmallRng, level: usize, i: usize) -> String {
    let next_count = params.helpers_per_level[level + 1];
    let t1 = rng.gen_range(0..next_count);
    let t2 = rng.gen_range(0..next_count);
    let iters = rng.gen_range(3..9);
    let a = rng.gen_range(1..5);
    let m = rng.gen_range(2..5);
    let c = rng.gen_range(0..m);
    let konst = rng.gen_range(0..2) * 7; // 0 or 7: constant per call site
    let k = rng.gen_range(0..params.classes);
    let (hot_a, hot_b) = hot_props(params, k);
    let mode = rng.gen_range(0..MODE_HELPERS);
    let mode2 = rng.gen_range(0..MODE_HELPERS);
    // Per-site constants: each site *always* takes one arm of its mode
    // helpers, while other sites take the other.
    let mode_arg = if rng.gen_range(0..2) == 0 { 1 } else { 0 };
    let mode_arg2 = if rng.gen_range(0..2) == 0 { 1 } else { 0 };
    let nl = level + 1;
    format!(
        r#"function f{level}_{i}($x) {{
  $s = 0;
  for ($j = 0; $j < {iters}; $j++) {{ $s = $s + $j * {a} + $x; }}
  if ($x % {m} == {c}) {{ $s = $s + f{nl}_{t1}($x + 1); }} else {{ $s = $s - 1; }}
  $s = $s + f{nl}_{t2}({konst}) + mode_{mode}({mode_arg}) + mode_{mode2}({mode_arg2});
  if ($x % 6 == 0) {{
    $o = new C{k}();
    $o->p{k}_{hot_a} = $s;
    $s = $s + $o->p{k}_{hot_b} + $o->m{k}($x);
  }}
  if ($x > 990) {{ $s = $s + strlen("rare slow path for f{level}_{i}: " . $x); }}
  return $s;
}}
"#
    )
}

/// A leaf: pure computation with data-dependent branching, no calls.
fn gen_leaf(params: &AppParams, rng: &mut SmallRng, level: usize, i: usize) -> String {
    let iters = rng.gen_range(4..12);
    let m = rng.gen_range(2..6);
    let k = rng.gen_range(0..params.classes);
    let (hot, _) = hot_props(params, k);
    let mode = rng.gen_range(0..MODE_HELPERS);
    let mode_arg = if rng.gen_range(0..2) == 0 { 1 } else { 0 };
    format!(
        r#"function f{level}_{i}($x) {{
  $s = $x;
  for ($j = 0; $j < {iters}; $j++) {{
    if ($j % {m} == 0) {{ $s = $s + $j; }} else {{ $s = $s * 2 % 100003; }}
  }}
  $s = $s + mode_{mode}({mode_arg});
  if ($x % 6 == 1) {{
    $o = new C{k}();
    $s = $s + $o->p{k}_{hot};
  }}
  if ($x > 995) {{ $s = $s + strlen("leaf f{level}_{i} overflow " . $s); }}
  return $s;
}}
"#
    )
}

/// An endpoint: fans out into level-0 helpers, preferring its own
/// partition's module range (semantic locality, §II-C).
fn gen_endpoint(params: &AppParams, rng: &mut SmallRng, e: usize, partition: usize) -> String {
    let l0 = params.helpers_per_level[0];
    let per_part = (l0 / params.partitions).max(1);
    let base = (partition * per_part) % l0;
    let own = |rng: &mut SmallRng| base + rng.gen_range(0..per_part.min(l0 - base));
    let h1 = own(rng);
    let h2 = own(rng);
    // 1-in-5 calls escape the partition (overflow routing).
    let h3 = if rng.gen_range(0..5) == 0 {
        rng.gen_range(0..l0)
    } else {
        own(rng)
    };
    format!(
        r#"function ep_{e}($x) {{
  $s = f0_{h1}($x) + f0_{h2}($x + 2) + f0_{h3}(3);
  if ($s % 2 == 0) {{ $s = $s + 1; }}
  return $s;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Value, Vm};

    #[test]
    fn tiny_app_generates_and_verifies() {
        let app = generate(&AppParams::tiny());
        bytecode::verify_repo(&app.repo).expect("generated bytecode verifies");
        assert_eq!(app.endpoints.len(), 12);
        assert!(app.repo.funcs().len() > 30);
        assert!(app.repo.units().len() > 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&AppParams::tiny());
        let b = generate(&AppParams::tiny());
        assert_eq!(a.repo.funcs().len(), b.repo.funcs().len());
        assert_eq!(a.repo.total_bytecode_bytes(), b.repo.total_bytecode_bytes());
    }

    #[test]
    fn endpoints_execute_without_errors() {
        let app = generate(&AppParams::tiny());
        let mut vm = Vm::new(&app.repo);
        for ep in &app.endpoints {
            for arg in [0i64, 3, 500, 999] {
                vm.call(ep.func, &[Value::Int(arg)])
                    .unwrap_or_else(|e| panic!("ep {:?} arg {arg}: {e}", ep.func));
            }
        }
    }

    #[test]
    fn popularity_is_zipf_decreasing() {
        let app = generate(&AppParams::tiny());
        for w in app.endpoints.windows(2) {
            assert!(w[0].popularity >= w[1].popularity);
        }
    }

    #[test]
    fn partitions_cycle_over_endpoints() {
        let app = generate(&AppParams::tiny());
        assert_eq!(app.endpoints[0].partition, 0);
        assert_eq!(app.endpoints[1].partition, 1);
        assert_eq!(app.endpoints[4].partition, 0);
    }

    #[test]
    fn classes_have_inheritance() {
        let app = generate(&AppParams::tiny());
        let c1 = app.repo.class_by_name("C1").expect("C1 exists");
        assert!(
            c1.parent.is_some(),
            "odd classes subclass their predecessor"
        );
        let c0 = app.repo.class_by_name("C0").unwrap();
        assert!(c0.parent.is_none());
    }
}
