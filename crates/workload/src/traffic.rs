//! Traffic mixes, request sampling and the profiling driver.

use bytecode::{FuncId, UnitId};
use jit::{CtxProfile, ProfileCollector, TierProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vm::{Value, Vm};

use crate::appgen::App;

/// A probability distribution over endpoints for one (region, semantic
/// bucket) pair.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestMix {
    cumulative: Vec<f64>,
}

impl RequestMix {
    /// Builds the mix for `region`/`bucket`.
    ///
    /// Semantic routing sends ~90% of a bucket's traffic to endpoints of
    /// the matching partition; regions rotate endpoint popularity so that
    /// different regions have genuinely different hot sets (§II-C).
    pub fn new(app: &App, region: usize, bucket: usize) -> Self {
        let n = app.endpoints.len();
        let mut weights = vec![0f64; n];
        for (i, ep) in app.endpoints.iter().enumerate() {
            // Rotate popularity by region, staying within the partition's
            // residue class so every region still has hot endpoints in
            // every bucket.
            let rot = (i + region * app.partitions) % n;
            let pop = app.endpoints[rot].popularity;
            let affinity = if ep.partition == bucket % app.partitions {
                0.9
            } else {
                0.1
            };
            weights[i] = pop * affinity;
        }
        Self::from_weights(&weights)
    }

    /// Builds a mix from raw endpoint weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "mix needs at least one positive weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Samples an endpoint index.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let x: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Per-endpoint probabilities (sums to 1).
    pub fn probabilities(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cumulative
            .iter()
            .map(|&c| {
                let p = c - prev;
                prev = c;
                p
            })
            .collect()
    }

    /// Number of endpoints covered.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the mix is empty.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Samples complete requests (endpoint + argument).
#[derive(Debug)]
pub struct RequestSampler {
    rng: SmallRng,
}

impl RequestSampler {
    /// Creates a sampler with a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples one request: the endpoint function and its argument.
    pub fn request(&mut self, app: &App, mix: &RequestMix) -> (FuncId, Value) {
        let ep = mix.sample(&mut self.rng);
        let arg = self.rng.gen_range(0..1000i64);
        (app.endpoints[ep].func, Value::Int(arg))
    }
}

/// Everything a profiling phase produces: what a Jump-Start seeder ships.
#[derive(Debug)]
pub struct ProfileRun {
    /// Tier-1 profile (bytecode counters, targets, types, prop counts).
    pub tier: TierProfile,
    /// Context-sensitive counters (§V-A/§V-B instrumentation).
    pub ctx: CtxProfile,
    /// Units in first-load order (preload list, §IV-B category 1).
    pub unit_order: Vec<UnitId>,
    /// Requests executed.
    pub requests: u64,
}

/// Runs `requests` sampled requests through the interpreter with the
/// profile collector attached — the seeder's profiling phase (Fig. 3b).
pub fn profile_run(app: &App, mix: &RequestMix, requests: usize, seed: u64) -> ProfileRun {
    let mut vm = Vm::new(&app.repo);
    let mut collector = ProfileCollector::new(&app.repo);
    let mut sampler = RequestSampler::new(seed);
    for _ in 0..requests {
        let (func, arg) = sampler.request(app, mix);
        vm.call_observed(func, &[arg], &mut collector)
            .expect("generated requests execute");
        collector.end_request();
        vm.take_output();
    }
    ProfileRun {
        tier: collector.tier,
        ctx: collector.ctx,
        unit_order: vm.loader().load_order(),
        requests: requests as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appgen::{generate, AppParams};

    #[test]
    fn mix_prefers_its_bucket() {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut in_bucket = 0;
        let n = 2000;
        for _ in 0..n {
            let ep = mix.sample(&mut rng);
            if app.endpoints[ep].partition == 1 {
                in_bucket += 1;
            }
        }
        let share = in_bucket as f64 / n as f64;
        assert!(share > 0.6, "bucket share {share} should dominate");
    }

    #[test]
    fn regions_have_different_hot_endpoints() {
        let app = generate(&AppParams::tiny());
        let mut rng = SmallRng::seed_from_u64(2);
        let hottest = |region: usize, rng: &mut SmallRng| {
            let mix = RequestMix::new(&app, region, 0);
            let mut counts = vec![0u32; app.endpoints.len()];
            for _ in 0..3000 {
                counts[mix.sample(rng)] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
        };
        let a = hottest(0, &mut rng);
        let b = hottest(2, &mut rng);
        assert_ne!(a, b, "regions should disagree on the hottest endpoint");
    }

    #[test]
    fn profile_run_produces_coverage() {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let run = profile_run(&app, &mix, 100, 3);
        assert_eq!(run.requests, 100);
        assert!(
            run.tier.profiled_count() > 10,
            "flat profile touches many functions"
        );
        assert!(!run.unit_order.is_empty());
        assert!(run.tier.total_counter_mass() > 1000);
        assert!(!run.ctx.branches.is_empty());
        // Property counts exist (bodies touch object props).
        assert!(!run.tier.prop_counts.is_empty());
    }

    #[test]
    fn from_weights_rejects_all_zero() {
        let r = std::panic::catch_unwind(|| RequestMix::from_weights(&[0.0, 0.0]));
        assert!(r.is_err());
    }

    #[test]
    fn sampler_is_deterministic() {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 1, 1);
        let run = |seed| {
            let mut s = RequestSampler::new(seed);
            (0..10).map(|_| s.request(&app, &mix).0).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
