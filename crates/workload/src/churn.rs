//! Code-churn model: textual edits over generated application sources
//! that simulate a new release of the same app.
//!
//! The paper (§VII-C) keeps profiles across pushes precisely because most
//! of the code *didn't* change — Jump-Start's profile longevity depends on
//! recovering the unchanged majority. This module produces the "next
//! release" side of that experiment: starting from
//! [`appgen::build_sources`], it renames, deletes, inserts, reorders and
//! edits helper functions at a parameterized rate, then compiles the
//! result. A profile collected on the base release is then *stale*
//! against the churned repo in exactly the ways real pushes make profiles
//! stale: renumbered function ids, renamed functions with identical
//! bodies, inserted/removed blocks, and vanished callees.
//!
//! Invariants the model maintains:
//!
//! * `rate == 0.0` produces **byte-identical** sources (and therefore an
//!   identical repo): the no-churn release is the same release.
//! * Endpoints (`ep_{e}`) are never renamed or deleted — every release
//!   serves the same endpoint set, like a web app whose URLs are stable.
//! * Class units and mode helpers are untouched (layout churn is modeled
//!   elsewhere; this module models *code* churn).
//! * Deleted helpers redirect their call sites to a surviving same-level
//!   sibling, so the call depth contract (levels call downward) holds.
//! * The file set is fixed: files change content, never appear or vanish.

use crate::appgen::{self, App, AppParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Churn parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnParams {
    /// RNG seed; the same seed churns the same way.
    pub seed: u64,
    /// Churn rate in `[0, 1]`: the fraction-scale knob behind every edit
    /// probability. `0.0` is a no-op; `1.0` touches most helpers.
    pub rate: f64,
}

impl ChurnParams {
    /// A release with no code changes.
    pub fn none() -> Self {
        Self { seed: 0, rate: 0.0 }
    }
}

/// What the churn pass did to the sources.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Helper functions renamed (body identical, all call sites updated).
    pub funcs_renamed: usize,
    /// Helper functions deleted (call sites redirected to a sibling).
    pub funcs_deleted: usize,
    /// New, never-called helper functions inserted.
    pub funcs_inserted: usize,
    /// Files whose function order was shuffled (renumbers ids).
    pub files_reordered: usize,
    /// Rare branches inserted before a function's return (splits blocks).
    pub branches_inserted: usize,
    /// Cold error-path lines removed (merges blocks).
    pub cold_paths_removed: usize,
}

impl ChurnReport {
    /// Total function-level edits (the headline churn volume).
    pub fn total_edits(&self) -> usize {
        self.funcs_renamed
            + self.funcs_deleted
            + self.funcs_inserted
            + self.branches_inserted
            + self.cold_paths_removed
    }
}

/// What happens to one helper function.
#[derive(Clone, Copy, PartialEq)]
enum Fate {
    Keep,
    Rename,
    Delete,
}

/// One function's source text plus its parsed identity.
struct Chunk {
    name: String,
    text: String,
}

/// Generates the next release of the app: base sources, churned at
/// `churn.rate`, then compiled. `churn.rate == 0.0` reproduces the base
/// app exactly.
pub fn generate_release(params: &AppParams, churn: &ChurnParams) -> (App, ChurnReport) {
    let mut files = appgen::build_sources(params);
    let report = churn_sources(&mut files, churn);
    (appgen::compile_sources(params, &files), report)
}

/// Applies the churn model to a source file set in place. Deterministic
/// in `churn.seed`; a rate of `0.0` leaves every byte untouched.
pub fn churn_sources(files: &mut [(String, String)], churn: &ChurnParams) -> ChurnReport {
    let mut report = ChurnReport::default();
    if churn.rate <= 0.0 {
        return report;
    }
    let rate = churn.rate.min(1.0);
    let mut rng = SmallRng::seed_from_u64(churn.seed);

    // Split every churnable file (helpers + endpoints; classes and mode
    // helpers stay untouched) into per-function chunks.
    let churnable: Vec<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| is_helper_unit(name) || name.starts_with("ep_"))
        .map(|(i, _)| i)
        .collect();
    let mut chunks: Vec<Vec<Chunk>> = churnable
        .iter()
        .map(|&fi| split_funcs(&files[fi].1))
        .collect();

    // Pass 1: pick a fate for every *helper* function (endpoints always
    // keep). A helper is only deletable when its file keeps at least one
    // other function and its level keeps at least two siblings.
    let mut fates: Vec<Vec<Fate>> = Vec::with_capacity(chunks.len());
    for file in &chunks {
        let mut ff = Vec::with_capacity(file.len());
        for c in file {
            let fate = if helper_level(&c.name).is_none() {
                Fate::Keep
            } else {
                let r: f64 = rng.gen();
                if r < rate * 0.15 {
                    Fate::Delete
                } else if r < rate * 0.40 {
                    Fate::Rename
                } else {
                    Fate::Keep
                }
            };
            ff.push(fate);
        }
        fates.push(ff);
    }
    // Enforce the survivor guarantees: ≥2 keepers per level, ≥1 surviving
    // function per file.
    let mut keepers_per_level: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for (file, ff) in chunks.iter().zip(&fates) {
        for (c, &fate) in file.iter().zip(ff) {
            if let Some(l) = helper_level(&c.name) {
                if fate != Fate::Delete {
                    *keepers_per_level.entry(l).or_insert(0) += 1;
                }
            }
        }
    }
    for (file, ff) in chunks.iter().zip(fates.iter_mut()) {
        let mut surviving = file
            .iter()
            .zip(ff.iter())
            .filter(|(_, &f)| f != Fate::Delete)
            .count();
        for (c, fate) in file.iter().zip(ff.iter_mut()) {
            if *fate != Fate::Delete {
                continue;
            }
            let l = helper_level(&c.name).expect("only helpers are deletable");
            let level_ok = keepers_per_level.get(&l).copied().unwrap_or(0) >= 2;
            if !level_ok || surviving == 0 {
                *fate = Fate::Keep;
                *keepers_per_level.entry(l).or_insert(0) += 1;
                surviving += 1;
            }
        }
    }

    // Survivor lists per level (for delete redirection) — keepers only,
    // so redirected names are never themselves rewritten again.
    let mut level_keepers: std::collections::HashMap<usize, Vec<String>> =
        std::collections::HashMap::new();
    for (file, ff) in chunks.iter().zip(&fates) {
        for (c, &fate) in file.iter().zip(ff) {
            if let Some(l) = helper_level(&c.name) {
                if fate == Fate::Keep {
                    level_keepers.entry(l).or_default().push(c.name.clone());
                }
            }
        }
    }

    // Build the global call-site rewrite map.
    let mut rewrites: Vec<(String, String)> = Vec::new();
    let mut rename_counter = 0usize;
    for (file, ff) in chunks.iter().zip(&fates) {
        for (c, &fate) in file.iter().zip(ff) {
            match fate {
                Fate::Keep => {}
                Fate::Rename => {
                    // `h…x…` never collides with the `f{l}_{i}` or
                    // `ep_{e}` namespaces.
                    let new = format!("h{}x{rename_counter}", &c.name[1..]);
                    rename_counter += 1;
                    rewrites.push((c.name.clone(), new));
                    report.funcs_renamed += 1;
                }
                Fate::Delete => {
                    let l = helper_level(&c.name).unwrap();
                    let keepers = &level_keepers[&l];
                    let survivor = keepers[rng.gen_range(0..keepers.len())].clone();
                    rewrites.push((c.name.clone(), survivor));
                    report.funcs_deleted += 1;
                }
            }
        }
    }

    // Pass 2: body edits on surviving chunks, drop deleted ones, shuffle
    // and insert per file.
    let mut insert_counter = 0usize;
    for ((file, ff), &fi) in chunks.iter_mut().zip(&fates).zip(&churnable) {
        let mut kept: Vec<Chunk> = Vec::with_capacity(file.len());
        for (mut c, &fate) in file.drain(..).zip(ff) {
            if fate == Fate::Delete {
                continue;
            }
            // Insert a never-taken branch before the return: the return
            // block splits and a new cold block appears.
            if rng.gen::<f64>() < rate * 0.5 {
                let guarded = "  if ($x % 1000003 == 999999) { $s = $s - 1; }\n  return $s;\n";
                if let Some(at) = c.text.find("  return $s;\n") {
                    c.text
                        .replace_range(at..at + "  return $s;\n".len(), guarded);
                    report.branches_inserted += 1;
                }
            }
            // Remove the rare slow-path line: its block merges away.
            if rng.gen::<f64>() < rate * 0.3 {
                if let Some(at) = c.text.find("  if ($x > 99") {
                    let end = c.text[at..].find('\n').map(|e| at + e + 1).unwrap_or(at);
                    c.text.replace_range(at..end, "");
                    report.cold_paths_removed += 1;
                }
            }
            kept.push(c);
        }
        // Shuffle the declaration order (renumbers every id that follows).
        if kept.len() >= 2 && rng.gen::<f64>() < rate {
            for i in (1..kept.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                kept.swap(i, j);
            }
            report.files_reordered += 1;
        }
        // Append a brand-new, never-called helper (only to helper files:
        // endpoints fan out, they don't grow leaves).
        if is_helper_unit(&files[fi].0) && rng.gen::<f64>() < rate * 0.4 {
            let n = insert_counter;
            insert_counter += 1;
            kept.push(Chunk {
                name: format!("qnew_{n}"),
                text: format!(
                    "function qnew_{n}($x) {{\n  $s = $x * 3 + {n};\n  if ($x % 5 == 0) {{ $s = $s + 7; }}\n  return $s;\n}}\n"
                ),
            });
            report.funcs_inserted += 1;
        }
        files[fi].1 = kept.iter().map(|c| c.text.as_str()).collect();
    }

    // Pass 3: apply the rewrite map everywhere (definitions were either
    // removed or are renamed right here along with their call sites —
    // `name(` matches both `function name(` and every call).
    if !rewrites.is_empty() {
        for &fi in &churnable {
            let mut src = std::mem::take(&mut files[fi].1);
            for (old, new) in &rewrites {
                let pat = format!("{old}(");
                if src.contains(&pat) {
                    src = src.replace(&pat, &format!("{new}("));
                }
            }
            files[fi].1 = src;
        }
    }

    report
}

/// Splits a generated unit into per-function chunks. Generated sources
/// put `function name(` at column 0 and the closing `}` on its own line.
fn split_funcs(src: &str) -> Vec<Chunk> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut name = String::new();
    for line in src.lines() {
        if let Some(rest) = line.strip_prefix("function ") {
            name = rest.split('(').next().unwrap_or("").to_string();
        }
        cur.push_str(line);
        cur.push('\n');
        if line == "}" {
            out.push(Chunk {
                name: std::mem::take(&mut name),
                text: std::mem::take(&mut cur),
            });
        }
    }
    debug_assert!(cur.is_empty(), "trailing non-function text in unit");
    out
}

/// `mod{level}_{n}.hl` units hold helpers; `modes.hl` (the mode helpers)
/// must not match.
fn is_helper_unit(name: &str) -> bool {
    name.strip_prefix("mod")
        .is_some_and(|r| r.starts_with(|c: char| c.is_ascii_digit()))
}

/// Parses `f{level}_{i}` → `level`; `None` for endpoints and inserts.
fn helper_level(name: &str) -> Option<usize> {
    let rest = name.strip_prefix('f')?;
    let (level, idx) = rest.split_once('_')?;
    idx.parse::<usize>().ok()?;
    level.parse::<usize>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Value, Vm};

    #[test]
    fn zero_rate_is_byte_identical() {
        let params = AppParams::tiny();
        let base = appgen::build_sources(&params);
        let mut churned = appgen::build_sources(&params);
        let report = churn_sources(&mut churned, &ChurnParams { seed: 9, rate: 0.0 });
        assert_eq!(report, ChurnReport::default());
        assert_eq!(base, churned);
    }

    #[test]
    fn churn_is_deterministic() {
        let params = AppParams::tiny();
        let c = ChurnParams { seed: 3, rate: 0.3 };
        let mut a = appgen::build_sources(&params);
        let mut b = appgen::build_sources(&params);
        assert_eq!(churn_sources(&mut a, &c), churn_sources(&mut b, &c));
        assert_eq!(a, b);
    }

    #[test]
    fn churned_release_compiles_and_serves_every_endpoint() {
        let params = AppParams::tiny();
        let (app, report) = generate_release(&params, &ChurnParams { seed: 5, rate: 0.5 });
        assert!(report.total_edits() > 0, "rate 0.5 must churn something");
        bytecode::verify_repo(&app.repo).expect("churned bytecode verifies");
        assert_eq!(app.endpoints.len(), params.endpoints);
        let mut vm = Vm::new(&app.repo);
        for ep in &app.endpoints {
            for arg in [0i64, 3, 500, 999] {
                vm.call(ep.func, &[Value::Int(arg)])
                    .unwrap_or_else(|e| panic!("ep {:?} arg {arg}: {e}", ep.func));
            }
        }
    }

    #[test]
    fn churn_touches_every_axis_at_high_rate() {
        let params = AppParams::tiny();
        let mut files = appgen::build_sources(&params);
        let report = churn_sources(
            &mut files,
            &ChurnParams {
                seed: 11,
                rate: 1.0,
            },
        );
        assert!(report.funcs_renamed > 0, "{report:?}");
        assert!(report.funcs_deleted > 0, "{report:?}");
        assert!(report.funcs_inserted > 0, "{report:?}");
        assert!(report.files_reordered > 0, "{report:?}");
        assert!(report.branches_inserted > 0, "{report:?}");
        assert!(report.cold_paths_removed > 0, "{report:?}");
    }

    #[test]
    fn class_and_mode_units_are_never_touched() {
        let params = AppParams::tiny();
        let base = appgen::build_sources(&params);
        let mut churned = appgen::build_sources(&params);
        churn_sources(&mut churned, &ChurnParams { seed: 2, rate: 1.0 });
        for ((bn, bs), (cn, cs)) in base.iter().zip(&churned) {
            assert_eq!(bn, cn, "file set is fixed");
            if bn.starts_with("classes_") || bn == "modes.hl" {
                assert_eq!(bs, cs, "{bn} must be untouched");
            }
        }
    }

    #[test]
    fn file_set_is_fixed_and_no_file_is_emptied() {
        let params = AppParams::tiny();
        let base = appgen::build_sources(&params);
        let mut churned = appgen::build_sources(&params);
        churn_sources(&mut churned, &ChurnParams { seed: 7, rate: 1.0 });
        assert_eq!(base.len(), churned.len());
        for (name, src) in &churned {
            assert!(
                !src.trim().is_empty(),
                "{name} emptied by churn — ids past it would shift unrealistically"
            );
        }
    }
}
