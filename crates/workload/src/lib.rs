//! Synthetic large-scale web application and traffic generator.
//!
//! The paper's workload is the Facebook website: a monolithic Hack code
//! base (100M+ lines) with a *very flat* execution profile and a long tail
//! of warm functions (§II-B), served by a fleet partitioned into 10
//! *semantic buckets* with per-region traffic differences (§II-C).
//!
//! This crate generates a scaled-down application with the same load-
//! bearing properties:
//!
//! * many units/classes/functions organized in *modules* aligned with the
//!   semantic partitions,
//! * leveled call structure (endpoints → helpers → leaves) with both
//!   argument-dependent and constant-argument call sites — the latter make
//!   per-site callee behavior diverge from the callee's average, which is
//!   exactly what §V-A's instrumented optimized code recovers,
//! * classes whose *hot* properties are declared late (so declared-order
//!   layout is poor and §V-C's reordering has something to win),
//! * Zipf-distributed endpoint popularity per (region, bucket) mix with
//!   semantic-routing affinity.

mod appgen;
mod churn;
mod traffic;

pub use appgen::{build_sources, compile_sources, generate, App, AppParams, Endpoint};
pub use churn::{churn_sources, generate_release, ChurnParams, ChurnReport};
pub use traffic::{profile_run, ProfileRun, RequestMix, RequestSampler};
