//! Fully-associative, LRU translation look-aside buffer.

use crate::metrics::AccessStats;

/// A TLB with a fixed number of page entries.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, last_use); u64::MAX = invalid
    page_bytes: u64,
    tick: u64,
    stats: AccessStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: u32, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            entries: vec![(u64::MAX, 0); entries as usize],
            page_bytes,
            tick: 0,
            stats: AccessStats::default(),
        }
    }

    /// A 64-entry, 4 KiB-page TLB (Broadwell-like first level).
    pub fn broadwell() -> Self {
        Self::new(64, 4096)
    }

    /// Translates one address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let page = addr / self.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.tick;
            return true;
        }
        self.stats.misses += 1;
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|(_, last)| *last)
            .expect("entries non-empty");
        *victim = (page, self.tick);
        false
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Clears counters but keeps contents.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn lru_eviction_over_capacity() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 MRU
        assert!(!t.access(8192)); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(4096));
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::broadwell();
        for i in 0..100u64 {
            t.access(i * 4096);
        }
        assert_eq!(t.stats().accesses, 100);
        assert_eq!(t.stats().misses, 100);
        t.reset_stats();
        assert_eq!(t.stats().accesses, 0);
    }
}
