//! Fully-associative, LRU translation look-aside buffers.
//!
//! Two models live here:
//!
//! * [`Tlb`] — a single-level, single-page-size TLB (used for the D-side).
//! * [`TlbHierarchy`] — a Broadwell-like two-level I-TLB with mixed page
//!   sizes: separate 4 KiB and 2 MiB first-level arrays backed by a shared
//!   second-level array that tracks the page size per entry. This is what
//!   makes huge-page hot-text packing observable in `MissReport`.
//!
//! Both are built on [`LruIndex`], a hash-indexed LRU: O(1) lookup and
//! eviction regardless of entry count, so large second-level TLBs do not
//! make replay quadratic. Fill and eviction order exactly match the old
//! linear-scan + `min_by_key` implementation (empty slots claimed in index
//! order, then true LRU), which the parity test below pins down.

use std::collections::HashMap;

use crate::metrics::AccessStats;

const NIL: usize = usize::MAX;

/// Hash-indexed fully-associative LRU over opaque keys: O(1) `touch`.
#[derive(Clone, Debug)]
struct LruIndex {
    slot_of: HashMap<u64, usize>,
    key_of: Vec<u64>,
    prev: Vec<usize>,
    next: Vec<usize>,
    /// Least-recently-used live slot.
    head: usize,
    /// Most-recently-used live slot.
    tail: usize,
    /// Next never-used slot (claimed in index order, like the old
    /// `min_by_key` over zero-initialized ticks).
    next_free: usize,
}

impl LruIndex {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU needs at least one slot");
        Self {
            slot_of: HashMap::with_capacity(capacity),
            key_of: vec![0; capacity],
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            next_free: 0,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n] = p;
        }
    }

    fn push_mru(&mut self, slot: usize) {
        self.prev[slot] = self.tail;
        self.next[slot] = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.next[self.tail] = slot;
        }
        self.tail = slot;
    }

    /// Looks up `key`, marking it most-recently-used; on miss, inserts it
    /// (evicting the LRU key if full). Returns `true` on hit.
    fn touch(&mut self, key: u64) -> bool {
        if let Some(&slot) = self.slot_of.get(&key) {
            if self.tail != slot {
                self.unlink(slot);
                self.push_mru(slot);
            }
            return true;
        }
        let slot = if self.next_free < self.key_of.len() {
            let s = self.next_free;
            self.next_free += 1;
            s
        } else {
            let s = self.head;
            self.slot_of.remove(&self.key_of[s]);
            self.unlink(s);
            s
        };
        self.key_of[slot] = key;
        self.slot_of.insert(key, slot);
        self.push_mru(slot);
        false
    }
}

/// A TLB with a fixed number of page entries over one page size.
#[derive(Clone, Debug)]
pub struct Tlb {
    index: LruIndex,
    page_bytes: u64,
    stats: AccessStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: u32, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            index: LruIndex::new(entries as usize),
            page_bytes,
            stats: AccessStats::default(),
        }
    }

    /// A 64-entry, 4 KiB-page TLB (Broadwell-like first level).
    pub fn broadwell() -> Self {
        Self::new(64, 4096)
    }

    /// Translates one address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let hit = self.index.touch(addr / self.page_bytes);
        if !hit {
            self.stats.misses += 1;
        }
        hit
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Clears counters but keeps contents.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }
}

/// Which level of [`TlbHierarchy`] satisfied a translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLevel {
    /// First-level hit (free).
    L1,
    /// First-level miss, second-level hit (small penalty).
    L2,
    /// Missed both levels: full page walk.
    Walk,
}

/// Two-level I-TLB with mixed page sizes.
///
/// First level: separate arrays for 4 KiB and 2 MiB pages (Broadwell
/// carries 64 small-page and 8 huge-page I-TLB entries). Second level: one
/// shared array whose entries track their page size, so a huge-page
/// translation never aliases a small-page one. The caller decides per
/// access which page size maps the address (the code cache publishes its
/// huge-text range).
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    l1_small: Tlb,
    l1_huge: Tlb,
    l2: LruIndex,
    l2_stats: AccessStats,
    small_page_bytes: u64,
    huge_page_bytes: u64,
}

impl TlbHierarchy {
    /// Creates a hierarchy; `l1_small`/`l1_huge`/`l2` are entry counts.
    ///
    /// # Panics
    ///
    /// Panics if any entry count is zero or a page size is not a power of
    /// two.
    pub fn new(
        l1_small: u32,
        l1_huge: u32,
        l2: u32,
        small_page_bytes: u64,
        huge_page_bytes: u64,
    ) -> Self {
        assert!(l2 > 0, "L2 TLB needs at least one entry");
        assert!(
            small_page_bytes.is_power_of_two() && huge_page_bytes.is_power_of_two(),
            "page sizes must be powers of two"
        );
        Self {
            l1_small: Tlb::new(l1_small, small_page_bytes),
            l1_huge: Tlb::new(l1_huge, huge_page_bytes),
            l2: LruIndex::new(l2 as usize),
            l2_stats: AccessStats::default(),
            small_page_bytes,
            huge_page_bytes,
        }
    }

    /// Broadwell-like I-TLB: 64×4 KiB + 8×2 MiB first level, 1024-entry
    /// shared second level.
    pub fn broadwell_itlb() -> Self {
        Self::new(64, 8, 1024, 4096, 2 << 20)
    }

    /// Translates `addr`, which lives on a huge page iff `huge`.
    pub fn access(&mut self, addr: u64, huge: bool) -> TlbLevel {
        let l1 = if huge {
            &mut self.l1_huge
        } else {
            &mut self.l1_small
        };
        if l1.access(addr) {
            return TlbLevel::L1;
        }
        // Shared L2, page size tracked per entry: key = (page, size class).
        // Page numbers use at most 52 bits, so the tag bit is free.
        let page_bytes = if huge {
            self.huge_page_bytes
        } else {
            self.small_page_bytes
        };
        let key = (addr / page_bytes) << 1 | huge as u64;
        self.l2_stats.accesses += 1;
        if self.l2.touch(key) {
            TlbLevel::L2
        } else {
            self.l2_stats.misses += 1;
            TlbLevel::Walk
        }
    }

    /// Combined first-level counters (accesses = translations, misses =
    /// first-level misses) — the "iTLB miss rate" number.
    pub fn l1_stats(&self) -> AccessStats {
        self.l1_small.stats() + self.l1_huge.stats()
    }

    /// Second-level counters (accesses = first-level misses, misses = full
    /// page walks).
    pub fn l2_stats(&self) -> AccessStats {
        self.l2_stats
    }

    /// Clears counters but keeps contents.
    pub fn reset_stats(&mut self) {
        self.l1_small.reset_stats();
        self.l1_huge.reset_stats();
        self.l2_stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn lru_eviction_over_capacity() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 MRU
        assert!(!t.access(8192)); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(4096));
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::broadwell();
        for i in 0..100u64 {
            t.access(i * 4096);
        }
        assert_eq!(t.stats().accesses, 100);
        assert_eq!(t.stats().misses, 100);
        t.reset_stats();
        assert_eq!(t.stats().accesses, 0);
    }

    /// The old O(entries) implementation: linear scan + `min_by_key`
    /// eviction over (page, last-use-tick) pairs. Kept as the behavioral
    /// reference for the indexed version.
    struct NaiveTlb {
        entries: Vec<(u64, u64)>,
        page_bytes: u64,
        tick: u64,
        stats: AccessStats,
    }

    impl NaiveTlb {
        fn new(entries: u32, page_bytes: u64) -> Self {
            Self {
                entries: vec![(u64::MAX, 0); entries as usize],
                page_bytes,
                tick: 0,
                stats: AccessStats::default(),
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            self.tick += 1;
            self.stats.accesses += 1;
            let page = addr / self.page_bytes;
            if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
                e.1 = self.tick;
                return true;
            }
            self.stats.misses += 1;
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|(_, last)| *last)
                .expect("entries non-empty");
            *victim = (page, self.tick);
            false
        }
    }

    #[test]
    fn indexed_tlb_matches_naive_reference_access_for_access() {
        // Pseudo-random but deterministic address stream with enough page
        // reuse to exercise hits, refills, and repeated evictions.
        for entries in [1u32, 2, 3, 8, 64] {
            let mut fast = Tlb::new(entries, 4096);
            let mut naive = NaiveTlb::new(entries, 4096);
            let mut x: u64 = 0x9E37_79B9;
            for i in 0..20_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // ~3x entries distinct pages; occasional far outlier.
                let span = entries as u64 * 3 + 1;
                let page = if i % 97 == 0 { x % 10_000 } else { x % span };
                let addr = page * 4096 + (x % 4096);
                assert_eq!(
                    fast.access(addr),
                    naive.access(addr),
                    "divergence at access {i} (entries {entries})"
                );
            }
            assert_eq!(fast.stats(), naive.stats);
        }
    }

    #[test]
    fn hierarchy_l2_catches_l1_evictions() {
        // 2-entry small L1, big L2: cycling 3 pages misses L1 constantly
        // but hits L2 once warm.
        let mut h = TlbHierarchy::new(2, 1, 64, 4096, 2 << 20);
        for _ in 0..2 {
            for p in 0..3u64 {
                h.access(p * 4096, false);
            }
        }
        let l1 = h.l1_stats();
        let l2 = h.l2_stats();
        assert_eq!(l1.accesses, 6);
        assert!(l1.misses > 3, "L1 keeps missing on a 3-page cycle");
        assert_eq!(l2.accesses, l1.misses);
        assert_eq!(l2.misses, 3, "only the cold fills walk");
    }

    #[test]
    fn huge_pages_collapse_small_page_pressure() {
        // 1 MiB of hot code touched page-by-page: 256 small pages thrash a
        // 64-entry L1, but fit entirely in one huge page.
        let run = |huge: bool| {
            let mut h = TlbHierarchy::broadwell_itlb();
            for rep in 0..4 {
                for i in 0..256u64 {
                    h.access(i * 4096, huge);
                }
                let _ = rep;
            }
            h.l1_stats()
        };
        let small = run(false);
        let huge = run(true);
        assert_eq!(small.misses, 1024, "256 pages > 64 entries: all miss");
        assert_eq!(huge.misses, 1, "one huge page: one cold miss");
    }

    #[test]
    fn l2_entries_distinguish_page_sizes() {
        let mut h = TlbHierarchy::new(1, 1, 8, 4096, 2 << 20);
        // Address 0 as a small page, then as a huge page: different L2
        // keys, so the huge access still walks.
        h.access(0, false);
        assert_eq!(h.access(0, true), TlbLevel::Walk);
    }

    #[test]
    fn hierarchy_reset_clears_counters_only() {
        let mut h = TlbHierarchy::broadwell_itlb();
        h.access(0, false);
        h.reset_stats();
        assert_eq!(h.l1_stats(), AccessStats::default());
        assert_eq!(h.l2_stats(), AccessStats::default());
        // Contents survive: same page hits immediately.
        assert_eq!(h.access(0, false), TlbLevel::L1);
    }
}
