//! One core's memory-system model and cycle accounting.

use crate::branch::BranchPredictor;
use crate::cache::{Cache, CacheConfig};
use crate::metrics::MissReport;
use crate::tlb::Tlb;

/// Latency parameters (cycles) for the cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreParams {
    /// Added cycles when an L1 (I or D) access misses but the LLC hits.
    pub llc_hit_penalty: u64,
    /// Added cycles when the LLC also misses (memory access).
    pub mem_penalty: u64,
    /// Added cycles for a TLB miss (page walk).
    pub tlb_penalty: u64,
    /// Added cycles for a branch misprediction (pipeline flush).
    pub mispredict_penalty: u64,
    /// Added cycles for every *taken* branch (fetch redirect bubble); this
    /// is why fallthrough layouts win even with perfect prediction.
    pub taken_penalty: u64,
    /// I-TLB entries (scaled with the scaled-down code footprint).
    pub itlb_entries: u32,
    /// D-TLB entries.
    pub dtlb_entries: u32,
}

impl Default for CoreParams {
    fn default() -> Self {
        Self {
            llc_hit_penalty: 12,
            mem_penalty: 120,
            tlb_penalty: 30,
            mispredict_penalty: 16,
            taken_penalty: 2,
            itlb_entries: 32,
            dtlb_entries: 48,
        }
    }
}

/// A single core: L1I, L1D, shared-level LLC, I-TLB, D-TLB and a branch
/// predictor, plus cycle accounting.
///
/// The executor calls [`CoreModel::fetch`] for each basic block it enters,
/// [`CoreModel::load`]/[`CoreModel::store`] for data accesses, and
/// [`CoreModel::branch`] for conditional branches; each returns the *added*
/// cycles from misses, which the caller adds to the instruction base cost.
#[derive(Clone, Debug)]
pub struct CoreModel {
    params: CoreParams,
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    bp: BranchPredictor,
    instructions: u64,
    cycles: u64,
}

impl CoreModel {
    /// Creates a core with the given latencies and default Broadwell-like
    /// geometry.
    pub fn new(params: CoreParams) -> Self {
        Self {
            params,
            l1i: Cache::new(CacheConfig::L1),
            l1d: Cache::new(CacheConfig::L1),
            llc: Cache::new(CacheConfig::LLC),
            itlb: Tlb::new(params.itlb_entries, 4096),
            dtlb: Tlb::new(params.dtlb_entries, 4096),
            bp: BranchPredictor::default_size(),
            instructions: 0,
            cycles: 0,
        }
    }

    /// Adds `n` executed instructions at `base_cycles` total.
    pub fn retire(&mut self, n: u64, base_cycles: u64) {
        self.instructions += n;
        self.cycles += base_cycles;
    }

    /// Fetches `len` code bytes at `addr`; returns added cycles.
    pub fn fetch(&mut self, addr: u64, len: u32) -> u64 {
        let mut added = 0;
        if !self.itlb.access(addr) {
            added += self.params.tlb_penalty;
        }
        // Walk the lines the block spans.
        let line = self.l1i.config().line_bytes as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        for l in first..=last {
            if !self.l1i.access(l * line) {
                added += if self.llc.access(l * line) {
                    self.params.llc_hit_penalty
                } else {
                    self.params.mem_penalty
                };
            }
        }
        self.cycles += added;
        added
    }

    /// Loads `len` data bytes at `addr`; returns added cycles.
    pub fn load(&mut self, addr: u64, len: u32) -> u64 {
        self.data_access(addr, len)
    }

    /// Stores `len` data bytes at `addr`; returns added cycles (write-
    /// allocate, so identical path to loads).
    pub fn store(&mut self, addr: u64, len: u32) -> u64 {
        self.data_access(addr, len)
    }

    fn data_access(&mut self, addr: u64, len: u32) -> u64 {
        let mut added = 0;
        if !self.dtlb.access(addr) {
            added += self.params.tlb_penalty;
        }
        let line = self.l1d.config().line_bytes as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        for l in first..=last {
            if !self.l1d.access(l * line) {
                added += if self.llc.access(l * line) {
                    self.params.llc_hit_penalty
                } else {
                    self.params.mem_penalty
                };
            }
        }
        self.cycles += added;
        added
    }

    /// Resolves a conditional branch at `pc` (with the *emitted* polarity:
    /// `taken` means the fetch actually redirects); returns added cycles.
    pub fn branch(&mut self, pc: u64, taken: bool) -> u64 {
        let correct = self.bp.branch(pc, taken);
        let mut added = if correct {
            0
        } else {
            self.params.mispredict_penalty
        };
        if taken {
            added += self.params.taken_penalty;
        }
        self.cycles += added;
        added
    }

    /// Total cycles so far (base + penalties).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Snapshot of every structure's counters.
    pub fn report(&self) -> MissReport {
        MissReport {
            branch: self.bp.stats(),
            icache: self.l1i.stats(),
            itlb: self.itlb.stats(),
            dcache: self.l1d.stats(),
            dtlb: self.dtlb.stats(),
            llc: self.llc.stats(),
            instructions: self.instructions,
            cycles: self.cycles,
        }
    }

    /// Clears all counters (keeping learned/cached state) — used to drop
    /// warmup noise before measuring steady state.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.llc.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.bp.reset_stats();
        self.instructions = 0;
        self.cycles = 0;
    }
}

impl Default for CoreModel {
    fn default() -> Self {
        Self::new(CoreParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_code_fetches_cheaper_than_scattered() {
        // Fetch 64 blocks of 64B laid out contiguously vs spread over pages.
        let run = |stride: u64| {
            let mut core = CoreModel::default();
            for rep in 0..20 {
                for i in 0..64u64 {
                    core.fetch(i * stride, 64);
                }
                let _ = rep;
            }
            core.cycles()
        };
        let dense = run(64);
        let sparse = run(8192); // one block per two pages: TLB + cache pressure
        assert!(dense < sparse, "dense {dense} should beat sparse {sparse}");
    }

    #[test]
    fn hot_first_slots_beat_last_slots() {
        // Objects are 4 lines; accessing slot 0 vs slot 28 across many
        // objects shows the D-cache benefit of property reordering.
        let run = |slot: u64| {
            let mut core = CoreModel::default();
            for rep in 0..10 {
                for obj in 0..2000u64 {
                    let base = obj * 256;
                    core.load(base, 8); // header touch
                    core.load(base + slot * 8, 8);
                }
                let _ = rep;
            }
            core.cycles()
        };
        let first = run(1);
        let last = run(28);
        assert!(
            first < last,
            "first-slot {first} should beat last-slot {last}"
        );
    }

    #[test]
    fn mispredicts_add_cycles() {
        let mut core = CoreModel::default();
        let before = core.cycles();
        let mut x: u64 = 12345;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            core.branch(0x400, x & 1 == 0);
        }
        assert!(core.cycles() > before);
        assert!(core.report().branch.misses > 0);
    }

    #[test]
    fn retire_accumulates_instructions_and_cycles() {
        let mut core = CoreModel::default();
        core.retire(100, 150);
        let r = core.report();
        assert_eq!(r.instructions, 100);
        assert_eq!(r.cycles, 150);
        core.reset_stats();
        assert_eq!(core.report().instructions, 0);
    }
}
