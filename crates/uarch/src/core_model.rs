//! One core's memory-system model and cycle accounting.

use crate::branch::BranchPredictor;
use crate::cache::{Cache, CacheConfig};
use crate::metrics::MissReport;
use crate::tlb::{Tlb, TlbHierarchy, TlbLevel};

/// Latency parameters (cycles) for the cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreParams {
    /// Added cycles when an L1 (I or D) access misses but the LLC hits.
    pub llc_hit_penalty: u64,
    /// Added cycles when the LLC also misses (memory access).
    pub mem_penalty: u64,
    /// Added cycles for a TLB miss (page walk).
    pub tlb_penalty: u64,
    /// Added cycles for a first-level I-TLB miss that the shared second
    /// level catches (much cheaper than a walk).
    pub tlb_l2_penalty: u64,
    /// Added cycles for a branch misprediction (pipeline flush).
    pub mispredict_penalty: u64,
    /// Added cycles for every *taken* branch (fetch redirect bubble); this
    /// is why fallthrough layouts win even with perfect prediction.
    pub taken_penalty: u64,
    /// First-level I-TLB 4 KiB-page entries (Broadwell carries 64).
    pub itlb_entries: u32,
    /// First-level I-TLB 2 MiB-page entries (Broadwell carries 8).
    pub itlb_huge_entries: u32,
    /// Shared second-level I-TLB entries (page size tracked per entry).
    pub itlb_l2_entries: u32,
    /// D-TLB entries.
    pub dtlb_entries: u32,
}

impl Default for CoreParams {
    fn default() -> Self {
        Self {
            llc_hit_penalty: 12,
            mem_penalty: 120,
            tlb_penalty: 30,
            tlb_l2_penalty: 8,
            mispredict_penalty: 16,
            taken_penalty: 2,
            itlb_entries: 64,
            itlb_huge_entries: 8,
            itlb_l2_entries: 1024,
            dtlb_entries: 48,
        }
    }
}

/// A single core: L1I, L1D, shared-level LLC, I-TLB, D-TLB and a branch
/// predictor, plus cycle accounting.
///
/// The executor calls [`CoreModel::fetch`] for each basic block it enters,
/// [`CoreModel::load`]/[`CoreModel::store`] for data accesses, and
/// [`CoreModel::branch`] for conditional branches; each returns the *added*
/// cycles from misses, which the caller adds to the instruction base cost.
#[derive(Clone, Debug)]
pub struct CoreModel {
    params: CoreParams,
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    itlb: TlbHierarchy,
    dtlb: Tlb,
    bp: BranchPredictor,
    /// Address ranges mapped with 2 MiB pages (the code cache's packed
    /// hot text), sorted and non-overlapping.
    huge_ranges: Vec<(u64, u64)>,
    instructions: u64,
    cycles: u64,
}

impl CoreModel {
    /// Creates a core with the given latencies and default Broadwell-like
    /// geometry.
    pub fn new(params: CoreParams) -> Self {
        Self {
            params,
            l1i: Cache::new(CacheConfig::L1),
            l1d: Cache::new(CacheConfig::L1),
            llc: Cache::new(CacheConfig::LLC),
            itlb: TlbHierarchy::new(
                params.itlb_entries,
                params.itlb_huge_entries,
                params.itlb_l2_entries,
                4096,
                2 << 20,
            ),
            dtlb: Tlb::new(params.dtlb_entries, 4096),
            bp: BranchPredictor::default_size(),
            huge_ranges: Vec::new(),
            instructions: 0,
            cycles: 0,
        }
    }

    /// Declares `[start, start + len)` as backed by 2 MiB pages; code
    /// fetches inside it translate through the huge-page I-TLB entries.
    /// No-op for empty ranges.
    pub fn map_huge_range(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.huge_ranges.push((start, start + len));
        self.huge_ranges.sort_unstable();
    }

    fn is_huge(&self, addr: u64) -> bool {
        self.huge_ranges.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// Adds `n` executed instructions at `base_cycles` total.
    pub fn retire(&mut self, n: u64, base_cycles: u64) {
        self.instructions += n;
        self.cycles += base_cycles;
    }

    /// Fetches `len` code bytes at `addr`; returns added cycles.
    pub fn fetch(&mut self, addr: u64, len: u32) -> u64 {
        let mut added = 0;
        match self.itlb.access(addr, self.is_huge(addr)) {
            TlbLevel::L1 => {}
            TlbLevel::L2 => added += self.params.tlb_l2_penalty,
            TlbLevel::Walk => added += self.params.tlb_penalty,
        }
        // Walk the lines the block spans.
        let line = self.l1i.config().line_bytes as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        for l in first..=last {
            if !self.l1i.access(l * line) {
                added += if self.llc.access(l * line) {
                    self.params.llc_hit_penalty
                } else {
                    self.params.mem_penalty
                };
            }
        }
        self.cycles += added;
        added
    }

    /// Loads `len` data bytes at `addr`; returns added cycles.
    pub fn load(&mut self, addr: u64, len: u32) -> u64 {
        self.data_access(addr, len)
    }

    /// Stores `len` data bytes at `addr`; returns added cycles (write-
    /// allocate, so identical path to loads).
    pub fn store(&mut self, addr: u64, len: u32) -> u64 {
        self.data_access(addr, len)
    }

    fn data_access(&mut self, addr: u64, len: u32) -> u64 {
        let mut added = 0;
        if !self.dtlb.access(addr) {
            added += self.params.tlb_penalty;
        }
        let line = self.l1d.config().line_bytes as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        for l in first..=last {
            if !self.l1d.access(l * line) {
                added += if self.llc.access(l * line) {
                    self.params.llc_hit_penalty
                } else {
                    self.params.mem_penalty
                };
            }
        }
        self.cycles += added;
        added
    }

    /// Resolves a conditional branch at `pc` (with the *emitted* polarity:
    /// `taken` means the fetch actually redirects); returns added cycles.
    pub fn branch(&mut self, pc: u64, taken: bool) -> u64 {
        let correct = self.bp.branch(pc, taken);
        let mut added = if correct {
            0
        } else {
            self.params.mispredict_penalty
        };
        if taken {
            added += self.params.taken_penalty;
        }
        self.cycles += added;
        added
    }

    /// Total cycles so far (base + penalties).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Snapshot of every structure's counters.
    pub fn report(&self) -> MissReport {
        MissReport {
            branch: self.bp.stats(),
            icache: self.l1i.stats(),
            itlb: self.itlb.l1_stats(),
            itlb_l2: self.itlb.l2_stats(),
            dcache: self.l1d.stats(),
            dtlb: self.dtlb.stats(),
            llc: self.llc.stats(),
            instructions: self.instructions,
            cycles: self.cycles,
        }
    }

    /// Clears all counters (keeping learned/cached state) — used to drop
    /// warmup noise before measuring steady state.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.llc.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.bp.reset_stats();
        self.instructions = 0;
        self.cycles = 0;
    }
}

impl Default for CoreModel {
    fn default() -> Self {
        Self::new(CoreParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_code_fetches_cheaper_than_scattered() {
        // Fetch 64 blocks of 64B laid out contiguously vs spread over pages.
        let run = |stride: u64| {
            let mut core = CoreModel::default();
            for rep in 0..20 {
                for i in 0..64u64 {
                    core.fetch(i * stride, 64);
                }
                let _ = rep;
            }
            core.cycles()
        };
        let dense = run(64);
        let sparse = run(8192); // one block per two pages: TLB + cache pressure
        assert!(dense < sparse, "dense {dense} should beat sparse {sparse}");
    }

    #[test]
    fn hot_first_slots_beat_last_slots() {
        // Objects are 4 lines; accessing slot 0 vs slot 28 across many
        // objects shows the D-cache benefit of property reordering.
        let run = |slot: u64| {
            let mut core = CoreModel::default();
            for rep in 0..10 {
                for obj in 0..2000u64 {
                    let base = obj * 256;
                    core.load(base, 8); // header touch
                    core.load(base + slot * 8, 8);
                }
                let _ = rep;
            }
            core.cycles()
        };
        let first = run(1);
        let last = run(28);
        assert!(
            first < last,
            "first-slot {first} should beat last-slot {last}"
        );
    }

    #[test]
    fn huge_mapped_code_beats_small_pages() {
        // 1 MiB of hot code, touched block-by-block: on 4 KiB pages the
        // footprint thrashes the first-level I-TLB; mapped huge it is one
        // page.
        let run = |map_huge: bool| {
            let mut core = CoreModel::default();
            if map_huge {
                core.map_huge_range(0, 1 << 20);
            }
            for rep in 0..10 {
                for i in 0..256u64 {
                    core.fetch(i * 4096, 64);
                }
                let _ = rep;
            }
            core.report()
        };
        let small = run(false);
        let huge = run(true);
        assert!(
            huge.itlb.misses < small.itlb.misses,
            "huge {} should miss less than small {}",
            huge.itlb.misses,
            small.itlb.misses
        );
        assert!(huge.cycles < small.cycles);
    }

    #[test]
    fn mispredicts_add_cycles() {
        let mut core = CoreModel::default();
        let before = core.cycles();
        let mut x: u64 = 12345;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            core.branch(0x400, x & 1 == 0);
        }
        assert!(core.cycles() > before);
        assert!(core.report().branch.misses > 0);
    }

    #[test]
    fn retire_accumulates_instructions_and_cycles() {
        let mut core = CoreModel::default();
        core.retire(100, 150);
        let r = core.report();
        assert_eq!(r.instructions, 100);
        assert_eq!(r.cycles, 150);
        core.reset_stats();
        assert_eq!(core.report().instructions, 0);
    }
}
