//! Miss statistics and cross-run comparison.

use std::fmt;

/// Access/miss counters for one structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Total accesses (for the branch predictor: executed branches).
    pub accesses: u64,
    /// Misses (for the branch predictor: mispredictions).
    pub misses: u64,
}

impl AccessStats {
    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per thousand of `instructions`.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

impl std::ops::Add for AccessStats {
    type Output = AccessStats;

    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            accesses: self.accesses + rhs.accesses,
            misses: self.misses + rhs.misses,
        }
    }
}

/// A full snapshot of the metrics the paper reports in Fig. 5.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MissReport {
    /// Branch direction mispredictions.
    pub branch: AccessStats,
    /// L1 instruction cache.
    pub icache: AccessStats,
    /// Instruction TLB, first level (accesses = translations).
    pub itlb: AccessStats,
    /// Instruction TLB, shared second level (accesses = first-level
    /// misses; misses = full page walks). Zero when the core models a
    /// single-level I-TLB.
    pub itlb_l2: AccessStats,
    /// L1 data cache.
    pub dcache: AccessStats,
    /// Data TLB.
    pub dtlb: AccessStats,
    /// Shared last-level cache (instruction + data fills).
    pub llc: AccessStats,
    /// Instructions executed (for MPKI).
    pub instructions: u64,
    /// Total cycles accumulated by the cost model.
    pub cycles: u64,
}

impl MissReport {
    /// Percent reduction in misses-per-instruction of `self` relative to
    /// `baseline` for each metric, in Fig. 5's order:
    /// `[branch, icache, itlb, dcache, dtlb, llc]`. Positive = fewer misses.
    pub fn reduction_vs(&self, baseline: &MissReport) -> [f64; 6] {
        let pick = |s: &AccessStats, i: u64| s.mpki(i.max(1));
        let pairs = [
            (
                pick(&self.branch, self.instructions),
                pick(&baseline.branch, baseline.instructions),
            ),
            (
                pick(&self.icache, self.instructions),
                pick(&baseline.icache, baseline.instructions),
            ),
            (
                pick(&self.itlb, self.instructions),
                pick(&baseline.itlb, baseline.instructions),
            ),
            (
                pick(&self.dcache, self.instructions),
                pick(&baseline.dcache, baseline.instructions),
            ),
            (
                pick(&self.dtlb, self.instructions),
                pick(&baseline.dtlb, baseline.instructions),
            ),
            (
                pick(&self.llc, self.instructions),
                pick(&baseline.llc, baseline.instructions),
            ),
        ];
        pairs.map(|(new, old)| {
            if old == 0.0 {
                0.0
            } else {
                (old - new) / old * 100.0
            }
        })
    }

    /// Percent speedup of `self` over `baseline` by cycles-per-instruction
    /// (positive = `self` is faster).
    pub fn speedup_vs(&self, baseline: &MissReport) -> f64 {
        let cpi_new = self.cycles as f64 / self.instructions.max(1) as f64;
        let cpi_old = baseline.cycles as f64 / baseline.instructions.max(1) as f64;
        if cpi_new == 0.0 {
            0.0
        } else {
            (cpi_old / cpi_new - 1.0) * 100.0
        }
    }
}

impl fmt::Display for MissReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instructions: {}  cycles: {}",
            self.instructions, self.cycles
        )?;
        let row = |name: &str, s: &AccessStats| {
            format!(
                "  {name:<8} accesses {:>12}  misses {:>10}  rate {:>7.4}  mpki {:>8.3}",
                s.accesses,
                s.misses,
                s.miss_rate(),
                s.mpki(self.instructions)
            )
        };
        writeln!(f, "{}", row("branch", &self.branch))?;
        writeln!(f, "{}", row("icache", &self.icache))?;
        writeln!(f, "{}", row("itlb", &self.itlb))?;
        writeln!(f, "{}", row("itlb-l2", &self.itlb_l2))?;
        writeln!(f, "{}", row("dcache", &self.dcache))?;
        writeln!(f, "{}", row("dtlb", &self.dtlb))?;
        write!(f, "{}", row("llc", &self.llc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(AccessStats::default().miss_rate(), 0.0);
        let s = AccessStats {
            accesses: 10,
            misses: 3,
        };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.mpki(1000) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_is_positive_when_fewer_misses() {
        let old = MissReport {
            icache: AccessStats {
                accesses: 1000,
                misses: 100,
            },
            instructions: 1000,
            cycles: 2000,
            ..Default::default()
        };
        let new = MissReport {
            icache: AccessStats {
                accesses: 1000,
                misses: 50,
            },
            instructions: 1000,
            cycles: 1800,
            ..Default::default()
        };
        let red = new.reduction_vs(&old);
        assert!((red[1] - 50.0).abs() < 1e-9);
        assert!(new.speedup_vs(&old) > 0.0);
    }

    #[test]
    fn speedup_is_symmetric_around_zero() {
        let a = MissReport {
            instructions: 100,
            cycles: 100,
            ..Default::default()
        };
        let b = MissReport {
            instructions: 100,
            cycles: 110,
            ..Default::default()
        };
        assert!(a.speedup_vs(&b) > 0.0);
        assert!(b.speedup_vs(&a) < 0.0);
        assert_eq!(a.speedup_vs(&a), 0.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let r = MissReport {
            instructions: 10,
            cycles: 20,
            ..Default::default()
        };
        let s = r.to_string();
        for k in ["branch", "icache", "itlb", "dcache", "dtlb", "llc"] {
            assert!(s.contains(k));
        }
    }
}
