//! Set-associative cache with true LRU replacement.

use crate::metrics::AccessStats;

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// 32 KiB, 64 B lines, 8-way — Broadwell L1.
    pub const L1: CacheConfig = CacheConfig {
        size_bytes: 32 * 1024,
        line_bytes: 64,
        ways: 8,
    };

    /// 2 MiB, 64 B lines, 16-way — a scaled-down LLC matching our
    /// scaled-down application footprint (see DESIGN.md §2).
    pub const LLC: CacheConfig = CacheConfig {
        size_bytes: 2 * 1024 * 1024,
        line_bytes: 64,
        ways: 16,
    };

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// A set-associative cache. Tracks hits/misses; contents are tags only
/// (data values never matter for miss modeling).
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    // sets[set][way] = (tag, last_use); u64::MAX tag = invalid.
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    stats: AccessStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// line size).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = config.sets();
        assert!(sets > 0, "cache must have at least one set");
        Self {
            config,
            sets: vec![vec![(u64::MAX, 0); config.ways as usize]; sets as usize],
            tick: 0,
            stats: AccessStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses one byte address; returns `true` on hit. The whole line is
    /// filled on miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.tick;
            return true;
        }
        self.stats.misses += 1;
        // Evict LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|(_, last)| *last)
            .expect("ways is non-empty");
        *victim = (tag, self.tick);
        false
    }

    /// Accesses a byte range, touching every line it spans; returns the
    /// number of misses.
    pub fn access_range(&mut self, addr: u64, len: u32) -> u32 {
        let line = self.config.line_bytes as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        let mut misses = 0;
        for l in first..=last {
            if !self.access(l * line) {
                misses += 1;
            }
        }
        misses
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Clears counters but keeps contents (to measure steady state after
    /// warmup).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 bytes.
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(15), "same line");
        assert!(!c.access(16), "next line");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines with (line % 4 == 0): addresses 0, 64, 128.
        c.access(0);
        c.access(64);
        c.access(0); // 0 is now MRU
        assert!(!c.access(128)); // evicts 64
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(64), "64 was evicted");
    }

    #[test]
    fn range_access_counts_spanning_lines() {
        let mut c = tiny();
        let misses = c.access_range(8, 16); // spans lines 0 and 1
        assert_eq!(misses, 2);
        assert_eq!(c.access_range(8, 16), 0);
    }

    #[test]
    fn capacity_thrash_produces_misses() {
        let mut c = tiny();
        // Touch 3x capacity worth of distinct lines repeatedly: all misses
        // on a true-LRU cache with a cyclic pattern.
        for round in 0..3 {
            for line in 0..24u64 {
                c.access(line * 16);
            }
            let _ = round;
        }
        let s = c.stats();
        assert!(
            s.miss_rate() > 0.9,
            "cyclic thrash should keep missing, got {}",
            s.miss_rate()
        );
    }

    #[test]
    fn broadwell_l1_geometry() {
        assert_eq!(CacheConfig::L1.sets(), 64);
        let c = Cache::new(CacheConfig::L1);
        assert_eq!(c.config().ways, 8);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0), "contents survive reset");
    }
}
