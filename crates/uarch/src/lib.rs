//! Micro-architecture simulators.
//!
//! The paper's Fig. 5 reports Jump-Start's steady-state effect as miss-rate
//! reductions on branch prediction, I-cache, I-TLB, D-cache, D-TLB and LLC.
//! Those metrics come from real Broadwell hardware; this crate supplies the
//! simulated stand-ins the executor drives instead:
//!
//! * [`Cache`] — set-associative, true-LRU cache (L1I/L1D/shared LLC),
//! * [`Tlb`] — fully-associative LRU TLB (hash-indexed, O(1) access),
//! * [`TlbHierarchy`] — two-level I-TLB with mixed 4 KiB/2 MiB page sizes,
//! * [`BranchPredictor`] — gshare direction predictor,
//! * [`CoreModel`] — one core's fetch/load/store/branch interface with a
//!   cycle cost model,
//! * [`MissReport`] — snapshotting and comparing miss rates between runs.
//!
//! Addresses are plain `u64`s in a flat simulated address space; the JIT's
//! code cache hands out code addresses and the executor synthesizes data
//! addresses for objects and repo metadata.

mod branch;
mod cache;
mod core_model;
mod metrics;
mod tlb;

pub use branch::BranchPredictor;
pub use cache::{Cache, CacheConfig};
pub use core_model::{CoreModel, CoreParams};
pub use metrics::{AccessStats, MissReport};
pub use tlb::{Tlb, TlbHierarchy, TlbLevel};
