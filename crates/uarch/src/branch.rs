//! A gshare branch direction predictor.

use crate::metrics::AccessStats;

/// Gshare direction predictor plus a set-associative BTB.
///
/// Direction comes from a table of 2-bit saturating counters indexed by
/// `pc ^ global_history`. *Taken* branches additionally need a BTB entry
/// to redirect the front end; a BTB miss costs like a misprediction. This
/// is the mechanism by which basic-block layout affects the branch-miss
/// metric (paper Fig. 5): layouts that turn hot edges into fallthroughs
/// need fewer BTB entries.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
    // BTB: sets of (tag, lru); tag = pc, u64::MAX = invalid.
    btb: Vec<Vec<(u64, u64)>>,
    btb_tick: u64,
    stats: AccessStats, // misses = mispredictions + BTB misses on taken
}

impl BranchPredictor {
    /// Creates a predictor with `table_bits` of counters and
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is zero or larger than 24.
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        assert!(
            table_bits > 0 && table_bits <= 24,
            "table_bits out of range"
        );
        Self {
            table: vec![1; 1 << table_bits], // weakly not-taken
            history: 0,
            history_bits: history_bits.min(table_bits),
            btb: vec![vec![(u64::MAX, 0); 4]; 128],
            btb_tick: 0,
            stats: AccessStats::default(),
        }
    }

    /// A 4096-entry predictor with 8 bits of history.
    pub fn default_size() -> Self {
        Self::new(12, 8)
    }

    /// Records the outcome of the branch at `pc`; returns `true` if the
    /// prediction (direction *and* target, for taken branches) was right.
    pub fn branch(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.accesses += 1;
        let mask = (self.table.len() - 1) as u64;
        let hist = self.history & ((1u64 << self.history_bits) - 1);
        let idx = ((pc >> 2) ^ hist) & mask;
        let ctr = &mut self.table[idx as usize];
        let predicted_taken = *ctr >= 2;
        let mut correct = predicted_taken == taken;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
        // Taken branches need a BTB hit to redirect the front end.
        if taken && !self.btb_access(pc) {
            correct = false;
        }
        if !correct {
            self.stats.misses += 1;
        }
        correct
    }

    fn btb_access(&mut self, pc: u64) -> bool {
        self.btb_tick += 1;
        let set = ((pc >> 2) % self.btb.len() as u64) as usize;
        let ways = &mut self.btb[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == pc) {
            w.1 = self.btb_tick;
            return true;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|(_, last)| *last)
            .expect("non-empty");
        *victim = (pc, self.btb_tick);
        false
    }

    /// Prediction counters (`misses` are mispredictions).
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Clears counters but keeps learned state.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_monotone_branch() {
        let mut bp = BranchPredictor::default_size();
        // After warmup, an always-taken branch should predict correctly.
        for _ in 0..10 {
            bp.branch(0x1000, true);
        }
        bp.reset_stats();
        for _ in 0..100 {
            bp.branch(0x1000, true);
        }
        assert_eq!(bp.stats().misses, 0);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = BranchPredictor::new(12, 8);
        let mut taken = false;
        for _ in 0..200 {
            bp.branch(0x2000, taken);
            taken = !taken;
        }
        bp.reset_stats();
        for _ in 0..100 {
            bp.branch(0x2000, taken);
            taken = !taken;
        }
        assert!(
            bp.stats().miss_rate() < 0.1,
            "history should capture period-2 patterns, got {}",
            bp.stats().miss_rate()
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut bp = BranchPredictor::default_size();
        // Deterministic pseudo-random outcomes.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bp.branch(0x3000, x & 1 == 1);
        }
        assert!(bp.stats().miss_rate() > 0.3);
    }
}
