//! Vasm — the JIT's low-level block IR.
//!
//! HHVM lowers its region IR to "Vasm", the lowest-level representation
//! where basic-block layout and hot/cold splitting run (paper §V-A). This
//! reproduction's Vasm is an abstract machine-code model: instructions
//! carry encoded *size in bytes* and *base cycles*, so a translation's
//! blocks can be placed at concrete code-cache addresses and replayed
//! through the micro-architecture simulator.

use bytecode::{BlockId, Builtin, ClassId, FuncId};

/// One Vasm instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VInstr {
    /// Type guard on a parameter/local; side exit on failure.
    GuardType { local: u16 },
    /// Register move from the frame (load a local).
    LoadLocal(u16),
    /// Store to the frame.
    StoreLocal(u16),
    /// Materialize a small constant (int/bool/null).
    ConstSmall,
    /// Materialize a string pointer.
    ConstStr,
    /// Specialized integer arithmetic (add/sub/mul/bit ops).
    IntArith,
    /// Specialized float arithmetic.
    FloatArith,
    /// Specialized integer compare.
    CmpInt,
    /// Generic binary-op helper call (unknown operand types).
    GenBin,
    /// Generic compare helper call.
    GenCmp,
    /// String concatenation helper.
    ConcatOp,
    /// Specialized property load from a known class/slot.
    LoadProp {
        /// Receiver class the site is specialized for.
        class: ClassId,
        /// Physical slot index.
        slot: u16,
    },
    /// Specialized property store.
    StoreProp {
        /// Receiver class the site is specialized for.
        class: ClassId,
        /// Physical slot index.
        slot: u16,
    },
    /// Generic (hash-lookup) property access.
    GenProp,
    /// Object allocation.
    NewObjOp {
        /// Class being instantiated.
        class: ClassId,
    },
    /// Vec/dict allocation.
    NewArrOp,
    /// Array index read/write helper.
    IdxOp,
    /// Direct call to a known function.
    CallStatic {
        /// The callee.
        callee: FuncId,
    },
    /// Dynamic (method) dispatch through a target cache.
    CallDynamic {
        /// Function whose profile keys the site (the inlined callee for
        /// sites inside inlined bodies).
        owner: FuncId,
        /// Bytecode call-site index (keys the target profile).
        site: u32,
    },
    /// Builtin invocation.
    BuiltinOp {
        /// Which builtin.
        builtin: Builtin,
    },
    /// Profiling counter increment (profiling/instrumented translations).
    CountOp,
    /// Return sequence.
    RetOp,
    /// Fallback: punt one bytecode to the interpreter.
    InterpOne,
}

impl VInstr {
    /// Encoded size in bytes (drives layout distances and Fig. 1's code
    /// volume).
    pub fn size(&self) -> u32 {
        match self {
            VInstr::GuardType { .. } => 8,
            VInstr::LoadLocal(_) | VInstr::StoreLocal(_) => 4,
            VInstr::ConstSmall => 4,
            VInstr::ConstStr => 6,
            VInstr::IntArith | VInstr::CmpInt => 3,
            VInstr::FloatArith => 4,
            VInstr::GenBin => 14,
            VInstr::GenCmp => 12,
            VInstr::ConcatOp => 12,
            VInstr::LoadProp { .. } | VInstr::StoreProp { .. } => 7,
            VInstr::GenProp => 14,
            VInstr::NewObjOp { .. } => 16,
            VInstr::NewArrOp => 12,
            VInstr::IdxOp => 10,
            VInstr::CallStatic { .. } => 5,
            VInstr::CallDynamic { .. } => 14,
            VInstr::BuiltinOp { .. } => 10,
            VInstr::CountOp => 6,
            VInstr::RetOp => 3,
            VInstr::InterpOne => 16,
        }
    }

    /// Base execution cycles, excluding memory-system penalties.
    pub fn cycles(&self) -> u64 {
        match self {
            VInstr::GuardType { .. } => 1,
            VInstr::LoadLocal(_) | VInstr::StoreLocal(_) => 1,
            VInstr::ConstSmall | VInstr::ConstStr => 1,
            VInstr::IntArith | VInstr::CmpInt => 1,
            VInstr::FloatArith => 2,
            VInstr::GenBin => 10,
            VInstr::GenCmp => 8,
            VInstr::ConcatOp => 14,
            VInstr::LoadProp { .. } | VInstr::StoreProp { .. } => 2,
            VInstr::GenProp => 12,
            VInstr::NewObjOp { .. } => 18,
            VInstr::NewArrOp => 14,
            VInstr::IdxOp => 6,
            VInstr::CallStatic { .. } => 2,
            VInstr::CallDynamic { .. } => 8,
            VInstr::BuiltinOp { builtin } => match builtin {
                Builtin::Print => 25,
                Builtin::Substr | Builtin::HashVal => 12,
                _ => 6,
            },
            VInstr::CountOp => 2,
            VInstr::RetOp => 1,
            VInstr::InterpOne => 40,
        }
    }

    /// Whether this instruction performs a data access the executor must
    /// route through the D-cache model.
    pub fn data_access(&self) -> bool {
        matches!(
            self,
            VInstr::LoadProp { .. }
                | VInstr::StoreProp { .. }
                | VInstr::GenProp
                | VInstr::NewObjOp { .. }
                | VInstr::NewArrOp
                | VInstr::IdxOp
        )
    }
}

/// A block terminator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Term {
    /// Unconditional jump to another Vasm block.
    Jump(usize),
    /// Conditional branch.
    Cond {
        /// Block on taken.
        taken: usize,
        /// Block on fallthrough.
        fall: usize,
    },
    /// Return to the caller.
    Ret,
    /// Side exit back to the interpreter (guard failure, cold path).
    Exit,
}

impl Term {
    /// Successor block indices.
    pub fn successors(&self) -> Vec<usize> {
        match *self {
            Term::Jump(t) => vec![t],
            Term::Cond { taken, fall } => vec![taken, fall],
            Term::Ret | Term::Exit => vec![],
        }
    }
}

/// One Vasm basic block.
#[derive(Clone, Debug, PartialEq)]
pub struct VBlock {
    /// Instructions (terminator encoded separately).
    pub instrs: Vec<VInstr>,
    /// Terminator.
    pub term: Term,
    /// Weight used for *layout decisions* — from tier-1 counters mapped
    /// down through lowering/inlining without Jump-Start, or from the
    /// accurate instrumented-optimized-code counters with it (§V-A).
    pub est_weight: u64,
    /// Ground-truth weight (what actually executes) — used by the replay.
    pub true_weight: u64,
    /// Ground-truth probability the terminator's taken edge fires.
    pub true_taken_prob: f64,
    /// Estimated taken probability (layout view).
    pub est_taken_prob: f64,
    /// Originating bytecode block, when 1:1 (None for guards/side exits
    /// and inlined prologues).
    pub bc_origin: Option<(FuncId, BlockId)>,
}

impl VBlock {
    /// Code size in bytes, including the terminator's encoding.
    pub fn size(&self) -> u32 {
        let body: u32 = self.instrs.iter().map(VInstr::size).sum();
        body + self.term_size()
    }

    /// Encoded size of the terminator.
    pub fn term_size(&self) -> u32 {
        match self.term {
            Term::Jump(_) => 5,
            Term::Cond { .. } => 6,
            Term::Ret => 1,
            Term::Exit => 10,
        }
    }

    /// Base cycles for one pass through the block (no penalties).
    pub fn base_cycles(&self) -> u64 {
        self.instrs.iter().map(VInstr::cycles).sum::<u64>() + 1
    }

    /// Number of modeled machine instructions.
    pub fn instr_count(&self) -> u64 {
        self.instrs.len() as u64 + 1
    }
}

/// A complete translation in Vasm form.
#[derive(Clone, Debug, PartialEq)]
pub struct VasmUnit {
    /// The translated function.
    pub func: FuncId,
    /// Blocks; index 0 is the entry.
    pub blocks: Vec<VBlock>,
}

impl VasmUnit {
    /// Total code size in bytes.
    pub fn code_size(&self) -> u32 {
        self.blocks.iter().map(VBlock::size).sum()
    }

    /// Edge list with *estimated* weights for the layout algorithms.
    pub fn layout_edges(&self) -> Vec<layout::BlockEdge> {
        let mut edges = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            match b.term {
                Term::Jump(t) => {
                    edges.push(layout::BlockEdge {
                        src: i,
                        dst: t,
                        weight: b.est_weight,
                    });
                }
                Term::Cond { taken, fall } => {
                    let tw = (b.est_weight as f64 * b.est_taken_prob) as u64;
                    edges.push(layout::BlockEdge {
                        src: i,
                        dst: taken,
                        weight: tw,
                    });
                    edges.push(layout::BlockEdge {
                        src: i,
                        dst: fall,
                        weight: b.est_weight.saturating_sub(tw),
                    });
                }
                Term::Ret | Term::Exit => {}
            }
        }
        edges
    }

    /// Block nodes (size + estimated weight) for the layout algorithms.
    pub fn layout_blocks(&self) -> Vec<layout::BlockNode> {
        self.blocks
            .iter()
            .map(|b| layout::BlockNode {
                size: b.size(),
                weight: b.est_weight,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_cycles_are_positive() {
        let samples = [
            VInstr::GuardType { local: 0 },
            VInstr::IntArith,
            VInstr::GenBin,
            VInstr::LoadProp {
                class: ClassId::new(0),
                slot: 3,
            },
            VInstr::CallStatic {
                callee: FuncId::new(0),
            },
            VInstr::RetOp,
            VInstr::InterpOne,
        ];
        for s in samples {
            assert!(s.size() > 0);
            assert!(s.cycles() > 0);
        }
    }

    #[test]
    fn specialized_ops_are_cheaper_than_generic() {
        assert!(VInstr::IntArith.size() < VInstr::GenBin.size());
        assert!(VInstr::IntArith.cycles() < VInstr::GenBin.cycles());
        let lp = VInstr::LoadProp {
            class: ClassId::new(0),
            slot: 0,
        };
        assert!(lp.size() < VInstr::GenProp.size());
        assert!(lp.cycles() < VInstr::GenProp.cycles());
    }

    #[test]
    fn block_size_includes_terminator() {
        let b = VBlock {
            instrs: vec![VInstr::IntArith],
            term: Term::Cond { taken: 1, fall: 2 },
            est_weight: 0,
            true_weight: 0,
            true_taken_prob: 0.5,
            est_taken_prob: 0.5,
            bc_origin: None,
        };
        assert_eq!(b.size(), 3 + 6);
        assert_eq!(b.instr_count(), 2);
        assert!(b.base_cycles() >= 2);
    }

    #[test]
    fn layout_edges_split_by_probability() {
        let unit = VasmUnit {
            func: FuncId::new(0),
            blocks: vec![
                VBlock {
                    instrs: vec![],
                    term: Term::Cond { taken: 1, fall: 2 },
                    est_weight: 100,
                    true_weight: 100,
                    true_taken_prob: 0.9,
                    est_taken_prob: 0.25,
                    bc_origin: None,
                },
                VBlock {
                    instrs: vec![],
                    term: Term::Ret,
                    est_weight: 25,
                    true_weight: 90,
                    true_taken_prob: 0.0,
                    est_taken_prob: 0.0,
                    bc_origin: None,
                },
                VBlock {
                    instrs: vec![],
                    term: Term::Ret,
                    est_weight: 75,
                    true_weight: 10,
                    true_taken_prob: 0.0,
                    est_taken_prob: 0.0,
                    bc_origin: None,
                },
            ],
        };
        let edges = unit.layout_edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].weight, 25);
        assert_eq!(edges[1].weight, 75);
        assert!(unit.code_size() > 0);
    }

    #[test]
    fn term_successors() {
        assert_eq!(Term::Jump(3).successors(), vec![3]);
        assert_eq!(Term::Cond { taken: 1, fall: 2 }.successors(), vec![1, 2]);
        assert!(Term::Ret.successors().is_empty());
    }
}
