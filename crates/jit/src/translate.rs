//! Bytecode → Vasm lowering for the three translation kinds.
//!
//! The *optimized* translation applies the profile-guided machinery of
//! paper §II-A: entry type guards, operand type specialization, property
//! slot specialization, and depth-1 inlining at monomorphic call sites.
//!
//! Each Vasm block carries **two** weight views:
//!
//! * `est_*` — what the layout optimizations see. With
//!   [`WeightSource::TierOnly`] (no Jump-Start), branch probabilities are
//!   *inferred from bytecode block counters* (tier-1 has no edge counts)
//!   and inlined bodies get the callee's *average* behavior scaled by call
//!   ratio (tier-1 does no inlining) — both inaccuracies the paper calls
//!   out in §V-A/§V-B. With [`WeightSource::Accurate`] (Jump-Start), the
//!   seeder's instrumented optimized code supplies exact, context-sensitive
//!   branch counts.
//! * `true_*` — ground truth, used only by the replay executor.

use std::sync::{Arc, OnceLock};

use bytecode::{BlockId, Cfg, ClassId, FuncId, Instr, Repo, StrId};
use vm::ValueKind;

use crate::profile::{CtxProfile, FuncProfile, InlineCtx, TierProfile, PARAM_SITE};
use crate::vasm::{Term, VBlock, VInstr, VasmUnit};

/// Where layout weights come from (the §V-A knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightSource {
    /// Tier-1 bytecode counters only (no Jump-Start).
    TierOnly,
    /// Context-sensitive Vasm-level counters from instrumented optimized
    /// code (Jump-Start seeders).
    Accurate,
}

/// Inlining policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InlineParams {
    /// Master switch.
    pub enabled: bool,
    /// Maximum callee size in bytecode instructions.
    pub max_callee_instrs: usize,
    /// Minimum share of the dominant target at a dynamic site.
    pub min_target_share: f64,
}

impl Default for InlineParams {
    fn default() -> Self {
        Self {
            enabled: true,
            max_callee_instrs: 96,
            min_target_share: 0.95,
        }
    }
}

/// Threshold above which an operand type is considered monomorphic.
const MONO: f64 = 0.95;

/// A relocatable, site-independent translation of an inlinable callee
/// body, produced once per callee and spliced (with per-site weight
/// rescaling and branch-probability patching) at every inline site.
///
/// Everything in an inlined body except block weights and branch
/// probabilities is independent of the call site: `should_inline` rejects
/// nested inlining (`depth > 0`), so the body's instruction selection,
/// specialization and slot resolution depend only on the callee's own
/// profile. The template stores terminator targets as *template-local*
/// indices and the unscaled tier-1 block counters, so splicing is a pure
/// rebase + rescale.
#[derive(Clone, Debug)]
pub struct InlineTemplate {
    /// Translated body blocks; `Term` targets are template-local. Branch
    /// probabilities carry the TierOnly (site-independent) estimates and
    /// aggregate truth, both patched per site when spliced.
    pub blocks: Vec<VBlock>,
    /// Per-block unscaled tier-1 block counter (0 for synthetic blocks
    /// such as the side-exit funnel).
    pub raw_weights: Vec<u64>,
    /// `(template block index, bytecode instruction index)` of every
    /// conditional branch, for per-site probability patching.
    pub branch_sites: Vec<(usize, u32)>,
    /// Whether the callee had tier-1 block counters (otherwise all spliced
    /// weights are 0, matching direct translation).
    pub profiled: bool,
}

/// Cache key for one memoized inline-body template.
///
/// The template contents are actually weight-mode independent (the mode
/// only affects the per-site patching done at splice time), but keying by
/// mode keeps a shared cache trivially correct if boots with different
/// weight sources ever share one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    /// The inlined callee.
    pub callee: FuncId,
    /// Weight mode of the translation requesting the template.
    pub weights: WeightSource,
}

/// A provider of memoized [`InlineTemplate`]s, shared across translation
/// worker threads. `get_or_build` returns the cached template for `key`
/// or invokes `build` (exactly once per key for well-behaved caches) and
/// caches the result.
pub trait TemplateSource: Sync {
    /// Looks up `key`, building and inserting on a miss.
    fn get_or_build(
        &self,
        key: TemplateKey,
        build: &mut dyn FnMut() -> InlineTemplate,
    ) -> Arc<InlineTemplate>;
}

/// Lazily-initialized empty profile for callees the tier never saw —
/// avoids allocating a fresh `FuncProfile` per inline site.
fn empty_func_profile() -> &'static FuncProfile {
    static CELL: OnceLock<FuncProfile> = OnceLock::new();
    CELL.get_or_init(FuncProfile::default)
}

/// Produces the optimized translation of `func`.
///
/// `slot_resolver` maps (class, property name) to the physical slot under
/// the currently-installed property layout — translation must therefore run
/// *after* property orders are installed, exactly like HHVM's consumer
/// workflow (Fig. 3c).
pub fn translate_optimized(
    repo: &Repo,
    func: FuncId,
    tier: &TierProfile,
    ctx_profile: &CtxProfile,
    weights: WeightSource,
    inline: InlineParams,
    slot_resolver: &dyn Fn(ClassId, StrId) -> Option<u16>,
) -> VasmUnit {
    translate_optimized_with(
        repo,
        func,
        tier,
        ctx_profile,
        weights,
        inline,
        slot_resolver,
        None,
    )
}

/// [`translate_optimized`] with an optional memoized inline-body template
/// cache. With `templates: Some(..)` each inlinable callee is translated
/// once per cache lifetime and spliced per site; the output is guaranteed
/// identical to the uncached translation.
#[allow(clippy::too_many_arguments)]
pub fn translate_optimized_with(
    repo: &Repo,
    func: FuncId,
    tier: &TierProfile,
    ctx_profile: &CtxProfile,
    weights: WeightSource,
    inline: InlineParams,
    slot_resolver: &dyn Fn(ClassId, StrId) -> Option<u16>,
    templates: Option<&dyn TemplateSource>,
) -> VasmUnit {
    let _span = telemetry::span!("translate-optimized", "func" => func.index());
    let mut tr = Translator {
        repo,
        tier,
        ctx_profile,
        weights,
        inline,
        slot_resolver,
        blocks: Vec::new(),
        kind: Kind::Optimized,
        depth: 0,
        templates,
        branch_sites: Vec::new(),
    };
    let fp = tier
        .funcs
        .get(&func)
        .unwrap_or_else(|| empty_func_profile());
    let entry_weight = fp.enter_count;
    tr.translate_function(func, fp, None, 1.0, true);
    let mut unit = VasmUnit {
        func,
        blocks: tr.blocks,
    };
    // Block weights derive from the entry count flowed through the branch
    // probabilities of the chosen weight source — so TierOnly and Accurate
    // weights differ exactly where their probability estimates differ.
    propagate_est_weights(&mut unit, entry_weight);
    unit
}

/// Recomputes every block's `est_weight` by propagating `entry_weight`
/// through the `est_taken_prob` branch estimates (relaxation handles
/// loops).
fn propagate_est_weights(unit: &mut VasmUnit, entry_weight: u64) {
    let n = unit.blocks.len();
    let mut w = vec![0f64; n];
    for _ in 0..12 {
        let mut next = vec![0f64; n];
        next[0] = entry_weight as f64;
        for (i, out) in w.iter().copied().enumerate() {
            match unit.blocks[i].term {
                Term::Jump(t) => next[t] += out,
                Term::Cond { taken, fall } => {
                    let p = unit.blocks[i].est_taken_prob;
                    next[taken] += out * p;
                    next[fall] += out * (1.0 - p);
                }
                Term::Ret | Term::Exit => {}
            }
        }
        w = next;
    }
    // Fixed-point scale keeps low-traffic functions' blocks from rounding
    // to zero (which would spuriously mark them cold).
    for (i, b) in unit.blocks.iter_mut().enumerate() {
        b.est_weight = (w[i] * 1024.0).round() as u64;
    }
}

/// Produces a live (tracelet-style) translation: no guards, generic ops,
/// no inlining. `ctx_profile` supplies ground-truth branch behavior for
/// the replay (0.5 when the function was never observed).
pub fn translate_live(repo: &Repo, func: FuncId, ctx_profile: &CtxProfile) -> VasmUnit {
    translate_unoptimized(repo, func, ctx_profile, Kind::Live)
}

/// Produces a profiling translation: live code plus block counters
/// ([`VInstr::CountOp`]), bigger and slower — the tier-1 code of Fig. 3.
pub fn translate_profiling(repo: &Repo, func: FuncId, ctx_profile: &CtxProfile) -> VasmUnit {
    translate_unoptimized(repo, func, ctx_profile, Kind::Profiling)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Live,
    Profiling,
    Optimized,
}

fn translate_unoptimized(
    repo: &Repo,
    func: FuncId,
    ctx_profile: &CtxProfile,
    kind: Kind,
) -> VasmUnit {
    let mut tr = Translator {
        repo,
        tier: &EMPTY_TIER,
        ctx_profile,
        weights: WeightSource::TierOnly,
        inline: InlineParams {
            enabled: false,
            ..Default::default()
        },
        slot_resolver: &|_, _| None,
        blocks: Vec::new(),
        kind,
        depth: 0,
        templates: None,
        branch_sites: Vec::new(),
    };
    tr.translate_function(func, empty_func_profile(), None, 1.0, false);
    VasmUnit {
        func,
        blocks: tr.blocks,
    }
}

static EMPTY_TIER: once_tier::Lazy = once_tier::Lazy;

// A tiny zero-dependency lazy static for the empty tier profile.
mod once_tier {
    use std::ops::Deref;
    use std::sync::OnceLock;

    pub struct Lazy;

    static CELL: OnceLock<crate::profile::TierProfile> = OnceLock::new();

    impl Deref for Lazy {
        type Target = crate::profile::TierProfile;

        fn deref(&self) -> &Self::Target {
            CELL.get_or_init(crate::profile::TierProfile::default)
        }
    }
}

struct Translator<'a> {
    repo: &'a Repo,
    tier: &'a TierProfile,
    ctx_profile: &'a CtxProfile,
    weights: WeightSource,
    inline: InlineParams,
    slot_resolver: &'a dyn Fn(ClassId, StrId) -> Option<u16>,
    blocks: Vec<VBlock>,
    kind: Kind,
    depth: u32,
    templates: Option<&'a dyn TemplateSource>,
    /// `(vasm block, bytecode instr)` of each conditional branch emitted,
    /// recorded so the template builder knows which blocks need per-site
    /// probability patching when spliced.
    branch_sites: Vec<(usize, u32)>,
}

impl Translator<'_> {
    /// Translates one function body (outer or inlined), returning the
    /// mapping from its bytecode blocks to Vasm entry indices. `scale` is
    /// the weight multiplier for inlined bodies under TierOnly estimation.
    /// Ret terminators are kept as `Term::Ret`; the inliner rewrites them.
    fn translate_function(
        &mut self,
        func: FuncId,
        fp: &FuncProfile,
        inline_ctx: InlineCtx,
        scale: f64,
        with_guards: bool,
    ) -> Vec<usize> {
        let f = self.repo.func(func);
        let cfg = Cfg::build(f);
        let profiled = self.kind == Kind::Optimized && !fp.block_counts.is_empty();
        // First pass: translate each bytecode block into one or more Vasm
        // blocks. Record the entry index per bytecode block, plus pending
        // outer-branch fixups (targets as bytecode block ids).
        let mut entry_of: Vec<usize> = Vec::with_capacity(cfg.len());
        // (vasm block idx, bc target for taken, optional bc target for fall)
        let mut fixups: Vec<(usize, BlockId, Option<BlockId>)> = Vec::new();

        for (bi, bblock) in cfg.blocks().iter().enumerate() {
            let bc_id = BlockId(bi as u32);
            let est_w = if profiled {
                let raw = fp.block_counts.get(bi).copied().unwrap_or(0);
                (raw as f64 * scale) as u64
            } else {
                0
            };
            let entry = self.start_block(func, bc_id, est_w);
            let mut cur = entry;
            if bi == 0 && with_guards {
                self.emit_entry_guards(cur, func, fp);
            }
            entry_of.push(entry);
            let mut terminated = false;
            for at in bblock.start..bblock.end {
                let instr = f.code[at as usize];
                match instr {
                    Instr::Jmp(_) => {
                        let t = cfg.block_of(instr.jump_target().expect("jmp"));
                        self.blocks[cur].term = Term::Jump(usize::MAX);
                        fixups.push((cur, t, None));
                        terminated = true;
                    }
                    Instr::JmpZ(_) | Instr::JmpNZ(_) => {
                        let t = cfg.block_of(instr.jump_target().expect("branch"));
                        let fall = cfg.block_of(bblock.end.min(f.code.len() as u32 - 1));
                        self.blocks[cur].instrs.push(VInstr::CmpInt);
                        self.blocks[cur].term = Term::Cond {
                            taken: usize::MAX,
                            fall: usize::MAX,
                        };
                        // Branch probabilities: truth from context-sensitive
                        // measurements; estimate per the weight source.
                        let true_p = self.ctx_profile.taken_prob(inline_ctx, func, at);
                        let est_p = match self.weights {
                            WeightSource::Accurate => true_p,
                            WeightSource::TierOnly => {
                                // Inferred from block counters alone: split
                                // by target-block counts (wrong at joins).
                                if profiled {
                                    let tw = fp.block_counts.get(t.index()).copied().unwrap_or(0);
                                    let fw =
                                        fp.block_counts.get(fall.index()).copied().unwrap_or(0);
                                    if tw + fw == 0 {
                                        0.5
                                    } else {
                                        tw as f64 / (tw + fw) as f64
                                    }
                                } else {
                                    0.5
                                }
                            }
                        };
                        self.blocks[cur].true_taken_prob = true_p;
                        self.blocks[cur].est_taken_prob = est_p;
                        self.branch_sites.push((cur, at));
                        fixups.push((cur, t, Some(fall)));
                        terminated = true;
                    }
                    Instr::Ret => {
                        self.blocks[cur].instrs.push(VInstr::RetOp);
                        self.blocks[cur].term = Term::Ret;
                        terminated = true;
                    }
                    Instr::Call {
                        func: callee,
                        argc: _,
                    } => {
                        if self.should_inline(func, at, callee, fp) {
                            cur = self.inline_call(cur, func, at, callee);
                        } else {
                            self.blocks[cur].instrs.push(VInstr::CallStatic { callee });
                        }
                    }
                    Instr::CallMethod { .. } => {
                        // Monomorphic dynamic sites can be inlined behind a
                        // class guard, like HHVM's method dispatch profiles.
                        match fp.dominant_target(at) {
                            Some((target, share))
                                if share >= self.inline.min_target_share
                                    && self.should_inline(func, at, target, fp) =>
                            {
                                self.blocks[cur].instrs.push(VInstr::GuardType { local: 0 });
                                cur = self.inline_call(cur, func, at, target);
                            }
                            _ => {
                                self.blocks[cur].instrs.push(VInstr::CallDynamic {
                                    owner: func,
                                    site: at,
                                });
                            }
                        }
                    }
                    other => {
                        let lowered = self.lower_simple(func, at, other, fp);
                        self.blocks[cur].instrs.extend(lowered);
                    }
                }
            }
            if !terminated {
                // Fallthrough into the next bytecode block.
                let next = BlockId(bi as u32 + 1);
                self.blocks[cur].term = Term::Jump(usize::MAX);
                fixups.push((cur, next, None));
            }
        }

        // Patch branch targets to Vasm indices.
        for (vi, t, fall) in fixups {
            match (&mut self.blocks[vi].term, fall) {
                (Term::Jump(slot), None) => *slot = entry_of[t.index()],
                (Term::Cond { taken, fall: fslot }, Some(fb)) => {
                    *taken = entry_of[t.index()];
                    *fslot = entry_of[fb.index()];
                }
                other => unreachable!("fixup mismatch: {other:?}"),
            }
        }

        // One side-exit block per function body (guard/exception funnel).
        if self.kind == Kind::Optimized {
            self.blocks.push(VBlock {
                instrs: vec![VInstr::InterpOne, VInstr::InterpOne, VInstr::InterpOne],
                term: Term::Exit,
                est_weight: 0,
                true_weight: 0,
                true_taken_prob: 0.0,
                est_taken_prob: 0.0,
                bc_origin: None,
            });
        }
        entry_of
    }

    fn start_block(&mut self, func: FuncId, bc: BlockId, est_weight: u64) -> usize {
        self.blocks.push(VBlock {
            instrs: Vec::new(),
            term: Term::Ret, // replaced when the block is finished
            est_weight,
            true_weight: est_weight,
            true_taken_prob: 0.0,
            est_taken_prob: 0.0,
            bc_origin: Some((func, bc)),
        });
        self.blocks.len() - 1
    }

    fn emit_entry_guards(&mut self, cur: usize, _func: FuncId, fp: &FuncProfile) {
        let params: Vec<u16> = fp
            .types
            .iter()
            .filter(|((site, _), d)| *site == PARAM_SITE && d.is_monomorphic(MONO).is_some())
            .map(|((_, slot), _)| *slot as u16)
            .collect();
        let mut sorted = params;
        sorted.sort_unstable();
        for p in sorted {
            self.blocks[cur].instrs.push(VInstr::GuardType { local: p });
        }
    }

    fn should_inline(&self, caller: FuncId, at: u32, callee: FuncId, fp: &FuncProfile) -> bool {
        if !self.inline.enabled
            || self.kind != Kind::Optimized
            || callee == caller
            || self.depth > 0
        {
            return false;
        }
        let callee_f = self.repo.func(callee);
        if callee_f.code.len() > self.inline.max_callee_instrs {
            return false;
        }
        // Only inline sites that actually ran (we need some profile signal).
        fp.call_targets
            .get(&at)
            .is_some_and(|t| t.values().sum::<u64>() > 0)
    }

    /// Splices `callee`'s translation in place of a call in block `cur`.
    /// Returns the continuation block index to keep emitting into.
    fn inline_call(&mut self, cur: usize, caller: FuncId, at: u32, callee: FuncId) -> usize {
        let ctx: InlineCtx = Some((caller, at));
        // Estimated scale for TierOnly: the callee's average profile scaled
        // by how often this site calls it (tier-1 has no per-site data).
        // Borrow the callee profile out of the tier (lifetime-'a), so no
        // per-site clone is needed to translate through `&mut self`.
        let tier = self.tier;
        let callee_fp = tier
            .funcs
            .get(&callee)
            .unwrap_or_else(|| empty_func_profile());
        let site_calls: u64 = tier
            .funcs
            .get(&caller)
            .and_then(|fp| fp.call_targets.get(&at))
            .map(|t| t.values().sum())
            .unwrap_or(0);
        let scale = if callee_fp.enter_count == 0 {
            0.0
        } else {
            site_calls as f64 / callee_fp.enter_count as f64
        };

        // Splice the callee body into our block vector — from the memoized
        // template when a cache is installed, else by re-translating from
        // bytecode. Under Accurate weights the context-sensitive counters
        // give per-site truth; under TierOnly the callee average is scaled.
        let mark = self.blocks.len();
        if let Some(src) = self.templates {
            let key = TemplateKey {
                callee,
                weights: self.weights,
            };
            let tpl = src.get_or_build(key, &mut || self.build_inline_template(callee, callee_fp));
            self.splice_template(&tpl, callee, ctx, scale);
        } else {
            self.depth += 1;
            let entry_of = self.translate_function(callee, callee_fp, ctx, scale, false);
            self.depth -= 1;
            debug_assert_eq!(entry_of.first().copied().unwrap_or(mark), mark);
        }
        let callee_entry = mark;
        // Continuation block: rest of the caller's bytecode block.
        let cont = {
            let origin = self.blocks[cur].bc_origin;
            let est = self.blocks[cur].est_weight;
            self.blocks.push(VBlock {
                instrs: Vec::new(),
                term: Term::Ret,
                est_weight: est,
                true_weight: est,
                true_taken_prob: 0.0,
                est_taken_prob: 0.0,
                bc_origin: origin,
            });
            self.blocks.len() - 1
        };
        // Rewrite the callee's Ret terminators to jump to the continuation,
        // and remove the RetOp they emitted.
        for b in mark..cont {
            if self.blocks[b].term == Term::Ret {
                if let Some(VInstr::RetOp) = self.blocks[b].instrs.last() {
                    self.blocks[b].instrs.pop();
                }
                self.blocks[b].term = Term::Jump(cont);
            }
        }
        // Jump from the call block into the inlined entry.
        self.blocks[cur].term = Term::Jump(callee_entry);
        cont
    }

    /// Translates `callee` once into a relocatable template: local branch
    /// targets, unscaled weights, TierOnly probability estimates. Built
    /// exactly like a direct depth-1 inline translation with `ctx = None`
    /// and `scale = 1.0`; everything a call site changes is re-derived in
    /// [`Self::splice_template`].
    fn build_inline_template(&self, callee: FuncId, callee_fp: &FuncProfile) -> InlineTemplate {
        let mut tr = Translator {
            repo: self.repo,
            tier: self.tier,
            ctx_profile: self.ctx_profile,
            // TierOnly bakes the site-independent estimates into the
            // template; Accurate splices patch them from per-site truth.
            weights: WeightSource::TierOnly,
            inline: self.inline,
            slot_resolver: self.slot_resolver,
            blocks: Vec::new(),
            kind: Kind::Optimized,
            depth: 1,
            templates: None,
            branch_sites: Vec::new(),
        };
        tr.translate_function(callee, callee_fp, None, 1.0, false);
        let profiled = !callee_fp.block_counts.is_empty();
        // Raw counters come straight from the profile (not back through the
        // f64 scaling), so splicing computes bit-for-bit the same
        // `(raw * scale) as u64` as direct translation.
        let raw_weights: Vec<u64> = tr
            .blocks
            .iter()
            .map(|b| match b.bc_origin {
                Some((_, bc)) if profiled => {
                    callee_fp.block_counts.get(bc.index()).copied().unwrap_or(0)
                }
                _ => 0,
            })
            .collect();
        InlineTemplate {
            blocks: tr.blocks,
            raw_weights,
            branch_sites: tr.branch_sites,
            profiled,
        }
    }

    /// Appends a template's blocks to the unit: rebases terminator targets
    /// by the splice point, rescales weights for this site, and patches
    /// branch probabilities with the context-sensitive truth (which also
    /// drives the layout estimate in Accurate mode).
    fn splice_template(
        &mut self,
        tpl: &InlineTemplate,
        callee: FuncId,
        ctx: InlineCtx,
        scale: f64,
    ) {
        let mark = self.blocks.len();
        for (tb, &raw) in tpl.blocks.iter().zip(&tpl.raw_weights) {
            let mut b = tb.clone();
            b.term = match b.term {
                Term::Jump(t) => Term::Jump(t + mark),
                Term::Cond { taken, fall } => Term::Cond {
                    taken: taken + mark,
                    fall: fall + mark,
                },
                t => t,
            };
            let est = if tpl.profiled {
                (raw as f64 * scale) as u64
            } else {
                0
            };
            b.est_weight = est;
            b.true_weight = est;
            self.blocks.push(b);
        }
        for &(bi, bat) in &tpl.branch_sites {
            let true_p = self.ctx_profile.taken_prob(ctx, callee, bat);
            let b = &mut self.blocks[mark + bi];
            b.true_taken_prob = true_p;
            if self.weights == WeightSource::Accurate {
                b.est_taken_prob = true_p;
            }
        }
    }

    fn lower_simple(&self, func: FuncId, at: u32, instr: Instr, fp: &FuncProfile) -> Vec<VInstr> {
        let optimized = self.kind == Kind::Optimized;
        let mut out = Vec::with_capacity(2);
        if self.kind == Kind::Profiling {
            // Block counters land on the first instruction of each block in
            // real HHVM; per-instruction is a fine cost approximation.
            if at == 0 {
                out.push(VInstr::CountOp);
            }
        }
        match instr {
            Instr::Null | Instr::True | Instr::False | Instr::Int(_) | Instr::Double(_) => {
                out.push(VInstr::ConstSmall);
            }
            Instr::Str(_) | Instr::LitArr(_) => out.push(VInstr::ConstStr),
            Instr::Pop | Instr::Dup => out.push(VInstr::ConstSmall),
            Instr::GetL(l) => out.push(VInstr::LoadLocal(l)),
            Instr::SetL(l) => out.push(VInstr::StoreLocal(l)),
            Instr::IncL(l, _) => {
                out.push(VInstr::LoadLocal(l));
                out.push(VInstr::IntArith);
                out.push(VInstr::StoreLocal(l));
            }
            Instr::Bin(op) => {
                let spec = optimized && self.operands_monomorphic_int(func, at, fp);
                let float = optimized && self.operands_float(func, at, fp);
                out.push(match op {
                    bytecode::BinOp::Concat => VInstr::ConcatOp,
                    bytecode::BinOp::Eq
                    | bytecode::BinOp::Neq
                    | bytecode::BinOp::Lt
                    | bytecode::BinOp::Le
                    | bytecode::BinOp::Gt
                    | bytecode::BinOp::Ge => {
                        if spec {
                            VInstr::CmpInt
                        } else {
                            VInstr::GenCmp
                        }
                    }
                    _ => {
                        if spec {
                            VInstr::IntArith
                        } else if float {
                            VInstr::FloatArith
                        } else {
                            VInstr::GenBin
                        }
                    }
                });
            }
            Instr::Un(_) => out.push(if optimized {
                VInstr::IntArith
            } else {
                VInstr::GenBin
            }),
            Instr::CallBuiltin { builtin, .. } => out.push(VInstr::BuiltinOp { builtin }),
            Instr::NewObj(class) => out.push(VInstr::NewObjOp { class }),
            Instr::GetProp(name) | Instr::SetProp(name) => {
                let spec = if optimized {
                    self.prop_site_slot(func, at, name, fp)
                } else {
                    None
                };
                match spec {
                    Some((class, slot)) => {
                        out.push(VInstr::GuardType { local: 0 });
                        out.push(if matches!(instr, Instr::GetProp(_)) {
                            VInstr::LoadProp { class, slot }
                        } else {
                            VInstr::StoreProp { class, slot }
                        });
                    }
                    None => out.push(VInstr::GenProp),
                }
            }
            Instr::This => out.push(VInstr::LoadLocal(0)),
            Instr::NewVec(_) | Instr::NewDict(_) => out.push(VInstr::NewArrOp),
            Instr::Idx | Instr::SetIdx => out.push(VInstr::IdxOp),
            Instr::Jmp(_)
            | Instr::JmpZ(_)
            | Instr::JmpNZ(_)
            | Instr::Ret
            | Instr::Call { .. }
            | Instr::CallMethod { .. } => unreachable!("handled by the block loop"),
        }
        out
    }

    fn operands_monomorphic_int(&self, _func: FuncId, at: u32, fp: &FuncProfile) -> bool {
        let mono = |slot: u8| {
            fp.types
                .get(&(at, slot))
                .and_then(|d| d.is_monomorphic(MONO))
                == Some(ValueKind::Int)
        };
        mono(0) && mono(1)
    }

    fn operands_float(&self, _func: FuncId, at: u32, fp: &FuncProfile) -> bool {
        let kind = |slot: u8| {
            fp.types
                .get(&(at, slot))
                .and_then(|d| d.is_monomorphic(MONO))
        };
        matches!(
            (kind(0), kind(1)),
            (Some(ValueKind::Float), Some(_)) | (Some(_), Some(ValueKind::Float))
        )
    }

    fn prop_site_slot(
        &self,
        _func: FuncId,
        at: u32,
        name: StrId,
        fp: &FuncProfile,
    ) -> Option<(ClassId, u16)> {
        let classes = fp.prop_site_classes.get(&at)?;
        let total: u64 = classes.values().sum();
        let (&class, &count) = classes.iter().max_by_key(|(_, &c)| c)?;
        if total == 0 || (count as f64 / total as f64) < MONO {
            return None;
        }
        let slot = (self.slot_resolver)(class, name)?;
        Some((class, slot))
    }
}

/// Computes `true_weight` for each block by propagating the function entry
/// count through ground-truth branch probabilities (a few relaxation
/// passes handle loops). Used for hot/cold decisions in *accurate* mode
/// and by tests; the replay samples probabilities directly.
pub fn propagate_true_weights(unit: &mut VasmUnit, entry_count: u64) {
    let n = unit.blocks.len();
    let mut w = vec![0f64; n];
    for _ in 0..12 {
        let mut next = vec![0f64; n];
        next[0] = entry_count as f64;
        for (i, out) in w.iter().copied().enumerate() {
            match unit.blocks[i].term {
                Term::Jump(t) => next[t] += out,
                Term::Cond { taken, fall } => {
                    let p = unit.blocks[i].true_taken_prob;
                    next[taken] += out * p;
                    next[fall] += out * (1.0 - p);
                }
                Term::Ret | Term::Exit => {}
            }
        }
        w = next;
    }
    for (i, b) in unit.blocks.iter_mut().enumerate() {
        b.true_weight = w[i] as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileCollector;
    use vm::{Value, Vm};

    fn profile_src(
        src: &str,
        entry: &str,
        args: &[Value],
        runs: usize,
    ) -> (Repo, TierProfile, CtxProfile) {
        let repo = hackc::compile_unit("t.hl", src).expect("compiles");
        let f = repo.func_by_name(entry).unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..runs {
            vm.call_observed(f, args, &mut col).unwrap();
            col.end_request();
        }
        let (tier, ctx) = (col.tier, col.ctx);
        (repo, tier, ctx)
    }

    #[test]
    fn monomorphic_int_ops_get_specialized() {
        let (repo, tier, ctx) = profile_src(
            "function main($n) { $s = 0; for ($i = 0; $i < $n; $i++) { $s = $s + $i; } return $s; }",
            "main",
            &[Value::Int(50)],
            3,
        );
        let f = repo.func_by_name("main").unwrap().id;
        let unit = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams::default(),
            &|_, _| None,
        );
        let ints = unit
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, VInstr::IntArith))
            .count();
        let gens = unit
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, VInstr::GenBin))
            .count();
        assert!(ints > 0, "loop arithmetic should specialize to IntArith");
        assert_eq!(gens, 0, "no generic binops expected in a monomorphic loop");
        // Entry guards for the int parameter.
        assert!(unit.blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i, VInstr::GuardType { .. })));
    }

    #[test]
    fn live_translation_uses_generic_ops() {
        let (repo, _, ctx) = profile_src(
            "function main($n) { return $n + 1; }",
            "main",
            &[Value::Int(1)],
            1,
        );
        let f = repo.func_by_name("main").unwrap().id;
        let unit = translate_live(&repo, f, &ctx);
        assert!(unit
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, VInstr::GenBin)));
        assert!(!unit
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, VInstr::IntArith | VInstr::GuardType { .. })));
    }

    #[test]
    fn profiling_translation_is_bigger_than_live() {
        let (repo, _, ctx) = profile_src(
            "function main($n) { if ($n > 0) { return 1; } return 0; }",
            "main",
            &[Value::Int(1)],
            1,
        );
        let f = repo.func_by_name("main").unwrap().id;
        let live = translate_live(&repo, f, &ctx);
        let prof = translate_profiling(&repo, f, &ctx);
        assert!(prof.code_size() > live.code_size());
    }

    #[test]
    fn hot_callee_gets_inlined() {
        let src = r#"
            function tiny($x) { return $x + 1; }
            function main($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s = tiny($s); }
                return $s;
            }
        "#;
        let (repo, tier, ctx) = profile_src(src, "main", &[Value::Int(30)], 2);
        let f = repo.func_by_name("main").unwrap().id;
        let inlined = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams::default(),
            &|_, _| None,
        );
        let not_inlined = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams {
                enabled: false,
                ..Default::default()
            },
            &|_, _| None,
        );
        let calls = |u: &VasmUnit| {
            u.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| matches!(i, VInstr::CallStatic { .. }))
                .count()
        };
        assert_eq!(calls(&inlined), 0, "the tiny callee should be inlined");
        assert_eq!(calls(&not_inlined), 1);
        assert!(inlined.blocks.len() > not_inlined.blocks.len());
    }

    #[test]
    fn tieronly_misestimates_join_probabilities() {
        // Two callers pass constant-but-different flags to a shared helper;
        // tier-1 sees a 50/50 aggregate while per-site truth is 0/100.
        let src = r#"
            function helper($flag) {
                if ($flag) { return 1; }
                return 2;
            }
            function main($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) {
                    $s = $s + helper(true) + helper(false);
                }
                return $s;
            }
        "#;
        let (repo, tier, ctx) = profile_src(src, "main", &[Value::Int(25)], 2);
        let f = repo.func_by_name("main").unwrap().id;
        let inline = InlineParams::default();
        let est = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::TierOnly,
            inline,
            &|_, _| None,
        );
        let acc = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            inline,
            &|_, _| None,
        );
        // Find inlined conditional blocks (origin = helper).
        let helper = repo.func_by_name("helper").unwrap().id;
        let est_probs: Vec<f64> = est
            .blocks
            .iter()
            .filter(|b| {
                b.bc_origin.is_some_and(|(f2, _)| f2 == helper)
                    && matches!(b.term, Term::Cond { .. })
            })
            .map(|b| b.est_taken_prob)
            .collect();
        let acc_probs: Vec<f64> = acc
            .blocks
            .iter()
            .filter(|b| {
                b.bc_origin.is_some_and(|(f2, _)| f2 == helper)
                    && matches!(b.term, Term::Cond { .. })
            })
            .map(|b| b.est_taken_prob)
            .collect();
        assert_eq!(est_probs.len(), 2, "helper inlined twice");
        // TierOnly: both sites get the same aggregate-derived estimate.
        assert!((est_probs[0] - est_probs[1]).abs() < 1e-9);
        // Accurate: per-site truth differs sharply (one ~0, one ~1).
        assert!((acc_probs[0] - acc_probs[1]).abs() > 0.9);
        // And the accurate view matches ground truth.
        let true_probs: Vec<f64> = acc
            .blocks
            .iter()
            .filter(|b| {
                b.bc_origin.is_some_and(|(f2, _)| f2 == helper)
                    && matches!(b.term, Term::Cond { .. })
            })
            .map(|b| b.true_taken_prob)
            .collect();
        for (a, t) in acc_probs.iter().zip(true_probs.iter()) {
            assert!((a - t).abs() < 1e-9);
        }
    }

    #[test]
    fn prop_sites_specialize_to_slots() {
        let src = r#"
            class P { public $a = 1; public $b = 2; }
            function main($n) {
                $p = new P();
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s = $s + $p->a; }
                return $s;
            }
        "#;
        let (repo, tier, ctx) = profile_src(src, "main", &[Value::Int(20)], 2);
        let f = repo.func_by_name("main").unwrap().id;
        let resolver = |_c: ClassId, name: StrId| {
            // "a" -> slot 7 under some installed order.
            (repo.str(name) == "a").then_some(7u16)
        };
        let unit = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams::default(),
            &resolver,
        );
        assert!(unit
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, VInstr::LoadProp { slot: 7, .. })));
    }

    #[test]
    fn true_weight_propagation_follows_probabilities() {
        let (repo, tier, ctx) = profile_src(
            "function main($n) { if ($n > 10) { return 1; } return 2; }",
            "main",
            &[Value::Int(5)],
            10,
        );
        let f = repo.func_by_name("main").unwrap().id;
        let mut unit = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams::default(),
            &|_, _| None,
        );
        propagate_true_weights(&mut unit, 1000);
        assert_eq!(unit.blocks[0].true_weight, 1000);
        // `$n > 10` is always false for arg 5: JmpZ taken -> return-2 path.
        let hot: u64 = unit
            .blocks
            .iter()
            .skip(1)
            .map(|b| b.true_weight)
            .max()
            .unwrap();
        assert!(hot >= 990, "one arm should carry ~all weight, got {hot}");
    }

    /// Minimal well-behaved cache for tests: one build per key, shared
    /// thereafter.
    #[derive(Default)]
    struct MemoTemplates {
        map: std::sync::Mutex<std::collections::HashMap<TemplateKey, Arc<InlineTemplate>>>,
        builds: std::sync::atomic::AtomicUsize,
    }

    impl TemplateSource for MemoTemplates {
        fn get_or_build(
            &self,
            key: TemplateKey,
            build: &mut dyn FnMut() -> InlineTemplate,
        ) -> Arc<InlineTemplate> {
            let mut map = self.map.lock().unwrap();
            map.entry(key)
                .or_insert_with(|| {
                    self.builds
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Arc::new(build())
                })
                .clone()
        }
    }

    #[test]
    fn template_splicing_matches_direct_translation() {
        // Two call sites of the same helper with sharply different per-site
        // branch behavior (the hardest case: Accurate mode must patch
        // per-site probabilities into the shared template), plus a second
        // helper through a dynamic site.
        let src = r#"
            function helper($flag) {
                if ($flag) { return 1; }
                return 2;
            }
            function twice($x) { return $x + $x; }
            function main($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) {
                    $s = $s + helper(true) + helper(false) + twice($i);
                }
                return $s;
            }
        "#;
        let (repo, tier, ctx) = profile_src(src, "main", &[Value::Int(25)], 2);
        for ws in [WeightSource::TierOnly, WeightSource::Accurate] {
            let cache = MemoTemplates::default();
            let f = repo.func_by_name("main").unwrap().id;
            let direct = translate_optimized(
                &repo,
                f,
                &tier,
                &ctx,
                ws,
                InlineParams::default(),
                &|_, _| None,
            );
            let cached = translate_optimized_with(
                &repo,
                f,
                &tier,
                &ctx,
                ws,
                InlineParams::default(),
                &|_, _| None,
                Some(&cache),
            );
            assert_eq!(direct, cached, "weights={ws:?}");
            // helper is inlined at two sites but built once; twice at one.
            let builds = cache.builds.load(std::sync::atomic::Ordering::Relaxed);
            assert_eq!(builds, 2, "one template build per distinct callee");
        }
    }

    #[test]
    fn template_splicing_matches_with_slot_resolver() {
        // Property specialization inside an inlined body must come out of
        // the template identically (slot resolution is site-independent).
        let src = r#"
            class P { public $a = 1; public $b = 2; }
            function get_a($p) { return $p->a; }
            function main($n) {
                $p = new P();
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s = $s + get_a($p); }
                return $s;
            }
        "#;
        let (repo, tier, ctx) = profile_src(src, "main", &[Value::Int(20)], 2);
        let f = repo.func_by_name("main").unwrap().id;
        let resolver = |_c: ClassId, name: StrId| (repo.str(name) == "a").then_some(3u16);
        let cache = MemoTemplates::default();
        let direct = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams::default(),
            &resolver,
        );
        let cached = translate_optimized_with(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams::default(),
            &resolver,
            Some(&cache),
        );
        assert_eq!(direct, cached);
    }

    #[test]
    fn block_structure_has_valid_targets() {
        let src = r#"
            function leaf($a) { if ($a > 2) { return $a; } return $a * 2; }
            function main($n) {
                $t = 0;
                for ($i = 0; $i < $n; $i++) {
                    if ($i % 3 == 0) { $t += leaf($i); } else { $t -= 1; }
                }
                return $t;
            }
        "#;
        let (repo, tier, ctx) = profile_src(src, "main", &[Value::Int(30)], 1);
        let f = repo.func_by_name("main").unwrap().id;
        for ws in [WeightSource::TierOnly, WeightSource::Accurate] {
            let unit = translate_optimized(
                &repo,
                f,
                &tier,
                &ctx,
                ws,
                InlineParams::default(),
                &|_, _| None,
            );
            for b in &unit.blocks {
                for s in b.term.successors() {
                    assert!(s < unit.blocks.len(), "dangling successor");
                }
            }
        }
    }
}
