//! The JIT engine: per-function tier state and the layout pipeline.
//!
//! Mirrors HHVM's lifecycle (paper §II, Fig. 3): functions start
//! interpreted, hot ones get *profiling* translations, a retranslate-all
//! event compiles everything profiled to *optimized* code (in function-
//! sorting order), and functions discovered later get *live* translations
//! until the code cache fills.

use std::collections::HashMap;

use bytecode::{ClassId, FuncId, Repo, StrId};
use layout::{split_hot_cold, ExtTspParams, LayoutPlanOptions};

use crate::code_cache::{CodeCache, CodeCacheConfig, TransKind};
use crate::profile::{CtxProfile, TierProfile};
use crate::translate::{
    translate_live, translate_optimized, translate_profiling, InlineParams, WeightSource,
};
use crate::vasm::VasmUnit;

/// Engine configuration — the knobs Figs. 5/6 toggle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JitOptions {
    /// Calls before a function is promoted to a profiling translation.
    pub profile_trigger_calls: u64,
    /// Inlining policy for optimized code.
    pub inline: InlineParams,
    /// Layout weight source (§V-A knob: accurate with Jump-Start).
    pub weights: WeightSource,
    /// Apply Ext-TSP block reordering (vs. source block order).
    pub use_exttsp: bool,
    /// Apply hot/cold splitting.
    pub use_hotcold: bool,
    /// Blocks at or below this weight are cold (with `use_hotcold`).
    pub cold_threshold: u64,
    /// Blocks below this fraction of entry weight are cold.
    pub cold_fraction: f64,
    /// Global layout passes: huge-page packing of hot text and whole-cache
    /// hot/cold exile (the fleet kill switch).
    pub plan: LayoutPlanOptions,
    /// Code cache capacities.
    pub cache: CodeCacheConfig,
}

impl Default for JitOptions {
    fn default() -> Self {
        Self {
            profile_trigger_calls: 2,
            inline: InlineParams::default(),
            weights: WeightSource::TierOnly,
            use_exttsp: true,
            use_hotcold: true,
            cold_threshold: 0,
            cold_fraction: 0.005,
            plan: LayoutPlanOptions::default(),
            cache: CodeCacheConfig::default(),
        }
    }
}

/// Per-function tier state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncState {
    /// Interpreted; counts calls toward the profiling trigger.
    Interp {
        /// Calls seen so far.
        calls: u64,
    },
    /// Has a profiling translation.
    Profiling,
    /// Has an optimized translation.
    Optimized,
    /// Has a live translation (post-optimization discovery).
    Live,
}

/// Bytes of code produced, by kind — the Fig. 1 curve decomposed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileSizes {
    /// Profiling-translation bytes.
    pub profiling: u64,
    /// Optimized bytes (hot region).
    pub optimized_hot: u64,
    /// Optimized bytes (cold region).
    pub optimized_cold: u64,
    /// Live-translation bytes.
    pub live: u64,
}

impl CompileSizes {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.profiling + self.optimized_hot + self.optimized_cold + self.live
    }
}

/// A block layout computed for one optimized unit, ready to emit.
///
/// Produced by [`plan_layout`] — separated from emission so the expensive
/// Ext-TSP ordering can run on translation worker threads while the single
/// emitter thread only places bytes (the consumer boot pipeline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayoutPlan {
    /// Blocks placed in the hot region, in order.
    pub hot: Vec<usize>,
    /// Blocks split off to the cold region, in order.
    pub cold: Vec<usize>,
    /// Total bytes of the hot blocks.
    pub hot_bytes: u64,
    /// Total bytes of the cold blocks.
    pub cold_bytes: u64,
}

impl LayoutPlan {
    /// Total bytes the plan will emit.
    pub fn total_bytes(&self) -> u64 {
        self.hot_bytes + self.cold_bytes
    }
}

/// Applies the configured block layout to a translated unit: Ext-TSP (or
/// source order) then hot/cold splitting (or none). Pure function of the
/// options and the unit, so it can run on any thread.
pub fn plan_layout(options: &JitOptions, unit: &VasmUnit) -> LayoutPlan {
    plan_layout_parts(options, &unit.layout_blocks(), &unit.layout_edges())
}

/// [`plan_layout`] on pre-extracted layout inputs. The plan is a pure
/// function of `(options, blocks, edges)` — the basis for the consumer's
/// layout-plan cache, which keys plans by a fingerprint of exactly these
/// inputs.
pub fn plan_layout_parts(
    options: &JitOptions,
    blocks: &[layout::BlockNode],
    edges: &[layout::BlockEdge],
) -> LayoutPlan {
    let order: Vec<usize> = if options.use_exttsp {
        layout::exttsp_order(blocks, edges, &ExtTspParams::default())
    } else {
        (0..blocks.len()).collect()
    };
    let (hot, cold) = if options.use_hotcold {
        let weights: Vec<u64> = blocks.iter().map(|b| b.weight).collect();
        let split = split_hot_cold(
            &order,
            &weights,
            options.cold_threshold,
            options.cold_fraction,
        );
        (split.hot, split.cold)
    } else {
        (order, Vec::new())
    };
    let hot_bytes = hot.iter().map(|&b| blocks[b].size as u64).sum();
    let cold_bytes = cold.iter().map(|&b| blocks[b].size as u64).sum();
    LayoutPlan {
        hot,
        cold,
        hot_bytes,
        cold_bytes,
    }
}

/// The engine.
#[derive(Debug)]
pub struct JitEngine<'r> {
    repo: &'r Repo,
    options: JitOptions,
    /// The code cache with all emitted translations.
    pub code_cache: CodeCache,
    states: Vec<FuncState>,
    sizes: CompileSizes,
    // Whether the retranslate-all event already happened.
    optimized_phase_done: bool,
}

impl<'r> JitEngine<'r> {
    /// Creates an engine for a deployed repo.
    pub fn new(repo: &'r Repo, options: JitOptions) -> Self {
        Self {
            repo,
            options,
            code_cache: CodeCache::with_plan(options.cache, options.plan),
            states: vec![FuncState::Interp { calls: 0 }; repo.funcs().len()],
            sizes: CompileSizes::default(),
            optimized_phase_done: false,
        }
    }

    /// The engine's options.
    pub fn options(&self) -> &JitOptions {
        &self.options
    }

    /// The tier state of a function.
    pub fn state(&self, func: FuncId) -> FuncState {
        self.states[func.index()]
    }

    /// Bytes emitted so far by kind.
    pub fn sizes(&self) -> CompileSizes {
        self.sizes
    }

    /// Whether retranslate-all has happened (point "A" of Fig. 1).
    pub fn optimized_phase_done(&self) -> bool {
        self.optimized_phase_done
    }

    /// Notes a call during serving; hot functions get profiling
    /// translations before the optimize event, live translations after.
    /// Returns the bytes of code emitted (0 if none).
    pub fn note_call(&mut self, func: FuncId, truth: &CtxProfile) -> u64 {
        match self.states[func.index()] {
            FuncState::Interp { calls } => {
                let calls = calls + 1;
                self.states[func.index()] = FuncState::Interp { calls };
                if calls < self.options.profile_trigger_calls {
                    return 0;
                }
                if self.optimized_phase_done {
                    self.compile_live(func, truth)
                } else {
                    self.compile_profiling(func, truth)
                }
            }
            _ => 0,
        }
    }

    fn compile_profiling(&mut self, func: FuncId, truth: &CtxProfile) -> u64 {
        let unit = translate_profiling(self.repo, func, truth);
        let bytes = unit.code_size() as u64;
        let order: Vec<usize> = (0..unit.blocks.len()).collect();
        if self
            .code_cache
            .emit(unit, TransKind::Profiling, &order, &[])
        {
            self.states[func.index()] = FuncState::Profiling;
            self.sizes.profiling += bytes;
            bytes
        } else {
            0
        }
    }

    /// Compiles one function to live code (tracelet JIT).
    pub fn compile_live(&mut self, func: FuncId, truth: &CtxProfile) -> u64 {
        let unit = translate_live(self.repo, func, truth);
        let bytes = unit.code_size() as u64;
        let order: Vec<usize> = (0..unit.blocks.len()).collect();
        if self.code_cache.emit(unit, TransKind::Live, &order, &[]) {
            self.states[func.index()] = FuncState::Live;
            self.sizes.live += bytes;
            bytes
        } else {
            0
        }
    }

    /// The retranslate-all event: compiles every profiled function to
    /// optimized code, in `func_order` (the function-sorting output),
    /// applying the configured layout pipeline. Returns total bytes.
    ///
    /// `slot_resolver` must reflect the installed property layout.
    pub fn optimize_all(
        &mut self,
        tier: &TierProfile,
        truth: &CtxProfile,
        func_order: &[FuncId],
        slot_resolver: &dyn Fn(ClassId, StrId) -> Option<u16>,
    ) -> u64 {
        let mut total = 0;
        for &func in func_order {
            total += self.optimize_one(func, tier, truth, slot_resolver);
        }
        self.optimized_phase_done = true;
        total
    }

    /// Compiles a single function to optimized code.
    pub fn optimize_one(
        &mut self,
        func: FuncId,
        tier: &TierProfile,
        truth: &CtxProfile,
        slot_resolver: &dyn Fn(ClassId, StrId) -> Option<u16>,
    ) -> u64 {
        if !tier.funcs.contains_key(&func) {
            return 0;
        }
        let unit = translate_optimized(
            self.repo,
            func,
            tier,
            truth,
            self.options.weights,
            self.options.inline,
            slot_resolver,
        );
        self.emit_optimized(unit)
    }

    /// Lays out and emits an already-translated optimized unit (used by
    /// the Jump-Start consumer, which translates in parallel and then
    /// emits in function order).
    pub fn emit_optimized(&mut self, unit: VasmUnit) -> u64 {
        let plan = plan_layout(&self.options, &unit);
        self.emit_planned(unit, &plan)
    }

    /// Emits an optimized unit whose layout was already planned (possibly
    /// on another thread via [`plan_layout`]). Returns bytes emitted.
    pub fn emit_planned(&mut self, unit: VasmUnit, plan: &LayoutPlan) -> u64 {
        let func = unit.func;
        // Optimized code replaces any profiling translation.
        self.code_cache.evict(func);
        if self
            .code_cache
            .emit(unit, TransKind::Optimized, &plan.hot, &plan.cold)
        {
            self.states[func.index()] = FuncState::Optimized;
            self.sizes.optimized_hot += plan.hot_bytes;
            self.sizes.optimized_cold += plan.cold_bytes;
            plan.total_bytes()
        } else {
            0
        }
    }

    /// Builds the §V-B function-sorting call graph and returns the C3
    /// order over `candidates`. With `inlining_aware`, arcs come from the
    /// context-sensitive entries (Jump-Start); otherwise from tier-1
    /// call-target profiles (which never see inlined frames).
    pub fn function_order(
        &self,
        candidates: &[FuncId],
        tier: &TierProfile,
        truth: &CtxProfile,
        inlining_aware: bool,
        use_c3: bool,
    ) -> Vec<FuncId> {
        if !use_c3 {
            return candidates.to_vec();
        }
        let index_of: HashMap<FuncId, usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        let nodes: Vec<layout::FuncNode> = candidates
            .iter()
            .map(|f| {
                let weight = tier
                    .funcs
                    .get(f)
                    .map(|p| p.block_counts.iter().sum::<u64>())
                    .unwrap_or(0);
                let size = (self.repo.func(*f).code.len() as u32) * 8;
                layout::FuncNode {
                    size: size.max(16),
                    weight,
                }
            })
            .collect();
        let mut arcs: Vec<layout::CallArc> = Vec::new();
        if inlining_aware {
            for (caller, callee, w) in truth.call_arcs() {
                if let (Some(&a), Some(&b)) = (index_of.get(&caller), index_of.get(&callee)) {
                    arcs.push(layout::CallArc {
                        caller: a,
                        callee: b,
                        weight: w,
                    });
                }
            }
        } else {
            // Tier-1 view: per-site target counts, but sites whose calls
            // were inlined by the optimizer still count here (tier-1 has no
            // inlining) — while the optimized code never calls them, making
            // this graph inaccurate for tier-2 code (§V-B). We model that
            // by keeping all arcs, including the ones inlining removed.
            for (&caller, fp) in &tier.funcs {
                let Some(&a) = index_of.get(&caller) else {
                    continue;
                };
                for targets in fp.call_targets.values() {
                    for (&callee, &w) in targets {
                        if let Some(&b) = index_of.get(&callee) {
                            arcs.push(layout::CallArc {
                                caller: a,
                                callee: b,
                                weight: w,
                            });
                        }
                    }
                }
            }
        }
        layout::c3_order(&nodes, &arcs, 16384)
            .into_iter()
            .map(|i| candidates[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileCollector;
    use vm::{Value, Vm};

    const APP: &str = r#"
        function helper($x) { if ($x > 5) { return $x; } return $x * 2; }
        function main($n) {
            $s = 0;
            for ($i = 0; $i < $n; $i++) { $s += helper($i); }
            return $s;
        }
        function rarely_used($x) { return $x; }
    "#;

    fn profiled() -> (Repo, TierProfile, CtxProfile) {
        let repo = hackc::compile_unit("t.hl", APP).unwrap();
        let f = repo.func_by_name("main").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..5 {
            vm.call_observed(f, &[Value::Int(40)], &mut col).unwrap();
            col.end_request();
        }
        let (tier, ctx) = (col.tier, col.ctx);
        (repo, tier, ctx)
    }

    #[test]
    fn tier_progression_interp_profiling_optimized() {
        let (repo, tier, ctx) = profiled();
        let f = repo.func_by_name("main").unwrap().id;
        let mut engine = JitEngine::new(&repo, JitOptions::default());
        assert_eq!(engine.state(f), FuncState::Interp { calls: 0 });
        engine.note_call(f, &ctx);
        engine.note_call(f, &ctx);
        assert_eq!(engine.state(f), FuncState::Profiling);
        assert!(engine.sizes().profiling > 0);

        let order = tier.functions_by_heat();
        let bytes = engine.optimize_all(&tier, &ctx, &order, &|_, _| None);
        assert!(bytes > 0);
        assert_eq!(engine.state(f), FuncState::Optimized);
        assert!(engine.optimized_phase_done());
    }

    #[test]
    fn post_optimize_discovery_goes_live() {
        let (repo, tier, ctx) = profiled();
        let rare = repo.func_by_name("rarely_used").unwrap().id;
        let mut engine = JitEngine::new(&repo, JitOptions::default());
        let order = tier.functions_by_heat();
        engine.optimize_all(&tier, &ctx, &order, &|_, _| None);
        assert_eq!(engine.state(rare), FuncState::Interp { calls: 0 });
        engine.note_call(rare, &ctx);
        engine.note_call(rare, &ctx);
        assert_eq!(engine.state(rare), FuncState::Live);
        assert!(engine.sizes().live > 0);
    }

    #[test]
    fn hotcold_moves_bytes_to_cold_region() {
        let (repo, tier, ctx) = profiled();
        let order = tier.functions_by_heat();
        let mut with = JitEngine::new(&repo, JitOptions::default());
        with.optimize_all(&tier, &ctx, &order, &|_, _| None);
        let mut without = JitEngine::new(
            &repo,
            JitOptions {
                use_hotcold: false,
                ..Default::default()
            },
        );
        without.optimize_all(&tier, &ctx, &order, &|_, _| None);
        assert!(with.sizes().optimized_cold > 0);
        assert_eq!(without.sizes().optimized_cold, 0);
        assert_eq!(with.sizes().total(), without.sizes().total());
    }

    #[test]
    fn function_order_c3_vs_source() {
        let (repo, tier, ctx) = profiled();
        let engine = JitEngine::new(&repo, JitOptions::default());
        let cands = tier.functions_by_heat();
        let source = engine.function_order(&cands, &tier, &ctx, true, false);
        assert_eq!(source, cands);
        let c3 = engine.function_order(&cands, &tier, &ctx, true, true);
        let mut sorted = c3.clone();
        sorted.sort();
        let mut expect = cands.clone();
        expect.sort();
        assert_eq!(sorted, expect, "C3 output is a permutation of candidates");
    }

    #[test]
    fn unprofiled_functions_are_skipped_by_optimize() {
        let (repo, tier, ctx) = profiled();
        let rare = repo.func_by_name("rarely_used").unwrap().id;
        let mut engine = JitEngine::new(&repo, JitOptions::default());
        let bytes = engine.optimize_one(rare, &tier, &ctx, &|_, _| None);
        assert_eq!(bytes, 0);
        assert_eq!(engine.state(rare), FuncState::Interp { calls: 0 });
    }
}
