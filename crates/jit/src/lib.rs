//! The tiered JIT model: HHVM's compilation pipeline, reproduced at the
//! level of detail the Jump-Start paper's mechanisms need.
//!
//! HHVM's JIT (paper §II-A) has two strategies — a tracelet ("live")
//! translator driven by live VM state, and a profile-guided region compiler
//! producing *profiling* then *optimized* translations. This crate models
//! all three translation kinds over the reproduction's bytecode:
//!
//! * [`TierProfile`] / [`CtxProfile`] — the profile data categories of
//!   paper §IV-B: bytecode-block counters, call-target profiles, observed
//!   types, property-access counts (tier-1), plus the context-sensitive
//!   Vasm-level counters that seeders collect by instrumenting optimized
//!   code (§V-A/§V-B),
//! * [`translate_optimized`] and friends — lowering bytecode to the
//!   [`vasm`] block IR with profile-driven type specialization, guard
//!   insertion and depth-1 inlining,
//! * [`CodeCache`] — hot/cold/live/profiling regions with addresses,
//! * [`JitEngine`] — per-function tier state machine and code-size
//!   accounting (Fig. 1),
//! * [`Executor`] — statistical replay of compiled code through the
//!   [`uarch`] core model, producing the steady-state metrics of Figs. 5/6.

mod code_cache;
mod engine;
mod profile;
mod replay;
mod translate;
pub mod vasm;

pub use code_cache::{CodeCache, CodeCacheConfig, EmittedTranslation, Region, TransKind};
pub use engine::{
    plan_layout, plan_layout_parts, CompileSizes, FuncState, JitEngine, JitOptions, LayoutPlan,
};
pub use profile::{
    BranchCount, CtxKey, CtxProfile, FuncProfile, InlineCtx, ProfileCollector, TierProfile,
    TypeDist, PARAM_SITE,
};
pub use replay::{DataSpace, Executor, ExecutorConfig};
pub use translate::{
    propagate_true_weights, translate_live, translate_optimized, translate_optimized_with,
    translate_profiling, InlineParams, InlineTemplate, TemplateKey, TemplateSource, WeightSource,
};
