//! JIT profile data — the contents of the Jump-Start package (paper §IV-B).
//!
//! Two layers, matching the paper:
//!
//! * [`TierProfile`] — what HHVM's tier-1 *profiling translations* collect:
//!   counters at bytecode-level basic blocks, call-target profiles,
//!   observed operand types and property-access counts. Crucially, tier-1
//!   gives **block** counts, not **edge** counts, and it never sees
//!   inlined bodies (tier-1 does no inlining) — the two inaccuracies §V-A
//!   and §V-B fix.
//! * [`CtxProfile`] — what the seeders' *instrumented optimized code*
//!   collects (§V-A): exact branch outcomes, context-sensitive at inline
//!   depth 1, plus per-caller-site entry counts (the accurate call graph
//!   of §V-B).
//!
//! In the simulation both are gathered by one [`ProfileCollector`] driven
//! by the interpreter; production HHVM gathers them in two phases of the
//! seeder workflow (Fig. 3b).

use std::collections::HashMap;
use std::sync::OnceLock;

use bytecode::{BlockId, Cfg, ClassId, FuncId, Repo, StrId};
use vm::{ExecObserver, Value, ValueKind};

/// Marker "instruction index" under which parameter types are recorded.
pub const PARAM_SITE: u32 = u32::MAX;

/// Taken / not-taken counts of one conditional branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchCount {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
}

impl BranchCount {
    /// Total executions.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Probability of being taken (0.5 when never executed).
    pub fn taken_prob(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.5
        } else {
            self.taken as f64 / t as f64
        }
    }

    /// Accumulates another count.
    pub fn merge(&mut self, other: &BranchCount) {
        self.taken += other.taken;
        self.not_taken += other.not_taken;
    }
}

/// Distribution of observed [`ValueKind`]s at one profiling point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TypeDist {
    counts: [u64; ValueKind::COUNT],
}

impl TypeDist {
    /// Records one observation.
    pub fn observe(&mut self, kind: ValueKind) {
        self.counts[kind.index()] += 1;
    }

    /// Adds `count` observations at once (deserialization).
    pub fn add_raw(&mut self, kind: ValueKind, count: u64) {
        self.counts[kind.index()] += count;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The dominant kind and its share, if anything was observed.
    pub fn dominant(&self) -> Option<(ValueKind, f64)> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let (i, &c) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("array non-empty");
        Some((ValueKind::ALL[i], c as f64 / total as f64))
    }

    /// Whether a single kind covers at least `threshold` of observations.
    pub fn is_monomorphic(&self, threshold: f64) -> Option<ValueKind> {
        self.dominant()
            .and_then(|(k, share)| (share >= threshold).then_some(k))
    }

    /// Raw per-kind counts (index by [`ValueKind::index`]).
    pub fn counts(&self) -> &[u64; ValueKind::COUNT] {
        &self.counts
    }

    /// Accumulates another distribution.
    pub fn merge(&mut self, other: &TypeDist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Tier-1 profile of a single function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FuncProfile {
    /// Times the function was entered.
    pub enter_count: u64,
    /// Execution count per bytecode basic block (indexed by [`BlockId`]).
    pub block_counts: Vec<u64>,
    /// Structural hash of each block's CFG at collection time (parallel to
    /// `block_counts`, from [`Cfg::block_hashes`]). Lets a consumer detect
    /// a profile collected against a *different* build of the function and
    /// remap counters onto the current CFG (stale-profile repair).
    pub block_hashes: Vec<u64>,
    /// FNV-1a of the function's *name* at collection time (`0` for legacy
    /// profiles). Function ids renumber wholesale across builds; the name
    /// hash is the build-stable identity the repairer keys on.
    pub name_hash: u64,
    /// Opcode-only block hashes (no immediates), parallel to
    /// `block_counts`; from [`Cfg::block_opcode_hashes`]. Second rung of
    /// the stale-matching ladder. Empty for legacy profiles.
    pub block_opcode_hashes: Vec<u64>,
    /// Neighborhood block hashes, from [`Cfg::block_neighbor_hashes`].
    /// Third rung of the ladder. Empty for legacy profiles.
    pub block_neighbor_hashes: Vec<u64>,
    /// Call-site anchor hashes (`0` = block has no calls), from
    /// [`Cfg::block_anchor_hashes`]. Last rung. Empty for legacy profiles.
    pub block_anchor_hashes: Vec<u64>,
    /// Call-target profile per call-site instruction index.
    pub call_targets: HashMap<u32, HashMap<FuncId, u64>>,
    /// Observed operand/parameter types per (instruction, operand slot).
    pub types: HashMap<(u32, u8), TypeDist>,
    /// Observed receiver classes per property-access site.
    pub prop_site_classes: HashMap<u32, HashMap<ClassId, u64>>,
}

impl FuncProfile {
    /// Average bytecode instructions executed per invocation.
    pub fn avg_instrs_per_call(&self, cfg: &Cfg) -> f64 {
        if self.enter_count == 0 {
            return 0.0;
        }
        let total: u64 = self
            .block_counts
            .iter()
            .enumerate()
            .map(|(b, &c)| c * cfg.blocks()[b].len() as u64)
            .sum();
        total as f64 / self.enter_count as f64
    }

    /// The dominant callee at a call site, with its share.
    pub fn dominant_target(&self, site: u32) -> Option<(FuncId, f64)> {
        let targets = self.call_targets.get(&site)?;
        let total: u64 = targets.values().sum();
        if total == 0 {
            return None;
        }
        let (&f, &c) = targets.iter().max_by_key(|(_, &c)| c)?;
        Some((f, c as f64 / total as f64))
    }

    /// Accumulates another function profile.
    pub fn merge(&mut self, other: &FuncProfile) {
        self.enter_count += other.enter_count;
        if self.block_counts.len() < other.block_counts.len() {
            self.block_counts.resize(other.block_counts.len(), 0);
        }
        if self.block_hashes.is_empty() {
            self.block_hashes = other.block_hashes.clone();
        }
        if self.name_hash == 0 {
            self.name_hash = other.name_hash;
        }
        if self.block_opcode_hashes.is_empty() {
            self.block_opcode_hashes = other.block_opcode_hashes.clone();
        }
        if self.block_neighbor_hashes.is_empty() {
            self.block_neighbor_hashes = other.block_neighbor_hashes.clone();
        }
        if self.block_anchor_hashes.is_empty() {
            self.block_anchor_hashes = other.block_anchor_hashes.clone();
        }
        for (i, &c) in other.block_counts.iter().enumerate() {
            self.block_counts[i] += c;
        }
        for (site, targets) in &other.call_targets {
            let e = self.call_targets.entry(*site).or_default();
            for (f, c) in targets {
                *e.entry(*f).or_insert(0) += c;
            }
        }
        for (k, d) in &other.types {
            self.types.entry(*k).or_default().merge(d);
        }
        for (site, classes) in &other.prop_site_classes {
            let e = self.prop_site_classes.entry(*site).or_default();
            for (c, n) in classes {
                *e.entry(*c).or_insert(0) += n;
            }
        }
    }
}

/// The whole tier-1 profile: per-function data plus the global property
/// hotness table used by §V-C.
#[derive(Clone, Debug, Default)]
pub struct TierProfile {
    /// Per-function profiles (absent = never profiled).
    pub funcs: HashMap<FuncId, FuncProfile>,
    /// Accesses per (class, property) — drives property reordering.
    pub prop_counts: HashMap<(ClassId, StrId), u64>,
    /// Co-access counts per (class, propA, propB) within one request —
    /// drives the affinity extension (paper §V-C "future work").
    pub prop_pairs: HashMap<(ClassId, StrId, StrId), u64>,
    // Lazily computed hottest-first (func, heat) ranking. The seeder,
    // consumer and validator all ask for the heat order of the same frozen
    // profile, so the sort is paid once; any counter mutation must call
    // `mark_counters_dirty` to drop it.
    heat_cache: OnceLock<Vec<(FuncId, u64)>>,
}

// The cache is derived state: two profiles are equal iff their counters
// are, regardless of which one has ranked itself already.
impl PartialEq for TierProfile {
    fn eq(&self, other: &TierProfile) -> bool {
        self.funcs == other.funcs
            && self.prop_counts == other.prop_counts
            && self.prop_pairs == other.prop_pairs
    }
}

impl TierProfile {
    /// Functions profiled.
    pub fn profiled_count(&self) -> usize {
        self.funcs.len()
    }

    /// Total block-counter mass, a coverage signal (paper §VI-B checks
    /// coverage before publishing).
    pub fn total_counter_mass(&self) -> u64 {
        self.funcs
            .values()
            .map(|f| f.block_counts.iter().sum::<u64>())
            .sum()
    }

    /// Accumulates another profile.
    pub fn merge(&mut self, other: &TierProfile) {
        for (f, p) in &other.funcs {
            self.funcs.entry(*f).or_default().merge(p);
        }
        for (k, c) in &other.prop_counts {
            *self.prop_counts.entry(*k).or_insert(0) += c;
        }
        for (k, c) in &other.prop_pairs {
            *self.prop_pairs.entry(*k).or_insert(0) += c;
        }
        self.mark_counters_dirty();
    }

    /// Invalidates the cached heat ranking. Must be called after any
    /// direct mutation of `funcs` block counters (the collector and the
    /// stale-profile repair both mutate in place).
    pub fn mark_counters_dirty(&mut self) {
        self.heat_cache.take();
    }

    /// Hottest-first `(function, heat)` ranking, where heat is the summed
    /// block counters. Computed once and cached until counters change.
    pub fn heat_ranked(&self) -> &[(FuncId, u64)] {
        self.heat_cache.get_or_init(|| {
            let mut v: Vec<(FuncId, u64)> = self
                .funcs
                .iter()
                .map(|(&f, p)| (f, p.block_counts.iter().sum::<u64>()))
                .collect();
            v.sort_by_key(|&(f, heat)| (std::cmp::Reverse(heat), f));
            v
        })
    }

    /// Heat (summed block counters) of one function; 0 when unprofiled.
    pub fn func_heat(&self, func: FuncId) -> u64 {
        self.heat_ranked()
            .iter()
            .find(|&&(f, _)| f == func)
            .map(|&(_, h)| h)
            .unwrap_or(0)
    }

    /// Functions sorted hottest-first by weighted block counts — the order
    /// the optimizing tier compiles them in.
    pub fn functions_by_heat(&self) -> Vec<FuncId> {
        self.heat_ranked().iter().map(|&(f, _)| f).collect()
    }
}

/// An inline context: the caller and call-site a function was entered from.
pub type InlineCtx = Option<(FuncId, u32)>;

/// Key for context-sensitive branch counters: (inline context, function,
/// branch instruction index).
pub type CtxKey = (InlineCtx, FuncId, u32);

/// Context-sensitive profile from instrumented optimized code (§V-A/B).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CtxProfile {
    /// Branch outcomes keyed by inline context.
    pub branches: HashMap<CtxKey, BranchCount>,
    /// Entry counts per (context, function) — the accurate, inlining-aware
    /// call graph of §V-B.
    pub entries: HashMap<(InlineCtx, FuncId), u64>,
}

impl CtxProfile {
    /// Taken-probability for a branch under `ctx`, falling back to the
    /// aggregate over all contexts, then to 0.5.
    pub fn taken_prob(&self, ctx: InlineCtx, func: FuncId, at: u32) -> f64 {
        if let Some(b) = self.branches.get(&(ctx, func, at)) {
            if b.total() > 0 {
                return b.taken_prob();
            }
        }
        self.aggregate_branch(func, at).taken_prob()
    }

    /// Branch counts aggregated over every context.
    pub fn aggregate_branch(&self, func: FuncId, at: u32) -> BranchCount {
        let mut total = BranchCount::default();
        for ((_, f, a), c) in &self.branches {
            if *f == func && *a == at {
                total.merge(c);
            }
        }
        total
    }

    /// Call arcs (caller → callee, weight) for the function-sorting call
    /// graph. With `inlining_aware` the arcs come from context entries
    /// (what §V-B's instrumented optimized code sees).
    pub fn call_arcs(&self) -> Vec<(FuncId, FuncId, u64)> {
        let mut arcs = Vec::new();
        for (&(ctx, callee), &w) in &self.entries {
            if let Some((caller, _)) = ctx {
                arcs.push((caller, callee, w));
            }
        }
        arcs
    }

    /// Accumulates another profile.
    pub fn merge(&mut self, other: &CtxProfile) {
        for (k, c) in &other.branches {
            self.branches.entry(*k).or_default().merge(c);
        }
        for (k, c) in &other.entries {
            *self.entries.entry(*k).or_insert(0) += c;
        }
    }
}

/// Collects [`TierProfile`] and [`CtxProfile`] while the interpreter runs.
///
/// Implements [`vm::ExecObserver`]; attach with [`vm::Vm::call_observed`].
#[derive(Debug)]
// Per-function CFG signatures computed once at first observation.
struct BlockShape {
    len: usize,
    name_hash: u64,
    exact: Vec<u64>,
    opcode: Vec<u64>,
    neighbor: Vec<u64>,
    anchor: Vec<u64>,
}

pub struct ProfileCollector<'r> {
    repo: &'r Repo,
    /// Tier-1 counters.
    pub tier: TierProfile,
    /// Context-sensitive counters.
    pub ctx: CtxProfile,
    // Call stack: (func, inline ctx of this frame).
    stack: Vec<(FuncId, InlineCtx)>,
    // The call site observed immediately before the next func entry.
    pending_site: InlineCtx,
    // Block counts need sizing and signature hashes need computing exactly
    // once per function; cache them per func.
    block_shape: HashMap<FuncId, BlockShape>,
    // Properties touched in the current top-level request, for affinity.
    request_props: Vec<(ClassId, StrId)>,
}

impl<'r> ProfileCollector<'r> {
    /// Creates a collector for programs from `repo`.
    pub fn new(repo: &'r Repo) -> Self {
        Self {
            repo,
            tier: TierProfile::default(),
            ctx: CtxProfile::default(),
            stack: Vec::new(),
            pending_site: None,
            block_shape: HashMap::new(),
            request_props: Vec::new(),
        }
    }

    /// Marks a request boundary (flushes per-request affinity pairs).
    pub fn end_request(&mut self) {
        // Record unordered co-access pairs per class.
        self.request_props.sort();
        self.request_props.dedup();
        for i in 0..self.request_props.len() {
            for j in (i + 1)..self.request_props.len() {
                let (ca, pa) = self.request_props[i];
                let (cb, pb) = self.request_props[j];
                if ca == cb {
                    let key = if pa <= pb { (ca, pa, pb) } else { (ca, pb, pa) };
                    *self.tier.prop_pairs.entry(key).or_insert(0) += 1;
                }
            }
        }
        self.request_props.clear();
        self.stack.clear();
        self.pending_site = None;
    }

    fn func_profile(&mut self, func: FuncId) -> &mut FuncProfile {
        // Callers mutate counters through the returned reference.
        self.tier.mark_counters_dirty();
        let repo = self.repo;
        let shape = self.block_shape.entry(func).or_insert_with(|| {
            let f = repo.func(func);
            let cfg = Cfg::build(f);
            BlockShape {
                len: cfg.len(),
                name_hash: bytecode::fnv_str(repo.str(f.name)),
                exact: cfg.block_hashes(f, repo),
                opcode: cfg.block_opcode_hashes(f),
                neighbor: cfg.block_neighbor_hashes(f),
                anchor: cfg.block_anchor_hashes(f, repo),
            }
        });
        let p = self.tier.funcs.entry(func).or_default();
        if p.block_counts.len() < shape.len {
            p.block_counts.resize(shape.len, 0);
        }
        if p.block_hashes.is_empty() {
            p.block_hashes = shape.exact.clone();
            p.name_hash = shape.name_hash;
            p.block_opcode_hashes = shape.opcode.clone();
            p.block_neighbor_hashes = shape.neighbor.clone();
            p.block_anchor_hashes = shape.anchor.clone();
        }
        p
    }
}

impl ExecObserver for ProfileCollector<'_> {
    fn on_func_enter(&mut self, func: FuncId, args: &[Value]) {
        let ctx = self.pending_site.take();
        self.stack.push((func, ctx));
        let p = self.func_profile(func);
        p.enter_count += 1;
        for (i, a) in args.iter().enumerate().take(8) {
            p.types
                .entry((PARAM_SITE, i as u8))
                .or_default()
                .observe(ValueKind::of(a));
        }
        *self.ctx.entries.entry((ctx, func)).or_insert(0) += 1;
    }

    fn on_block(&mut self, func: FuncId, block: BlockId) {
        let p = self.func_profile(func);
        if block.index() < p.block_counts.len() {
            p.block_counts[block.index()] += 1;
        }
    }

    fn on_branch(&mut self, func: FuncId, at: u32, taken: bool) {
        let ctx = self.stack.last().and_then(|&(_, c)| c);
        let b = self.ctx.branches.entry((ctx, func, at)).or_default();
        if taken {
            b.taken += 1;
        } else {
            b.not_taken += 1;
        }
    }

    fn on_call(&mut self, caller: FuncId, at: u32, callee: FuncId) {
        let p = self.func_profile(caller);
        *p.call_targets
            .entry(at)
            .or_default()
            .entry(callee)
            .or_insert(0) += 1;
        self.pending_site = Some((caller, at));
    }

    fn on_prop_access(&mut self, func: FuncId, at: u32, class: ClassId, prop: StrId, _write: bool) {
        *self.tier.prop_counts.entry((class, prop)).or_insert(0) += 1;
        let p = self.func_profile(func);
        *p.prop_site_classes
            .entry(at)
            .or_default()
            .entry(class)
            .or_insert(0) += 1;
        self.request_props.push((class, prop));
    }

    fn on_type_observed(&mut self, func: FuncId, at: u32, slot: u8, kind: ValueKind) {
        self.func_profile(func)
            .types
            .entry((at, slot))
            .or_default()
            .observe(kind);
    }

    fn on_func_exit(&mut self, _func: FuncId) {
        self.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::Vm;

    fn sample_repo() -> Repo {
        hackc_free_repo()
    }

    // A small hand-rolled repo: f(n) loops n times calling g(n%2), and g
    // branches on its argument — so g's branch behavior is context-free
    // here but the plumbing is exercised.
    fn hackc_free_repo() -> Repo {
        use bytecode::{BinOp, FuncBuilder, Instr, RepoBuilder};
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("p.hl");
        let mut g = FuncBuilder::new("g", 1);
        let zero = g.new_label();
        g.emit(Instr::GetL(0));
        g.emit_jmp_z(zero);
        g.emit(Instr::Int(1));
        g.emit(Instr::Ret);
        g.bind(zero);
        g.emit(Instr::Int(0));
        g.emit(Instr::Ret);
        let gid = b.define_func(u, g);
        let mut f = FuncBuilder::new("f", 1);
        let i = f.new_local();
        let top = f.new_label();
        let out = f.new_label();
        f.emit(Instr::Int(0));
        f.emit(Instr::SetL(i));
        f.bind(top);
        f.emit(Instr::GetL(i));
        f.emit(Instr::GetL(0));
        f.emit(Instr::Bin(BinOp::Lt));
        f.emit_jmp_z(out);
        f.emit(Instr::GetL(i));
        f.emit(Instr::Int(2));
        f.emit(Instr::Bin(BinOp::Mod));
        f.emit_raw(Instr::Call { func: gid, argc: 1 });
        f.emit(Instr::Pop);
        f.emit(Instr::IncL(i, 1));
        f.emit(Instr::Pop);
        f.emit_jmp(top);
        f.bind(out);
        f.emit(Instr::Null);
        f.emit(Instr::Ret);
        b.define_func(u, f);
        b.finish()
    }

    #[test]
    fn collector_records_blocks_calls_types() {
        let repo = sample_repo();
        let f = repo.func_by_name("f").unwrap().id;
        let g = repo.func_by_name("g").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        vm.call_observed(f, &[Value::Int(10)], &mut col).unwrap();
        col.end_request();

        let fp = &col.tier.funcs[&f];
        assert_eq!(fp.enter_count, 1);
        assert!(fp.block_counts.iter().sum::<u64>() > 10);
        // The call site saw g ten times.
        let (site, targets) = fp.call_targets.iter().next().unwrap();
        assert_eq!(targets[&g], 10);
        let _ = site;
        // Parameter type observed as Int.
        let d = &fp.types[&(PARAM_SITE, 0)];
        assert_eq!(d.is_monomorphic(0.9), Some(ValueKind::Int));

        let gp = &col.tier.funcs[&g];
        assert_eq!(gp.enter_count, 10);
    }

    #[test]
    fn ctx_profile_tracks_call_context() {
        let repo = sample_repo();
        let f = repo.func_by_name("f").unwrap().id;
        let g = repo.func_by_name("g").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        vm.call_observed(f, &[Value::Int(8)], &mut col).unwrap();
        col.end_request();
        // g entered 8 times under context (f, site).
        let ctx_entries: Vec<_> = col
            .ctx
            .entries
            .iter()
            .filter(|((ctx, func), _)| *func == g && ctx.is_some())
            .collect();
        assert_eq!(ctx_entries.len(), 1);
        assert_eq!(*ctx_entries[0].1, 8);
        // g's branch under that ctx: taken 4 (arg 0 -> jmpz taken), not 4.
        let arcs = col.ctx.call_arcs();
        assert!(arcs
            .iter()
            .any(|&(c, callee, w)| c == f && callee == g && w == 8));
    }

    #[test]
    fn branch_probabilities_come_out_right() {
        let repo = sample_repo();
        let f = repo.func_by_name("f").unwrap().id;
        let g = repo.func_by_name("g").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        vm.call_observed(f, &[Value::Int(10)], &mut col).unwrap();
        // g's jmpz at instr 1: arg alternates 0,1,... (i%2): taken when 0.
        let p = col.ctx.taken_prob(None, g, 1);
        assert!((p - 0.5).abs() < 0.01, "alternating branch ~50%, got {p}");
        // f's loop exit branch: taken once out of 11 evaluations.
        let agg = col.ctx.aggregate_branch(f, 5);
        assert_eq!(agg.taken, 1);
        assert_eq!(agg.not_taken, 10);
    }

    #[test]
    fn merge_accumulates() {
        let repo = sample_repo();
        let f = repo.func_by_name("f").unwrap().id;
        let run = || {
            let mut vm = Vm::new(&repo);
            let mut col = ProfileCollector::new(&repo);
            vm.call_observed(f, &[Value::Int(5)], &mut col).unwrap();
            col.end_request();
            (col.tier, col.ctx)
        };
        let (mut t1, mut c1) = run();
        let (t2, c2) = run();
        let before = t1.funcs[&f].enter_count;
        t1.merge(&t2);
        c1.merge(&c2);
        assert_eq!(t1.funcs[&f].enter_count, before * 2);
        assert!(t1.total_counter_mass() > 0);
        assert_eq!(t1.profiled_count(), 2);
    }

    #[test]
    fn type_dist_dominance() {
        let mut d = TypeDist::default();
        for _ in 0..98 {
            d.observe(ValueKind::Int);
        }
        d.observe(ValueKind::Str);
        d.observe(ValueKind::Null);
        assert_eq!(d.is_monomorphic(0.95), Some(ValueKind::Int));
        assert_eq!(d.is_monomorphic(0.99), None);
        assert_eq!(d.total(), 100);
    }

    #[test]
    fn heat_cache_invalidates_after_counter_updates() {
        let repo = sample_repo();
        let f = repo.func_by_name("f").unwrap().id;
        let g = repo.func_by_name("g").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        vm.call_observed(f, &[Value::Int(50)], &mut col).unwrap();
        col.end_request();
        let mut tier = col.tier;
        // Prime the cache: f (the loop) is hotter than g.
        assert_eq!(tier.functions_by_heat(), vec![f, g]);
        let f_heat = tier.func_heat(f);
        assert!(f_heat > tier.func_heat(g));

        // Direct counter mutation + explicit dirty marker reranks.
        let gp = tier.funcs.get_mut(&g).unwrap();
        for c in gp.block_counts.iter_mut() {
            *c += 10 * f_heat;
        }
        tier.mark_counters_dirty();
        assert_eq!(tier.functions_by_heat(), vec![g, f]);
        assert!(tier.func_heat(g) > tier.func_heat(f));

        // merge() invalidates on its own: merging a copy doubles every
        // counter but keeps the order, and the cached ranking must show
        // the doubled heat rather than the stale one.
        let snapshot = tier.clone();
        let g_heat = tier.func_heat(g);
        tier.merge(&snapshot);
        assert_eq!(tier.func_heat(g), 2 * g_heat);

        // Collector mutation (observer callbacks) also invalidates.
        let mut col2 = ProfileCollector::new(&repo);
        col2.tier = tier;
        assert!(!col2.tier.functions_by_heat().is_empty());
        let mut vm2 = Vm::new(&repo);
        vm2.call_observed(f, &[Value::Int(1)], &mut col2).unwrap();
        assert_eq!(
            col2.tier.func_heat(f),
            col2.tier.funcs[&f].block_counts.iter().sum::<u64>()
        );
    }

    #[test]
    fn functions_by_heat_sorts_descending() {
        let repo = sample_repo();
        let f = repo.func_by_name("f").unwrap().id;
        let g = repo.func_by_name("g").unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        vm.call_observed(f, &[Value::Int(50)], &mut col).unwrap();
        let order = col.tier.functions_by_heat();
        // f executes far more blocks (the loop) than g.
        assert_eq!(order[0], f);
        assert_eq!(order[1], g);
    }
}
