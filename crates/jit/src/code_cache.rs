//! The code cache: address regions for emitted translations.
//!
//! HHVM's code cache has separate areas for hot optimized code, cold paths,
//! live translations and profiling code; optimized code is placed in
//! function-sorting order (paper §II-B, Fig. 1's relocation step B→C).
//! Addresses here feed the I-cache/I-TLB model, so *where* a block lands
//! directly changes the measured locality.

use std::collections::HashMap;

use bytecode::FuncId;

use crate::vasm::VasmUnit;

/// Which tier a translation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransKind {
    /// Tracelet JIT output (no profile).
    Live,
    /// Tier-1 instrumented code.
    Profiling,
    /// Tier-2 PGO output.
    Optimized,
}

/// A contiguous address region with bump allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First address of the region.
    pub base: u64,
    /// Bytes already allocated.
    pub used: u64,
    /// Total bytes available.
    pub capacity: u64,
}

impl Region {
    fn new(base: u64, capacity: u64) -> Self {
        Self {
            base,
            used: 0,
            capacity,
        }
    }

    fn alloc(&mut self, size: u64) -> Option<u64> {
        if self.used + size > self.capacity {
            return None;
        }
        let addr = self.base + self.used;
        self.used += size;
        Some(addr)
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }
}

/// Region sizes (bytes). Defaults are scaled-down versions of HHVM's
/// multi-hundred-MB cache (Fig. 1 shows ~500 MB total; our synthetic app
/// is ~20× smaller).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeCacheConfig {
    /// Hot optimized region capacity.
    pub hot_capacity: u64,
    /// Cold (split) region capacity.
    pub cold_capacity: u64,
    /// Live-translation region capacity.
    pub live_capacity: u64,
    /// Profiling-translation region capacity.
    pub profiling_capacity: u64,
}

impl Default for CodeCacheConfig {
    fn default() -> Self {
        Self {
            hot_capacity: 24 << 20,
            cold_capacity: 24 << 20,
            live_capacity: 24 << 20,
            profiling_capacity: 24 << 20,
        }
    }
}

/// One emitted (placed) translation.
#[derive(Clone, Debug)]
pub struct EmittedTranslation {
    /// The translated function.
    pub func: FuncId,
    /// Translation kind.
    pub kind: TransKind,
    /// The Vasm body (block indices match `placement`).
    pub vasm: VasmUnit,
    /// Per-Vasm-block (address, size); sizes come from the block encoding.
    pub placement: Vec<(u64, u32)>,
}

impl EmittedTranslation {
    /// Total emitted bytes.
    pub fn code_bytes(&self) -> u64 {
        self.placement.iter().map(|&(_, s)| s as u64).sum()
    }
}

/// The code cache.
#[derive(Clone, Debug)]
pub struct CodeCache {
    /// Hot optimized code.
    pub hot: Region,
    /// Cold split-off code.
    pub cold: Region,
    /// Live translations.
    pub live: Region,
    /// Profiling translations.
    pub profiling: Region,
    translations: HashMap<FuncId, EmittedTranslation>,
}

impl CodeCache {
    /// Creates an empty cache with the given capacities. Regions are
    /// placed far apart so they never share pages.
    pub fn new(config: CodeCacheConfig) -> Self {
        Self {
            hot: Region::new(0x1000_0000, config.hot_capacity),
            cold: Region::new(0x4000_0000, config.cold_capacity),
            live: Region::new(0x7000_0000, config.live_capacity),
            profiling: Region::new(0xa000_0000, config.profiling_capacity),
            translations: HashMap::new(),
        }
    }

    /// Emits a translation, placing `hot_order` blocks contiguously in the
    /// translation's main region and `cold_order` blocks in the cold
    /// region. Returns `false` (emitting nothing) if the region is full —
    /// HHVM stops JITing when the cache fills (paper §IV-A).
    ///
    /// # Panics
    ///
    /// Panics if `hot_order` + `cold_order` don't cover each block exactly
    /// once.
    pub fn emit(
        &mut self,
        unit: VasmUnit,
        kind: TransKind,
        hot_order: &[usize],
        cold_order: &[usize],
    ) -> bool {
        assert_eq!(
            hot_order.len() + cold_order.len(),
            unit.blocks.len(),
            "layout must cover all blocks"
        );
        let hot_bytes: u64 = hot_order
            .iter()
            .map(|&b| unit.blocks[b].size() as u64)
            .sum();
        let cold_bytes: u64 = cold_order
            .iter()
            .map(|&b| unit.blocks[b].size() as u64)
            .sum();
        let (main_region, cold_region) = match kind {
            TransKind::Optimized => (&mut self.hot, &mut self.cold),
            TransKind::Live => (&mut self.live, &mut self.cold),
            TransKind::Profiling => (&mut self.profiling, &mut self.cold),
        };
        if main_region.free() < hot_bytes || cold_region.free() < cold_bytes {
            return false;
        }
        let mut placement = vec![(0u64, 0u32); unit.blocks.len()];
        let mut covered = vec![false; unit.blocks.len()];
        for &b in hot_order {
            assert!(!covered[b], "block placed twice");
            covered[b] = true;
            let size = unit.blocks[b].size();
            let addr = main_region.alloc(size as u64).expect("checked free space");
            placement[b] = (addr, size);
        }
        for &b in cold_order {
            assert!(!covered[b], "block placed twice");
            covered[b] = true;
            let size = unit.blocks[b].size();
            let addr = cold_region.alloc(size as u64).expect("checked free space");
            placement[b] = (addr, size);
        }
        let func = unit.func;
        self.translations.insert(
            func,
            EmittedTranslation {
                func,
                kind,
                vasm: unit,
                placement,
            },
        );
        true
    }

    /// Looks up the current translation for a function.
    pub fn translation(&self, func: FuncId) -> Option<&EmittedTranslation> {
        self.translations.get(&func)
    }

    /// All translations.
    pub fn translations(&self) -> &HashMap<FuncId, EmittedTranslation> {
        &self.translations
    }

    /// Drops a function's translation (used when optimized code replaces
    /// profiling code).
    pub fn evict(&mut self, func: FuncId) -> Option<EmittedTranslation> {
        self.translations.remove(&func)
    }

    /// Total bytes emitted across all regions (Fig. 1's y-axis).
    pub fn total_code_bytes(&self) -> u64 {
        self.hot.used + self.cold.used + self.live.used + self.profiling.used
    }

    /// FNV-1a digest over every placed block address and size, in
    /// function-id order, plus the region fill levels. Two caches with the
    /// same digest have byte-identical layouts — the determinism oracle
    /// for the parallel boot pipeline (addresses feed the uarch model, so
    /// parallel emission may not move a single block).
    pub fn layout_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let mut funcs: Vec<&EmittedTranslation> = self.translations.values().collect();
        funcs.sort_by_key(|t| t.func);
        for t in funcs {
            mix(t.func.index() as u64);
            mix(match t.kind {
                TransKind::Live => 1,
                TransKind::Profiling => 2,
                TransKind::Optimized => 3,
            });
            for &(addr, size) in &t.placement {
                mix(addr);
                mix(size as u64);
            }
        }
        for r in [&self.hot, &self.cold, &self.live, &self.profiling] {
            mix(r.used);
        }
        h
    }
}

impl Default for CodeCache {
    fn default() -> Self {
        Self::new(CodeCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vasm::{Term, VBlock, VInstr};

    fn unit(func: u32, nblocks: usize) -> VasmUnit {
        let blocks = (0..nblocks)
            .map(|i| VBlock {
                instrs: vec![VInstr::IntArith; 4],
                term: if i + 1 < nblocks {
                    Term::Jump(i + 1)
                } else {
                    Term::Ret
                },
                est_weight: 10,
                true_weight: 10,
                true_taken_prob: 0.0,
                est_taken_prob: 0.0,
                bc_origin: None,
            })
            .collect();
        VasmUnit {
            func: FuncId::new(func),
            blocks,
        }
    }

    #[test]
    fn emit_places_blocks_contiguously_in_order() {
        let mut cc = CodeCache::default();
        let u = unit(0, 3);
        let sizes: Vec<u32> = u.blocks.iter().map(|b| b.size()).collect();
        assert!(cc.emit(u, TransKind::Optimized, &[0, 2, 1], &[]));
        let t = cc.translation(FuncId::new(0)).unwrap();
        let (a0, _) = t.placement[0];
        let (a1, _) = t.placement[1];
        let (a2, _) = t.placement[2];
        assert_eq!(a2, a0 + sizes[0] as u64);
        assert_eq!(a1, a2 + sizes[2] as u64);
    }

    #[test]
    fn cold_blocks_go_to_the_cold_region() {
        let mut cc = CodeCache::default();
        assert!(cc.emit(unit(1, 4), TransKind::Optimized, &[0, 1], &[2, 3]));
        let t = cc.translation(FuncId::new(1)).unwrap();
        assert!(t.placement[0].0 >= cc.hot.base && t.placement[0].0 < cc.cold.base);
        assert!(t.placement[2].0 >= cc.cold.base);
        assert!(cc.cold.used > 0);
    }

    #[test]
    fn regions_fill_and_reject() {
        let mut cc = CodeCache::new(CodeCacheConfig {
            hot_capacity: 40,
            cold_capacity: 40,
            live_capacity: 40,
            profiling_capacity: 40,
        });
        // Each unit(_,3) is ~3*(4*3+5) bytes > 40: rejected.
        let u = unit(2, 3);
        let order: Vec<usize> = (0..3).collect();
        assert!(!cc.emit(u, TransKind::Optimized, &order, &[]));
        assert_eq!(cc.total_code_bytes(), 0);
        assert!(cc.translation(FuncId::new(2)).is_none());
    }

    #[test]
    fn kinds_use_distinct_regions() {
        let mut cc = CodeCache::default();
        assert!(cc.emit(unit(0, 1), TransKind::Live, &[0], &[]));
        assert!(cc.emit(unit(1, 1), TransKind::Profiling, &[0], &[]));
        assert!(cc.emit(unit(2, 1), TransKind::Optimized, &[0], &[]));
        assert!(cc.live.used > 0 && cc.profiling.used > 0 && cc.hot.used > 0);
        let live_addr = cc.translation(FuncId::new(0)).unwrap().placement[0].0;
        let opt_addr = cc.translation(FuncId::new(2)).unwrap().placement[0].0;
        assert!(live_addr > opt_addr, "regions are far apart");
    }

    #[test]
    fn evict_replaces_profiling_with_optimized() {
        let mut cc = CodeCache::default();
        assert!(cc.emit(unit(5, 2), TransKind::Profiling, &[0, 1], &[]));
        assert_eq!(
            cc.translation(FuncId::new(5)).unwrap().kind,
            TransKind::Profiling
        );
        cc.evict(FuncId::new(5));
        assert!(cc.emit(unit(5, 2), TransKind::Optimized, &[0, 1], &[]));
        assert_eq!(
            cc.translation(FuncId::new(5)).unwrap().kind,
            TransKind::Optimized
        );
    }

    #[test]
    #[should_panic(expected = "cover all blocks")]
    fn incomplete_layout_panics() {
        let mut cc = CodeCache::default();
        cc.emit(unit(0, 3), TransKind::Optimized, &[0, 1], &[]);
    }
}
