//! The code cache: address regions for emitted translations.
//!
//! HHVM's code cache has separate areas for hot optimized code, cold paths,
//! live translations and profiling code; optimized code is placed in
//! function-sorting order (paper §II-B, Fig. 1's relocation step B→C).
//! Addresses here feed the I-cache/I-TLB model, so *where* a block lands
//! directly changes the measured locality.
//!
//! Optimized placement goes through the global [`layout::pagepack`] plan:
//! with `hugepage_pack`, each function's hot part is kept inside one
//! simulated 2 MiB huge-page bin; with `global_hotcold`, optimized cold
//! parts are exiled to a dedicated `optimized_cold` region on 4 KiB pages
//! and every hot→cold terminator edge gets an 8-byte bind stub emitted
//! just ahead of the function's cold part (HHVM keeps these one-shot
//! stubs in its coldest area for the same reason: each executes once and
//! is then smashed to a direct jump, so hot text stays pure hot code).
//! With [`LayoutPlanOptions::disabled`] both fall back to the historical
//! plain bump allocation, bit-for-bit.

use std::collections::HashMap;

use bytecode::FuncId;
use layout::{LayoutPlanOptions, PagePackStats, PagePacker};

use crate::vasm::VasmUnit;

/// Bytes of one hot→cold bind stub (a one-shot jump island in the cold
/// region, smashed to a direct jump after its first execution).
pub const STUB_BYTES: u64 = 8;

/// Which tier a translation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransKind {
    /// Tracelet JIT output (no profile).
    Live,
    /// Tier-1 instrumented code.
    Profiling,
    /// Tier-2 PGO output.
    Optimized,
}

/// A contiguous address region with bump allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First address of the region.
    pub base: u64,
    /// Bytes already allocated.
    pub used: u64,
    /// Total bytes available.
    pub capacity: u64,
}

impl Region {
    fn new(base: u64, capacity: u64) -> Self {
        Self {
            base,
            used: 0,
            capacity,
        }
    }

    fn alloc(&mut self, size: u64) -> Option<u64> {
        if self.used + size > self.capacity {
            return None;
        }
        let addr = self.base + self.used;
        self.used += size;
        Some(addr)
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }
}

/// Region sizes (bytes). Defaults are scaled-down versions of HHVM's
/// multi-hundred-MB cache (Fig. 1 shows ~500 MB total; our synthetic app
/// is ~20× smaller).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeCacheConfig {
    /// Hot optimized region capacity.
    pub hot_capacity: u64,
    /// Cold (split) region capacity.
    pub cold_capacity: u64,
    /// Live-translation region capacity.
    pub live_capacity: u64,
    /// Profiling-translation region capacity.
    pub profiling_capacity: u64,
}

impl Default for CodeCacheConfig {
    fn default() -> Self {
        Self {
            hot_capacity: 24 << 20,
            cold_capacity: 24 << 20,
            live_capacity: 24 << 20,
            profiling_capacity: 24 << 20,
        }
    }
}

/// One emitted (placed) translation.
#[derive(Clone, Debug)]
pub struct EmittedTranslation {
    /// The translated function.
    pub func: FuncId,
    /// Translation kind.
    pub kind: TransKind,
    /// The Vasm body (block indices match `placement`).
    pub vasm: VasmUnit,
    /// Per-Vasm-block (address, size); sizes come from the block encoding.
    pub placement: Vec<(u64, u32)>,
    /// Hot→cold bind stubs: `(from_block, to_block)` → stub address just
    /// ahead of this function's cold part. Empty unless global hot/cold
    /// splitting placed the cold part in the dedicated region.
    pub stubs: HashMap<(usize, usize), u64>,
}

impl EmittedTranslation {
    /// Total emitted bytes (stubs excluded).
    pub fn code_bytes(&self) -> u64 {
        self.placement.iter().map(|&(_, s)| s as u64).sum()
    }
}

/// The code cache.
#[derive(Clone, Debug)]
pub struct CodeCache {
    /// Hot optimized code (packed into huge-page bins when enabled).
    pub hot: Region,
    /// Cold split-off code for live/profiling tiers — and for optimized
    /// code too when global hot/cold splitting is off.
    pub cold: Region,
    /// Live translations.
    pub live: Region,
    /// Profiling translations.
    pub profiling: Region,
    /// Optimized cold parts (4 KiB pages), when global hot/cold is on.
    pub optimized_cold: Region,
    plan: LayoutPlanOptions,
    packer: PagePacker,
    stub_count: u64,
    translations: HashMap<FuncId, EmittedTranslation>,
}

impl CodeCache {
    /// Creates an empty cache with the given capacities and the global
    /// layout passes *off* (historical placement). Regions are placed far
    /// apart so they never share pages.
    pub fn new(config: CodeCacheConfig) -> Self {
        Self::with_plan(config, LayoutPlanOptions::disabled())
    }

    /// Creates an empty cache placing optimized code through the given
    /// global layout plan options.
    pub fn with_plan(config: CodeCacheConfig, plan: LayoutPlanOptions) -> Self {
        Self {
            hot: Region::new(0x1000_0000, config.hot_capacity),
            cold: Region::new(0x4000_0000, config.cold_capacity),
            live: Region::new(0x7000_0000, config.live_capacity),
            profiling: Region::new(0xa000_0000, config.profiling_capacity),
            optimized_cold: Region::new(0xd000_0000, config.cold_capacity),
            plan,
            packer: PagePacker::new(plan),
            stub_count: 0,
            translations: HashMap::new(),
        }
    }

    /// The active global layout options.
    pub fn plan_options(&self) -> LayoutPlanOptions {
        self.plan
    }

    /// The address range backed by 2 MiB pages (the packed hot text), or
    /// `None` when huge-page packing is off or nothing was placed.
    pub fn huge_text_range(&self) -> Option<(u64, u64)> {
        if self.plan.hugepage_pack && self.hot.used > 0 {
            Some((self.hot.base, self.hot.used))
        } else {
            None
        }
    }

    /// Huge-page packing telemetry for the hot region.
    pub fn pack_stats(&self) -> PagePackStats {
        self.packer.stats()
    }

    /// Huge-page bins touched by the hot region.
    pub fn huge_pages_used(&self) -> u64 {
        self.packer.huge_pages_used()
    }

    /// Mean hot bytes resident per huge page.
    pub fn hot_bytes_per_huge_page(&self) -> f64 {
        self.packer.hot_bytes_per_huge_page()
    }

    /// Total hot→cold bind-stub bytes emitted into the cold region.
    pub fn stub_bytes(&self) -> u64 {
        self.stub_count * STUB_BYTES
    }

    /// Number of hot→cold stubs emitted.
    pub fn stub_count(&self) -> u64 {
        self.stub_count
    }

    /// Emits a translation, placing `hot_order` blocks contiguously in the
    /// translation's main region and `cold_order` blocks in the cold
    /// region. Returns `false` (emitting nothing) if the region is full —
    /// HHVM stops JITing when the cache fills (paper §IV-A).
    ///
    /// # Panics
    ///
    /// Panics if `hot_order` + `cold_order` don't cover each block exactly
    /// once.
    pub fn emit(
        &mut self,
        unit: VasmUnit,
        kind: TransKind,
        hot_order: &[usize],
        cold_order: &[usize],
    ) -> bool {
        assert_eq!(
            hot_order.len() + cold_order.len(),
            unit.blocks.len(),
            "layout must cover all blocks"
        );
        if kind == TransKind::Optimized {
            return self.emit_optimized(unit, hot_order, cold_order);
        }
        let hot_bytes: u64 = hot_order
            .iter()
            .map(|&b| unit.blocks[b].size() as u64)
            .sum();
        let cold_bytes: u64 = cold_order
            .iter()
            .map(|&b| unit.blocks[b].size() as u64)
            .sum();
        let main_region = match kind {
            TransKind::Live => &mut self.live,
            TransKind::Profiling => &mut self.profiling,
            TransKind::Optimized => unreachable!("handled above"),
        };
        if main_region.free() < hot_bytes || self.cold.free() < cold_bytes {
            return false;
        }
        let mut placement = vec![(0u64, 0u32); unit.blocks.len()];
        let mut covered = vec![false; unit.blocks.len()];
        for &b in hot_order {
            assert!(!covered[b], "block placed twice");
            covered[b] = true;
            let size = unit.blocks[b].size();
            let addr = main_region.alloc(size as u64).expect("checked free space");
            placement[b] = (addr, size);
        }
        for &b in cold_order {
            assert!(!covered[b], "block placed twice");
            covered[b] = true;
            let size = unit.blocks[b].size();
            let addr = self.cold.alloc(size as u64).expect("checked free space");
            placement[b] = (addr, size);
        }
        self.insert(unit, kind, placement, HashMap::new());
        true
    }

    /// Optimized placement through the global pagepack plan. The atomic
    /// packing unit is the whole hot part, so a function's hot text never
    /// straddles a huge-page boundary (unless it exceeds one page); bind
    /// stubs ride ahead of the function's cold part in the cold region.
    fn emit_optimized(
        &mut self,
        unit: VasmUnit,
        hot_order: &[usize],
        cold_order: &[usize],
    ) -> bool {
        let hot_bytes: u64 = hot_order
            .iter()
            .map(|&b| unit.blocks[b].size() as u64)
            .sum();
        let cold_bytes: u64 = cold_order
            .iter()
            .map(|&b| unit.blocks[b].size() as u64)
            .sum();
        let mut is_cold = vec![false; unit.blocks.len()];
        for &b in cold_order {
            is_cold[b] = true;
        }
        // One stub per hot→cold terminator edge, but only when global
        // hot/cold splitting actually exiles the cold part.
        let mut stub_edges: Vec<(usize, usize)> = Vec::new();
        if self.plan.global_hotcold {
            for &b in hot_order {
                for s in unit.blocks[b].term.successors() {
                    if is_cold[s] {
                        stub_edges.push((b, s));
                    }
                }
            }
        }
        let stub_bytes = stub_edges.len() as u64 * STUB_BYTES;
        // Capacity checks before touching any state: a dry-run packer
        // tells us where the extent would end.
        let mut probe = self.packer.clone();
        let probe_off = probe.place_hot(hot_bytes);
        if probe_off + hot_bytes > self.hot.capacity {
            return false;
        }
        let cold_region = if self.plan.global_hotcold {
            &mut self.optimized_cold
        } else {
            &mut self.cold
        };
        if cold_region.free() < cold_bytes + stub_bytes {
            return false;
        }

        let hot_off = self.packer.place_hot(hot_bytes);
        let mut placement = vec![(0u64, 0u32); unit.blocks.len()];
        let mut covered = vec![false; unit.blocks.len()];
        let mut cursor = self.hot.base + hot_off;
        for &b in hot_order {
            assert!(!covered[b], "block placed twice");
            covered[b] = true;
            let size = unit.blocks[b].size();
            placement[b] = (cursor, size);
            cursor += size as u64;
        }
        // Bind stubs first, then the cold blocks: a stub shares its cache
        // line with the cold entry it jumps to, so the one bound transfer
        // that executes it also pulls in the target's first line.
        let mut stubs = HashMap::new();
        for &edge in &stub_edges {
            let addr = cold_region.alloc(STUB_BYTES).expect("checked free space");
            stubs.insert(edge, addr);
        }
        self.stub_count += stub_edges.len() as u64;
        for &b in cold_order {
            assert!(!covered[b], "block placed twice");
            covered[b] = true;
            let size = unit.blocks[b].size();
            let addr = cold_region.alloc(size as u64).expect("checked free space");
            placement[b] = (addr, size);
        }
        self.hot.used = self.packer.hot_used();
        self.insert(unit, TransKind::Optimized, placement, stubs);
        true
    }

    fn insert(
        &mut self,
        unit: VasmUnit,
        kind: TransKind,
        placement: Vec<(u64, u32)>,
        stubs: HashMap<(usize, usize), u64>,
    ) {
        let func = unit.func;
        self.translations.insert(
            func,
            EmittedTranslation {
                func,
                kind,
                vasm: unit,
                placement,
                stubs,
            },
        );
    }

    /// Looks up the current translation for a function.
    pub fn translation(&self, func: FuncId) -> Option<&EmittedTranslation> {
        self.translations.get(&func)
    }

    /// All translations.
    pub fn translations(&self) -> &HashMap<FuncId, EmittedTranslation> {
        &self.translations
    }

    /// Drops a function's translation (used when optimized code replaces
    /// profiling code).
    pub fn evict(&mut self, func: FuncId) -> Option<EmittedTranslation> {
        self.translations.remove(&func)
    }

    /// Total bytes emitted across all regions (Fig. 1's y-axis); includes
    /// stub bytes and huge-page boundary padding in the hot region.
    pub fn total_code_bytes(&self) -> u64 {
        self.hot.used
            + self.cold.used
            + self.live.used
            + self.profiling.used
            + self.optimized_cold.used
    }

    /// FNV-1a digest over every placed block address and size, in
    /// function-id order, plus stub addresses and the region fill levels.
    /// Two caches with the same digest have byte-identical layouts — the
    /// determinism oracle for the parallel boot pipeline (addresses feed
    /// the uarch model, so parallel emission may not move a single block).
    ///
    /// The `optimized_cold` fill level is mixed only when nonzero, so a
    /// cache with the global layout passes disabled digests exactly like
    /// the historical four-region cache.
    pub fn layout_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let mut funcs: Vec<&EmittedTranslation> = self.translations.values().collect();
        funcs.sort_by_key(|t| t.func);
        for t in funcs {
            mix(t.func.index() as u64);
            mix(match t.kind {
                TransKind::Live => 1,
                TransKind::Profiling => 2,
                TransKind::Optimized => 3,
            });
            for &(addr, size) in &t.placement {
                mix(addr);
                mix(size as u64);
            }
            let mut stubs: Vec<(&(usize, usize), &u64)> = t.stubs.iter().collect();
            stubs.sort();
            for (&(from, to), &addr) in stubs {
                mix(from as u64);
                mix(to as u64);
                mix(addr);
            }
        }
        for r in [&self.hot, &self.cold, &self.live, &self.profiling] {
            mix(r.used);
        }
        if self.optimized_cold.used > 0 {
            mix(self.optimized_cold.used);
        }
        h
    }
}

impl Default for CodeCache {
    fn default() -> Self {
        Self::new(CodeCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vasm::{Term, VBlock, VInstr};

    fn unit(func: u32, nblocks: usize) -> VasmUnit {
        let blocks = (0..nblocks)
            .map(|i| VBlock {
                instrs: vec![VInstr::IntArith; 4],
                term: if i + 1 < nblocks {
                    Term::Jump(i + 1)
                } else {
                    Term::Ret
                },
                est_weight: 10,
                true_weight: 10,
                true_taken_prob: 0.0,
                est_taken_prob: 0.0,
                bc_origin: None,
            })
            .collect();
        VasmUnit {
            func: FuncId::new(func),
            blocks,
        }
    }

    #[test]
    fn emit_places_blocks_contiguously_in_order() {
        let mut cc = CodeCache::default();
        let u = unit(0, 3);
        let sizes: Vec<u32> = u.blocks.iter().map(|b| b.size()).collect();
        assert!(cc.emit(u, TransKind::Optimized, &[0, 2, 1], &[]));
        let t = cc.translation(FuncId::new(0)).unwrap();
        let (a0, _) = t.placement[0];
        let (a1, _) = t.placement[1];
        let (a2, _) = t.placement[2];
        assert_eq!(a2, a0 + sizes[0] as u64);
        assert_eq!(a1, a2 + sizes[2] as u64);
    }

    #[test]
    fn cold_blocks_go_to_the_cold_region() {
        // Plan disabled: optimized cold shares the historical cold region.
        let mut cc = CodeCache::default();
        assert!(cc.emit(unit(1, 4), TransKind::Optimized, &[0, 1], &[2, 3]));
        let t = cc.translation(FuncId::new(1)).unwrap();
        assert!(t.placement[0].0 >= cc.hot.base && t.placement[0].0 < cc.cold.base);
        assert!(t.placement[2].0 >= cc.cold.base);
        assert!(cc.cold.used > 0);
        assert_eq!(cc.optimized_cold.used, 0);
        assert!(t.stubs.is_empty());
    }

    #[test]
    fn global_hotcold_exiles_cold_parts_with_stubs() {
        let mut cc = CodeCache::with_plan(CodeCacheConfig::default(), LayoutPlanOptions::default());
        // Blocks 0→1→2→3 in a chain; 2 and 3 go cold, so the 1→2 jump is
        // the only hot→cold terminator edge.
        assert!(cc.emit(unit(1, 4), TransKind::Optimized, &[0, 1], &[2, 3]));
        let t = cc.translation(FuncId::new(1)).unwrap();
        assert!(t.placement[2].0 >= cc.optimized_cold.base);
        assert_eq!(cc.cold.used, 0);
        assert!(cc.optimized_cold.used > 0);
        assert_eq!(t.stubs.len(), 1);
        let stub = t.stubs[&(1, 2)];
        // The bind stub sits in the cold region, just ahead of the cold
        // blocks it transfers to; hot text stays pure hot code.
        assert_eq!(stub, cc.optimized_cold.base);
        assert_eq!(t.placement[2].0, stub + STUB_BYTES);
        assert_eq!(cc.stub_bytes(), STUB_BYTES);
        assert_eq!(cc.hot.used, t.code_bytes_hot());
    }

    #[test]
    fn disabled_plan_digests_like_the_historical_cache() {
        // The digest of a disabled-plan cache must be a pure function of
        // the same inputs the four-region cache hashed: same emissions →
        // same digest as an independently-built disabled cache, and no
        // optimized_cold/stub contribution.
        let build = || {
            let mut cc = CodeCache::default();
            assert!(cc.emit(unit(0, 3), TransKind::Optimized, &[0, 1, 2], &[]));
            assert!(cc.emit(unit(1, 4), TransKind::Optimized, &[0, 1], &[2, 3]));
            assert!(cc.emit(unit(2, 2), TransKind::Live, &[0, 1], &[]));
            cc
        };
        let a = build();
        let b = build();
        assert_eq!(a.layout_digest(), b.layout_digest());
        assert_eq!(a.optimized_cold.used, 0);
        assert_eq!(a.stub_count(), 0);
    }

    #[test]
    fn hugepage_packing_pads_instead_of_straddling() {
        // Shrink the hot region to force a boundary interaction is not
        // possible (page size is fixed at 2 MiB), so emit enough code to
        // cross one boundary: ~41-byte units never straddle it.
        let mut cc = CodeCache::with_plan(CodeCacheConfig::default(), LayoutPlanOptions::default());
        let mut emitted = 0u64;
        let mut i = 0u32;
        while emitted <= (2 << 20) + 4096 {
            let u = unit(i, 3);
            let bytes: u64 = u.blocks.iter().map(|b| b.size() as u64).sum();
            assert!(cc.emit(u, TransKind::Optimized, &[0, 1, 2], &[]));
            emitted += bytes;
            i += 1;
        }
        let page = 2u64 << 20;
        for t in cc.translations().values() {
            let start = t.placement[0].0 - cc.hot.base;
            let end = start + t.code_bytes() - 1;
            assert_eq!(start / page, end / page, "hot part straddles a bin");
        }
        assert!(cc.huge_pages_used() >= 2);
        assert!(cc.pack_stats().pad_bytes > 0, "crossing pads at least once");
    }

    #[test]
    fn regions_fill_and_reject() {
        let mut cc = CodeCache::new(CodeCacheConfig {
            hot_capacity: 40,
            cold_capacity: 40,
            live_capacity: 40,
            profiling_capacity: 40,
        });
        // Each unit(_,3) is ~3*(4*3+5) bytes > 40: rejected.
        let u = unit(2, 3);
        let order: Vec<usize> = (0..3).collect();
        assert!(!cc.emit(u, TransKind::Optimized, &order, &[]));
        assert_eq!(cc.total_code_bytes(), 0);
        assert!(cc.translation(FuncId::new(2)).is_none());
    }

    #[test]
    fn kinds_use_distinct_regions() {
        let mut cc = CodeCache::default();
        assert!(cc.emit(unit(0, 1), TransKind::Live, &[0], &[]));
        assert!(cc.emit(unit(1, 1), TransKind::Profiling, &[0], &[]));
        assert!(cc.emit(unit(2, 1), TransKind::Optimized, &[0], &[]));
        assert!(cc.live.used > 0 && cc.profiling.used > 0 && cc.hot.used > 0);
        let live_addr = cc.translation(FuncId::new(0)).unwrap().placement[0].0;
        let opt_addr = cc.translation(FuncId::new(2)).unwrap().placement[0].0;
        assert!(live_addr > opt_addr, "regions are far apart");
    }

    #[test]
    fn evict_replaces_profiling_with_optimized() {
        let mut cc = CodeCache::default();
        assert!(cc.emit(unit(5, 2), TransKind::Profiling, &[0, 1], &[]));
        assert_eq!(
            cc.translation(FuncId::new(5)).unwrap().kind,
            TransKind::Profiling
        );
        cc.evict(FuncId::new(5));
        assert!(cc.emit(unit(5, 2), TransKind::Optimized, &[0, 1], &[]));
        assert_eq!(
            cc.translation(FuncId::new(5)).unwrap().kind,
            TransKind::Optimized
        );
    }

    #[test]
    #[should_panic(expected = "cover all blocks")]
    fn incomplete_layout_panics() {
        let mut cc = CodeCache::default();
        cc.emit(unit(0, 3), TransKind::Optimized, &[0, 1], &[]);
    }

    impl EmittedTranslation {
        fn code_bytes_hot(&self) -> u64 {
            // Test helper: bytes of blocks placed below the cold bases.
            self.placement
                .iter()
                .filter(|&&(a, _)| a < 0x4000_0000)
                .map(|&(_, s)| s as u64)
                .sum()
        }
    }
}
