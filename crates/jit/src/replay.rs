//! Statistical replay of compiled and interpreted code through the
//! micro-architecture model.
//!
//! The replay walks the *actual emitted blocks at their actual code-cache
//! addresses*, sampling branch outcomes from ground-truth probabilities.
//! Layout decisions therefore change instruction-fetch locality and branch
//! fallthrough behavior exactly the way they would on hardware, which is
//! what produces Figs. 5 and 6. Data accesses (property slots, arrays,
//! repo metadata) go through the D-side model, so property reordering and
//! metadata preload order matter too.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use bytecode::{Cfg, ClassId, FuncId, Instr, Repo, UnitId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uarch::{CoreModel, CoreParams, MissReport};

use crate::code_cache::{CodeCache, STUB_BYTES};
use crate::profile::{CtxProfile, TierProfile};
use crate::vasm::{Term, VInstr};

/// Replay tunables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutorConfig {
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// Cycles per bytecode instruction when interpreting (threaded
    /// interpreters run ~10-20× slower than optimized code).
    pub interp_cpi: u64,
    /// Extra per-instruction cycles for profiling translations (counter
    /// overhead beyond the explicit CountOps).
    pub profiling_extra_cpi: u64,
    /// Maximum call depth.
    pub max_depth: u32,
    /// Block-visit budget per top-level call (loop safety net).
    pub max_blocks_per_call: u32,
    /// Live objects kept per class (heap spread).
    pub obj_pool: u64,
    /// Fraction of branch outcomes that are data-dependent noise; the rest
    /// follow the site's deterministic periodic pattern (real loop bounds
    /// and modulo tests are predictable; gshare learns them).
    pub branch_noise: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            interp_cpi: 14,
            profiling_extra_cpi: 2,
            max_depth: 48,
            max_blocks_per_call: 100_000,
            obj_pool: 128,
            branch_noise: 0.10,
        }
    }
}

/// Synthesizes data addresses for heap objects, arrays and repo metadata.
#[derive(Debug)]
pub struct DataSpace {
    obj_counter: HashMap<ClassId, u64>,
    obj_pool: u64,
    arr_counter: u64,
    unit_meta_base: Vec<u64>,
    slot_counts: Vec<u16>,
}

const OBJ_BASE: u64 = 0x20_0000_0000;
const ARR_BASE: u64 = 0x30_0000_0000;
const META_BASE: u64 = 0x40_0000_0000;
const HTAB_BASE: u64 = 0x50_0000_0000;

impl DataSpace {
    /// Creates a data space; unit metadata is laid out in repo id order
    /// until [`DataSpace::set_unit_order`] installs a load order.
    pub fn new(repo: &Repo, obj_pool: u64) -> Self {
        let slot_counts = repo
            .classes()
            .iter()
            .map(|c| {
                repo.ancestry(c.id)
                    .iter()
                    .map(|&a| repo.class(a).props.len())
                    .sum::<usize>() as u16
            })
            .collect();
        let mut ds = Self {
            obj_counter: HashMap::new(),
            obj_pool,
            arr_counter: 0,
            unit_meta_base: vec![0; repo.units().len()],
            slot_counts,
        };
        let order: Vec<UnitId> = repo.units().iter().map(|u| u.id).collect();
        ds.set_unit_order(repo, &order);
        ds
    }

    /// Installs the order units were (pre)loaded in; metadata addresses are
    /// assigned cumulatively in that order, so a hot-first preload packs
    /// hot metadata into few pages (paper §IV-B category 1, §VII-A).
    pub fn set_unit_order(&mut self, repo: &Repo, order: &[UnitId]) {
        let mut off = 0u64;
        let mut placed = vec![false; self.unit_meta_base.len()];
        for &u in order {
            self.unit_meta_base[u.index()] = META_BASE + off;
            off += vm::unit_bytes(repo, u) as u64;
            placed[u.index()] = true;
        }
        for (i, done) in placed.iter().enumerate() {
            if !done {
                self.unit_meta_base[i] = META_BASE + off;
                off += vm::unit_bytes(repo, repo.units()[i].id) as u64;
            }
        }
    }

    fn obj_stride(&self, class: ClassId) -> u64 {
        // Line-aligned strides: real size-class allocators round objects up
        // to aligned size classes, so one object's tail never shares a
        // line with the next object's header.
        let slots = self.slot_counts.get(class.index()).copied().unwrap_or(4) as u64;
        (16 + slots * 16).next_multiple_of(64)
    }

    fn current_obj(&self, class: ClassId) -> u64 {
        let k = self.obj_counter.get(&class).copied().unwrap_or(0) % self.obj_pool;
        OBJ_BASE + class.index() as u64 * 0x10_0000 + k * self.obj_stride(class)
    }

    fn alloc_obj(&mut self, class: ClassId) -> u64 {
        *self.obj_counter.entry(class).or_insert(0) += 1;
        self.current_obj(class)
    }

    fn current_arr(&self) -> u64 {
        ARR_BASE + (self.arr_counter % 64) * 4096
    }

    fn alloc_arr(&mut self) -> u64 {
        self.arr_counter += 1;
        self.current_arr()
    }

    fn meta_addr(&self, unit: UnitId, offset: u64) -> u64 {
        self.unit_meta_base[unit.index()] + offset
    }
}

/// Replays calls through translations/interpreter and the core model.
#[derive(Debug)]
pub struct Executor<'a> {
    repo: &'a Repo,
    cache: &'a CodeCache,
    tier: &'a TierProfile,
    truth: &'a CtxProfile,
    /// The simulated core (exposed for custom latency parameters).
    pub core: CoreModel,
    rng: SmallRng,
    data: DataSpace,
    config: ExecutorConfig,
    cfg_cache: HashMap<FuncId, Rc<Cfg>>,
    branch_acc: HashMap<u64, f64>,
    /// Hot→cold bind stubs already executed and smashed to direct jumps.
    /// Code state, not a counter: survives [`Executor::reset_stats`].
    bound_stubs: HashSet<u64>,
    blocks_left: u32,
}

impl<'a> Executor<'a> {
    /// Creates an executor over emitted code.
    pub fn new(
        repo: &'a Repo,
        cache: &'a CodeCache,
        tier: &'a TierProfile,
        truth: &'a CtxProfile,
        config: ExecutorConfig,
    ) -> Self {
        let mut core = CoreModel::new(CoreParams::default());
        // Packed hot text translates through the 2 MiB I-TLB entries.
        if let Some((start, len)) = cache.huge_text_range() {
            core.map_huge_range(start, len);
        }
        Self {
            repo,
            cache,
            tier,
            truth,
            core,
            rng: SmallRng::seed_from_u64(config.seed),
            data: DataSpace::new(repo, config.obj_pool),
            config,
            cfg_cache: HashMap::new(),
            branch_acc: HashMap::new(),
            bound_stubs: HashSet::new(),
            blocks_left: 0,
        }
    }

    /// Samples a branch outcome at probability `p`: mostly the site's
    /// deterministic periodic pattern (Bresenham accumulator), with a
    /// configurable share of pure noise.
    fn sample_branch(&mut self, site: u64, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if self.rng.gen_bool(self.config.branch_noise.clamp(0.0, 1.0)) {
            return self.rng.gen_bool(p);
        }
        let acc = self.branch_acc.entry(site).or_insert(0.5);
        *acc += p;
        if *acc >= 1.0 {
            *acc -= 1.0;
            true
        } else {
            false
        }
    }

    /// Installs the unit metadata layout (see [`DataSpace::set_unit_order`]).
    pub fn set_unit_order(&mut self, order: &[UnitId]) {
        self.data.set_unit_order(self.repo, order);
    }

    /// Replays one top-level call (one request handler invocation).
    pub fn run_call(&mut self, func: FuncId) {
        self.blocks_left = self.config.max_blocks_per_call;
        self.call(func, 0);
    }

    /// Current metrics snapshot.
    pub fn report(&self) -> MissReport {
        self.core.report()
    }

    /// Clears counters, keeping cache/predictor state (drop warmup noise).
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
    }

    fn call(&mut self, func: FuncId, depth: u32) {
        if depth >= self.config.max_depth || self.blocks_left == 0 {
            return;
        }
        match self.cache.translation(func) {
            Some(t) => self.replay_translation(t, depth),
            None => self.replay_interp(func, depth),
        }
    }

    fn replay_translation(&mut self, t: &'a crate::code_cache::EmittedTranslation, depth: u32) {
        let extra_cpi = match t.kind {
            crate::code_cache::TransKind::Profiling => self.config.profiling_extra_cpi,
            _ => 0,
        };
        // Touch this function's runtime metadata (Func*, unit tables) —
        // the accesses whose locality the preload order improves (§VII-A).
        let unit = self.repo.func(t.func).unit;
        let meta = self.data.meta_addr(unit, 64 + (t.func.0 as u64 % 61) * 24);
        self.core.load(meta, 8);

        let mut bi = 0usize;
        loop {
            if self.blocks_left == 0 {
                return;
            }
            self.blocks_left -= 1;
            let block = &t.vasm.blocks[bi];
            let (addr, size) = t.placement[bi];
            self.core.fetch(addr, size);
            let n = block.instr_count();
            self.core.retire(n, block.base_cycles() + n * extra_cpi);
            for instr in &block.instrs {
                self.exec_instr(t.func, *instr, depth);
            }
            let fall_addr = addr + size as u64;
            match block.term {
                Term::Jump(t2) => {
                    // A jump to the physically-next block is free; anything
                    // else redirects the front end.
                    if t.placement[t2].0 != fall_addr {
                        self.core.branch(fall_addr - block.term_size() as u64, true);
                    }
                    // The first transfer through a hot→cold edge executes
                    // its bind stub (emitted ahead of the cold part); the
                    // stub then smashes the branch to jump directly (lazy
                    // jump binding), so steady state pays nothing extra.
                    if let Some(&stub) = t.stubs.get(&(bi, t2)) {
                        if self.bound_stubs.insert(stub) {
                            self.core.fetch(stub, STUB_BYTES as u32);
                        }
                    }
                    bi = t2;
                }
                Term::Cond { taken, fall } => {
                    let branch_site = fall_addr - block.term_size() as u64;
                    let go = self.sample_branch(branch_site, block.true_taken_prob);
                    let next = if go { taken } else { fall };
                    // Emitted polarity: the branch is "taken" iff the
                    // successor is not the physically-next block — layout
                    // turns hot edges into fallthroughs.
                    let emitted_taken = t.placement[next].0 != fall_addr;
                    self.core.branch(branch_site, emitted_taken);
                    if let Some(&stub) = t.stubs.get(&(bi, next)) {
                        if self.bound_stubs.insert(stub) {
                            self.core.fetch(stub, STUB_BYTES as u32);
                        }
                    }
                    bi = next;
                }
                Term::Ret | Term::Exit => return,
            }
        }
    }

    fn exec_instr(&mut self, owner_func: FuncId, instr: VInstr, depth: u32) {
        match instr {
            VInstr::LoadProp { class, slot } | VInstr::StoreProp { class, slot } => {
                let base = self.data.current_obj(class);
                self.core.load(base + 16 + slot as u64 * 16, 8);
            }
            VInstr::GenProp => {
                // Hash-table lookup plus the slot access.
                let h: u64 = self.rng.gen_range(0..4096);
                self.core.load(HTAB_BASE + h * 64, 8);
                let class =
                    ClassId::new(self.rng.gen_range(0..self.repo.classes().len().max(1)) as u32);
                if self.repo.classes().is_empty() {
                    return;
                }
                let slots = self.data.slot_counts[class.index()].max(1) as u64;
                let base = self.data.current_obj(class);
                let slot = self.rng.gen_range(0..slots);
                self.core.load(base + 16 + slot * 16, 8);
            }
            VInstr::NewObjOp { class } => {
                // Request allocators reuse recently-freed, cache-warm
                // memory; only the header line is charged here. Coldness
                // comes from pool rotation (older objects get evicted).
                let base = self.data.alloc_obj(class);
                self.core.store(base, 64);
            }
            VInstr::NewArrOp => {
                let base = self.data.alloc_arr();
                self.core.store(base, 64);
            }
            VInstr::IdxOp => {
                let base = self.data.current_arr();
                let idx: u64 = self.rng.gen_range(0..64);
                self.core.load(base + idx * 16, 8);
            }
            VInstr::CallStatic { callee } => self.call(callee, depth + 1),
            VInstr::CallDynamic { owner, site } => {
                let _ = owner_func;
                if let Some(target) = self.sample_target(owner, site) {
                    self.core.load(HTAB_BASE + 0x100_0000 + site as u64 * 64, 8);
                    self.call(target, depth + 1);
                }
            }
            _ => {}
        }
    }

    /// Executes a single Vasm instruction's data effects (testing hook).
    pub fn debug_exec(&mut self, instr: VInstr) {
        self.exec_instr(FuncId::new(0), instr, 0);
    }

    fn sample_target(&mut self, owner: FuncId, site: u32) -> Option<FuncId> {
        let targets = self.tier.funcs.get(&owner)?.call_targets.get(&site)?;
        let total: u64 = targets.values().sum();
        if total == 0 {
            return None;
        }
        let mut pick = self.rng.gen_range(0..total);
        for (&f, &w) in targets {
            if pick < w {
                return Some(f);
            }
            pick -= w;
        }
        None
    }

    fn cfg_of(&mut self, func: FuncId) -> Rc<Cfg> {
        if let Some(c) = self.cfg_cache.get(&func) {
            return c.clone();
        }
        let c = Rc::new(Cfg::build(self.repo.func(func)));
        self.cfg_cache.insert(func, c.clone());
        c
    }

    /// Replays an un-translated function at interpreter cost, walking its
    /// bytecode CFG with ground-truth branch probabilities.
    fn replay_interp(&mut self, func: FuncId, depth: u32) {
        let cfg = self.cfg_of(func);
        let f = self.repo.func(func);
        let unit = f.unit;
        let mut b = 0usize;
        loop {
            if self.blocks_left == 0 {
                return;
            }
            self.blocks_left -= 1;
            let block = cfg.block(bytecode::BlockId(b as u32));
            let n = block.len() as u64;
            self.core.retire(n, n * self.config.interp_cpi);
            // Touch the bytecode metadata for this block.
            self.core
                .load(self.data.meta_addr(unit, 256 + block.start as u64 * 4), 16);
            let mut next: Option<usize> = None;
            for at in block.start..block.end {
                match f.code[at as usize] {
                    Instr::Call { func: callee, .. } => self.call(callee, depth + 1),
                    Instr::CallMethod { .. } => {
                        if let Some(t) = self.sample_target(func, at) {
                            self.call(t, depth + 1);
                        }
                    }
                    Instr::GetProp(_) | Instr::SetProp(_) => {
                        // Receiver class from the site profile when known.
                        let class = self
                            .tier
                            .funcs
                            .get(&func)
                            .and_then(|fp| fp.prop_site_classes.get(&at))
                            .and_then(|m| m.iter().max_by_key(|(_, &c)| c))
                            .map(|(&c, _)| c);
                        if let Some(class) = class {
                            let slots = self.data.slot_counts[class.index()].max(1) as u64;
                            let base = self.data.current_obj(class);
                            let slot = self.rng.gen_range(0..slots);
                            self.core.load(base + 16 + slot * 16, 8);
                        }
                    }
                    Instr::NewObj(class) => {
                        let base = self.data.alloc_obj(class);
                        self.core.store(base, 64);
                    }
                    Instr::Idx | Instr::SetIdx => {
                        let base = self.data.current_arr();
                        self.core.load(base, 8);
                    }
                    Instr::NewVec(_) | Instr::NewDict(_) => {
                        let base = self.data.alloc_arr();
                        self.core.store(base, 64);
                    }
                    Instr::JmpZ(target) | Instr::JmpNZ(target) => {
                        let p = self.truth.taken_prob(None, func, at);
                        let site = self.data.meta_addr(unit, at as u64 * 4);
                        let go = self.sample_branch(site, p);
                        self.core.branch(site, go);
                        next = Some(if go {
                            cfg.block_of(target).index()
                        } else {
                            b + 1
                        });
                    }
                    Instr::Jmp(target) => next = Some(cfg.block_of(target).index()),
                    Instr::Ret => return,
                    _ => {}
                }
            }
            b = match next {
                Some(n2) => n2,
                None => b + 1,
            };
            if b >= cfg.len() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_cache::{CodeCacheConfig, TransKind};
    use crate::profile::ProfileCollector;
    use crate::translate::{translate_optimized, InlineParams, WeightSource};
    use vm::{Value, Vm};

    fn setup(
        src: &str,
        entry: &str,
        arg: i64,
        runs: usize,
    ) -> (Repo, TierProfile, CtxProfile, FuncId) {
        let repo = hackc::compile_unit("t.hl", src).expect("compiles");
        let f = repo.func_by_name(entry).unwrap().id;
        let mut vm = Vm::new(&repo);
        let mut col = ProfileCollector::new(&repo);
        for _ in 0..runs {
            vm.call_observed(f, &[Value::Int(arg)], &mut col).unwrap();
            col.end_request();
        }
        let (tier, ctx) = (col.tier, col.ctx);
        (repo, tier, ctx, f)
    }

    const LOOPY: &str = r#"
        function main($n) {
            $s = 0;
            for ($i = 0; $i < $n; $i++) {
                if ($i % 7 == 0) { $s += 3; } else { $s += 1; }
            }
            return $s;
        }
    "#;

    #[test]
    fn optimized_replay_is_much_faster_than_interp() {
        let (repo, tier, ctx, f) = setup(LOOPY, "main", 200, 3);
        let unit = translate_optimized(
            &repo,
            f,
            &tier,
            &ctx,
            WeightSource::Accurate,
            InlineParams::default(),
            &|_, _| None,
        );
        let order: Vec<usize> = (0..unit.blocks.len()).collect();
        let mut cache = CodeCache::new(CodeCacheConfig::default());
        assert!(cache.emit(unit, TransKind::Optimized, &order, &[]));

        let empty_cache = CodeCache::new(CodeCacheConfig::default());
        let mut interp = Executor::new(&repo, &empty_cache, &tier, &ctx, ExecutorConfig::default());
        let mut opt = Executor::new(&repo, &cache, &tier, &ctx, ExecutorConfig::default());
        for _ in 0..20 {
            interp.run_call(f);
            opt.run_call(f);
        }
        let (ri, ro) = (interp.report(), opt.report());
        assert!(ri.instructions > 0 && ro.instructions > 0);
        let cpi_i = ri.cycles as f64 / ri.instructions as f64;
        let cpi_o = ro.cycles as f64 / ro.instructions as f64;
        assert!(
            cpi_i > 2.0 * cpi_o,
            "interp CPI {cpi_i:.1} should dwarf optimized CPI {cpi_o:.1}"
        );
    }

    #[test]
    fn replay_is_deterministic_given_a_seed() {
        let (repo, tier, ctx, f) = setup(LOOPY, "main", 100, 2);
        let cache = CodeCache::default();
        let run = || {
            let mut ex = Executor::new(&repo, &cache, &tier, &ctx, ExecutorConfig::default());
            for _ in 0..5 {
                ex.run_call(f);
            }
            ex.report()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.branch, b.branch);
    }

    #[test]
    fn branch_counts_track_loop_iterations() {
        let (repo, tier, ctx, f) = setup(LOOPY, "main", 500, 2);
        let cache = CodeCache::default();
        let mut ex = Executor::new(&repo, &cache, &tier, &ctx, ExecutorConfig::default());
        // Loop length is sampled geometrically per call (mean ~500); use
        // enough calls for the mean to concentrate.
        for _ in 0..30 {
            ex.run_call(f);
        }
        let r = ex.report();
        // ~500 iterations x 2 conditional branches x 30 calls, within 3x.
        assert!(
            r.branch.accesses >= 10_000,
            "got {} branches",
            r.branch.accesses
        );
    }

    #[test]
    fn calls_recurse_into_callees() {
        let src = r#"
            function helper($x) { return $x * 2; }
            function main($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) { $s += helper($i); }
                return $s;
            }
        "#;
        let (repo, tier, ctx, f) = setup(src, "main", 50, 2);
        let cache = CodeCache::default();
        let mut ex = Executor::new(&repo, &cache, &tier, &ctx, ExecutorConfig::default());
        ex.run_call(f);
        // helper's unit metadata was touched (same unit here) and the
        // instruction count reflects both bodies.
        assert!(ex.report().instructions > 300);
    }

    #[test]
    fn hot_slot_layout_reduces_dcache_misses() {
        // Direct DataSpace-level check: accessing slot 0 vs slot 30 of a
        // wide class across a pool of objects.
        let src = r#"
            class Wide {
                public $p0 = 0;  public $p1 = 0;  public $p2 = 0;  public $p3 = 0;
                public $p4 = 0;  public $p5 = 0;  public $p6 = 0;  public $p7 = 0;
                public $p8 = 0;  public $p9 = 0;  public $p10 = 0; public $p11 = 0;
                public $p12 = 0; public $p13 = 0; public $p14 = 0; public $p15 = 0;
            }
            function main($n) { $w = new Wide(); return $n; }
        "#;
        let (repo, tier, ctx, _f) = setup(src, "main", 1, 1);
        let class = repo.class_by_name("Wide").unwrap().id;
        let cache = CodeCache::default();
        let run = |slot: u16| {
            let mut ex = Executor::new(&repo, &cache, &tier, &ctx, ExecutorConfig::default());
            for _ in 0..4000 {
                ex.exec_instr(FuncId::new(0), VInstr::NewObjOp { class }, 0);
                ex.exec_instr(FuncId::new(0), VInstr::LoadProp { class, slot }, 0);
            }
            ex.report().dcache.misses
        };
        let near = run(0);
        let far = run(15);
        assert!(
            near <= far,
            "slot 0 misses {near} should be <= slot 15 misses {far}"
        );
    }
}
