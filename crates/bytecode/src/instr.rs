//! The untyped, stack-based instruction set.
//!
//! Like HHBC, the bytecode is *untyped*: `Bin(Add)` must handle ints,
//! floats and (for `Concat`) strings at runtime. The profile-guided JIT's
//! job (paper §II-A) is to observe the types that actually flow through each
//! instruction and specialize.

use crate::ids::{ClassId, FuncId, LitArrId, Local, StrId};

/// Binary operators for [`Instr::Bin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Numeric addition (int overflow wraps to float, like PHP).
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Numeric division; produces a float unless evenly divisible ints.
    Div,
    /// Integer modulus.
    Mod,
    /// String concatenation (coerces scalars to strings).
    Concat,
    /// Loose equality.
    Eq,
    /// Loose inequality.
    Neq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Bitwise and (ints only).
    BitAnd,
    /// Bitwise or (ints only).
    BitOr,
    /// Bitwise xor (ints only).
    BitXor,
    /// Arithmetic shift left (ints only).
    Shl,
    /// Arithmetic shift right (ints only).
    Shr,
}

impl BinOp {
    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Concat => "concat",
            BinOp::Eq => "eq",
            BinOp::Neq => "neq",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::BitAnd => "bitand",
            BinOp::BitOr => "bitor",
            BinOp::BitXor => "bitxor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Whether this operator produces a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators for [`Instr::Un`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation (truthiness-based).
    Not,
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (ints only).
    BitNot,
}

impl UnOp {
    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::BitNot => "bitnot",
        }
    }
}

/// Built-in functions provided by the runtime (HHVM "extensions").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `print(x)` — append the string form of `x` to request output; returns null.
    Print,
    /// `strlen(s)` — length of a string in bytes.
    Strlen,
    /// `count(a)` — number of elements in a vec/dict.
    Count,
    /// `keys(d)` — vec of keys of a dict (or indices of a vec).
    Keys,
    /// `abs(n)` — absolute value.
    Abs,
    /// `min(a, b)` / `max(a, b)`.
    Min,
    /// See [`Builtin::Min`].
    Max,
    /// `to_str(x)` — string coercion.
    ToStr,
    /// `to_int(x)` — int coercion.
    ToInt,
    /// `is_int(x)` / `is_str(x)` / `is_null(x)` type predicates.
    IsInt,
    /// See [`Builtin::IsInt`].
    IsStr,
    /// See [`Builtin::IsInt`].
    IsNull,
    /// `substr(s, start, len)`.
    Substr,
    /// `push(v, x)` — append to a vec, returns the vec.
    Push,
    /// `idx_or(c, k, d)` — indexing with a default instead of an error.
    IdxOr,
    /// `class_name(o)` — name of an object's class.
    ClassName,
    /// `hash(x)` — deterministic integer hash of a scalar.
    HashVal,
}

impl Builtin {
    /// All builtins, for table construction.
    pub const ALL: [Builtin; 17] = [
        Builtin::Print,
        Builtin::Strlen,
        Builtin::Count,
        Builtin::Keys,
        Builtin::Abs,
        Builtin::Min,
        Builtin::Max,
        Builtin::ToStr,
        Builtin::ToInt,
        Builtin::IsInt,
        Builtin::IsStr,
        Builtin::IsNull,
        Builtin::Substr,
        Builtin::Push,
        Builtin::IdxOr,
        Builtin::ClassName,
        Builtin::HashVal,
    ];

    /// Source-level name of the builtin.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Print => "print",
            Builtin::Strlen => "strlen",
            Builtin::Count => "count",
            Builtin::Keys => "keys",
            Builtin::Abs => "abs",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::ToStr => "to_str",
            Builtin::ToInt => "to_int",
            Builtin::IsInt => "is_int",
            Builtin::IsStr => "is_str",
            Builtin::IsNull => "is_null",
            Builtin::Substr => "substr",
            Builtin::Push => "push",
            Builtin::IdxOr => "idx_or",
            Builtin::ClassName => "class_name",
            Builtin::HashVal => "hash",
        }
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Print
            | Builtin::Strlen
            | Builtin::Count
            | Builtin::Keys
            | Builtin::Abs
            | Builtin::ToStr
            | Builtin::ToInt
            | Builtin::IsInt
            | Builtin::IsStr
            | Builtin::IsNull
            | Builtin::ClassName
            | Builtin::HashVal => 1,
            Builtin::Min | Builtin::Max | Builtin::Push => 2,
            Builtin::Substr | Builtin::IdxOr => 3,
        }
    }

    /// Looks a builtin up by its source-level name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Builtin::ALL.iter().copied().find(|b| b.name() == name)
    }
}

/// One bytecode instruction.
///
/// Jump targets are absolute instruction indices within the owning
/// function's code vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// Push null.
    Null,
    /// Push boolean true.
    True,
    /// Push boolean false.
    False,
    /// Push an integer constant.
    Int(i64),
    /// Push a float constant.
    Double(f64),
    /// Push an interned string.
    Str(StrId),
    /// Push a literal (static) array from the repo.
    LitArr(LitArrId),

    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,

    /// Push local `n`.
    GetL(Local),
    /// Pop into local `n`.
    SetL(Local),
    /// Push local `n` and increment/decrement the local by the immediate
    /// (fused `$i++` pattern; pushes the *old* value).
    IncL(Local, i32),

    /// Pop two operands, apply a binary operator, push the result.
    Bin(BinOp),
    /// Pop one operand, apply a unary operator, push the result.
    Un(UnOp),

    /// Unconditional jump.
    Jmp(u32),
    /// Pop; jump if falsy.
    JmpZ(u32),
    /// Pop; jump if truthy.
    JmpNZ(u32),

    /// Call a statically-resolved function; `argc` arguments are on the
    /// stack (last argument on top). Pushes the return value.
    Call { func: FuncId, argc: u8 },
    /// Call a method by name on a receiver; stack is `recv, args...`.
    /// Resolution is dynamic, per the receiver's class (paper: dispatch
    /// sites profiled via call-target profiles, §IV-B category 2).
    CallMethod { name: StrId, argc: u8 },
    /// Call a runtime builtin.
    CallBuiltin { builtin: Builtin, argc: u8 },
    /// Return the top of stack to the caller.
    Ret,

    /// Allocate a new object of a class; pushes it. Property slots are
    /// initialized from declared defaults. Triggers lazy unit load.
    NewObj(ClassId),
    /// Pop a receiver, push the value of its property `name`.
    GetProp(StrId),
    /// Stack is `recv, value`; pops both, stores into property `name`.
    SetProp(StrId),
    /// Push the current `$this`.
    This,

    /// Pop `n` elements, push a new vec of them (first-pushed first).
    NewVec(u16),
    /// Pop `2n` elements (`k1, v1, ... kn, vn`), push a new dict.
    NewDict(u16),
    /// Stack is `container, key`; pops both, pushes `container[key]`.
    Idx,
    /// Stack is `container, key, value`; stores, pushes the container.
    SetIdx,
}

impl Instr {
    /// Returns the jump target if this is a branch instruction.
    pub fn jump_target(&self) -> Option<u32> {
        match *self {
            Instr::Jmp(t) | Instr::JmpZ(t) | Instr::JmpNZ(t) => Some(t),
            _ => None,
        }
    }

    /// Whether control cannot fall through past this instruction.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Instr::Jmp(_) | Instr::Ret)
    }

    /// Whether this instruction ends a basic block (any control transfer).
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Instr::Jmp(_) | Instr::JmpZ(_) | Instr::JmpNZ(_) | Instr::Ret
        )
    }

    /// Net change in operand-stack depth caused by this instruction.
    pub fn stack_delta(&self) -> i32 {
        match *self {
            Instr::Null
            | Instr::True
            | Instr::False
            | Instr::Int(_)
            | Instr::Double(_)
            | Instr::Str(_)
            | Instr::LitArr(_)
            | Instr::GetL(_)
            | Instr::IncL(_, _)
            | Instr::Dup
            | Instr::This
            | Instr::NewObj(_) => 1,
            Instr::Pop
            | Instr::SetL(_)
            | Instr::Bin(_)
            | Instr::JmpZ(_)
            | Instr::JmpNZ(_)
            | Instr::Idx => -1,
            Instr::Un(_) | Instr::Jmp(_) | Instr::GetProp(_) => 0,
            Instr::Ret => -1,
            Instr::SetProp(_) => -2,
            Instr::SetIdx => -2,
            Instr::Call { argc, .. } => 1 - argc as i32,
            Instr::CallMethod { argc, .. } => -(argc as i32),
            Instr::CallBuiltin { argc, .. } => 1 - argc as i32,
            Instr::NewVec(n) => 1 - n as i32,
            Instr::NewDict(n) => 1 - 2 * n as i32,
        }
    }

    /// Number of operands this instruction pops from the stack.
    pub fn pops(&self) -> u32 {
        match *self {
            Instr::Null
            | Instr::True
            | Instr::False
            | Instr::Int(_)
            | Instr::Double(_)
            | Instr::Str(_)
            | Instr::LitArr(_)
            | Instr::GetL(_)
            | Instr::IncL(_, _)
            | Instr::This
            | Instr::NewObj(_)
            | Instr::Jmp(_) => 0,
            Instr::Pop
            | Instr::Dup
            | Instr::SetL(_)
            | Instr::Un(_)
            | Instr::JmpZ(_)
            | Instr::JmpNZ(_)
            | Instr::Ret
            | Instr::GetProp(_) => 1,
            Instr::Bin(_) | Instr::SetProp(_) | Instr::Idx => 2,
            Instr::SetIdx => 3,
            Instr::Call { argc, .. } => argc as u32,
            Instr::CallMethod { argc, .. } => 1 + argc as u32,
            Instr::CallBuiltin { argc, .. } => argc as u32,
            Instr::NewVec(n) => n as u32,
            Instr::NewDict(n) => 2 * n as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_delta_matches_pops_for_pushing_instrs() {
        // Every instruction's delta must equal pushes - pops; spot-check the
        // ones with immediates.
        assert_eq!(Instr::NewVec(3).stack_delta(), -2);
        assert_eq!(Instr::NewVec(3).pops(), 3);
        assert_eq!(Instr::NewDict(2).stack_delta(), -3);
        assert_eq!(
            Instr::Call {
                func: crate::FuncId::new(0),
                argc: 2
            }
            .stack_delta(),
            -1
        );
        assert_eq!(
            Instr::CallMethod {
                name: crate::StrId::new(0),
                argc: 2
            }
            .stack_delta(),
            -2
        );
    }

    #[test]
    fn jump_target_only_on_branches() {
        assert_eq!(Instr::Jmp(7).jump_target(), Some(7));
        assert_eq!(Instr::JmpZ(3).jump_target(), Some(3));
        assert_eq!(Instr::Ret.jump_target(), None);
        assert_eq!(Instr::Pop.jump_target(), None);
    }

    #[test]
    fn terminal_and_block_end_classification() {
        assert!(Instr::Ret.is_terminal());
        assert!(Instr::Jmp(0).is_terminal());
        assert!(!Instr::JmpZ(0).is_terminal());
        assert!(Instr::JmpZ(0).ends_block());
        assert!(!Instr::Dup.ends_block());
    }

    #[test]
    fn builtin_lookup_by_name() {
        for b in Builtin::ALL {
            assert_eq!(Builtin::by_name(b.name()), Some(b));
            assert!(b.arity() >= 1 && b.arity() <= 3);
        }
        assert_eq!(Builtin::by_name("no_such_builtin"), None);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Concat.is_comparison());
    }
}
