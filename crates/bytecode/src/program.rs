//! Program structure: functions, classes and units.

use crate::ids::{ClassId, FuncId, StrId, UnitId};
use crate::instr::Instr;
use crate::literal::Literal;

/// Property visibility. Hacklet only distinguishes public/private; the
/// property-reordering optimization (paper §V-C) must preserve the declared
/// order as *observable* while being free to change the physical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// Accessible from anywhere.
    Public,
    /// Accessible only from methods of the declaring class.
    Private,
}

/// A property declared by a class (not including inherited ones).
#[derive(Clone, Debug, PartialEq)]
pub struct PropDecl {
    /// Property name.
    pub name: StrId,
    /// Default value assigned at object construction.
    pub default: Literal,
    /// Visibility of the property.
    pub visibility: Visibility,
}

/// A function or method: metadata plus its bytecode.
#[derive(Clone, Debug, PartialEq)]
pub struct Func {
    /// Dense id of this function.
    pub id: FuncId,
    /// Name (bare for free functions, `Class::method` for methods).
    pub name: StrId,
    /// The unit this function was compiled from.
    pub unit: UnitId,
    /// Number of parameters (occupying locals `0..params`).
    pub params: u16,
    /// Total number of local slots, including parameters.
    pub locals: u16,
    /// The class this is a method of, if any.
    pub class: Option<ClassId>,
    /// Bytecode; jump targets are indices into this vector.
    pub code: Vec<Instr>,
}

impl Func {
    /// Approximate bytecode footprint in bytes (HHBC averages a few bytes
    /// per instruction; we use a fixed 4).
    pub fn bytecode_bytes(&self) -> usize {
        self.code.len() * 4
    }

    /// Whether this function is a method.
    pub fn is_method(&self) -> bool {
        self.class.is_some()
    }
}

/// A class: name, optional parent, declared properties and methods.
#[derive(Clone, Debug, PartialEq)]
pub struct Class {
    /// Dense id of this class.
    pub id: ClassId,
    /// Class name.
    pub name: StrId,
    /// Parent class, if any. Subclasses inherit properties and methods.
    pub parent: Option<ClassId>,
    /// The unit this class was compiled from.
    pub unit: UnitId,
    /// Properties declared by this class (not inherited), in source order.
    pub props: Vec<PropDecl>,
    /// Methods declared by this class: `(name, func)` in source order.
    pub methods: Vec<(StrId, FuncId)>,
}

impl Class {
    /// Looks up a method declared directly on this class.
    pub fn declared_method(&self, name: StrId) -> Option<FuncId> {
        self.methods
            .iter()
            .find_map(|&(n, f)| (n == name).then_some(f))
    }
}

/// A compilation unit: one source file's worth of functions and classes.
///
/// Units are loaded lazily at runtime (autoloader); the Jump-Start package
/// records the order in which a warmed server ended up loading them so a
/// consumer can preload them in that order (paper §IV-B, §VII-A).
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    /// Dense id of this unit.
    pub id: UnitId,
    /// Source path of the unit.
    pub name: StrId,
    /// Free functions and methods defined in this unit.
    pub funcs: Vec<FuncId>,
    /// Classes defined in this unit.
    pub classes: Vec<ClassId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_func(id: u32, code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(id),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params: 0,
            locals: 0,
            class: None,
            code,
        }
    }

    #[test]
    fn bytecode_bytes_scales_with_length() {
        let f = mk_func(0, vec![Instr::Null, Instr::Ret]);
        assert_eq!(f.bytecode_bytes(), 8);
        assert!(!f.is_method());
    }

    #[test]
    fn declared_method_lookup() {
        let c = Class {
            id: ClassId::new(0),
            name: StrId::new(1),
            parent: None,
            unit: UnitId::new(0),
            props: vec![],
            methods: vec![(StrId::new(2), FuncId::new(9))],
        };
        assert_eq!(c.declared_method(StrId::new(2)), Some(FuncId::new(9)));
        assert_eq!(c.declared_method(StrId::new(3)), None);
    }
}
