//! Structural bytecode verification.
//!
//! The verifier checks the invariants the interpreter and JIT rely on:
//! jump targets in range, locals in range, referenced ids resolvable, stack
//! depth consistent at every program point (computed by abstract
//! interpretation over the CFG), and termination of every path in `Ret`.

use std::fmt;

use crate::cfg::Cfg;
use crate::ids::FuncId;
use crate::instr::Instr;
use crate::program::Func;
use crate::repo::Repo;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch targets an instruction index outside the function.
    JumpOutOfRange {
        func: FuncId,
        at: usize,
        target: u32,
    },
    /// An instruction references a local slot `>= locals`.
    LocalOutOfRange { func: FuncId, at: usize, local: u16 },
    /// The function body is empty.
    EmptyBody { func: FuncId },
    /// Control can fall off the end of the function.
    FallsOffEnd { func: FuncId },
    /// An instruction would pop from an empty stack.
    StackUnderflow { func: FuncId, at: usize },
    /// A join point is reached with inconsistent stack depths.
    InconsistentStackDepth {
        func: FuncId,
        block: u32,
        expected: i32,
        found: i32,
    },
    /// A call's static callee id is out of range for the repo.
    UnknownCallee { func: FuncId, at: usize },
    /// A `NewObj` references an out-of-range class id.
    UnknownClass { func: FuncId, at: usize },
    /// A builtin call has the wrong number of arguments.
    BuiltinArity {
        func: FuncId,
        at: usize,
        expected: usize,
        found: usize,
    },
    /// An interned-id immediate (string/array) is out of range.
    UnknownLiteral { func: FuncId, at: usize },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::JumpOutOfRange { func, at, target } => {
                write!(f, "{func}: instr {at}: jump target {target} out of range")
            }
            VerifyError::LocalOutOfRange { func, at, local } => {
                write!(f, "{func}: instr {at}: local {local} out of range")
            }
            VerifyError::EmptyBody { func } => write!(f, "{func}: empty body"),
            VerifyError::FallsOffEnd { func } => write!(f, "{func}: control falls off end"),
            VerifyError::StackUnderflow { func, at } => {
                write!(f, "{func}: instr {at}: stack underflow")
            }
            VerifyError::InconsistentStackDepth {
                func,
                block,
                expected,
                found,
            } => write!(
                f,
                "{func}: block b{block}: inconsistent stack depth ({expected} vs {found})"
            ),
            VerifyError::UnknownCallee { func, at } => {
                write!(f, "{func}: instr {at}: unknown callee")
            }
            VerifyError::UnknownClass { func, at } => {
                write!(f, "{func}: instr {at}: unknown class")
            }
            VerifyError::BuiltinArity {
                func,
                at,
                expected,
                found,
            } => write!(
                f,
                "{func}: instr {at}: builtin expects {expected} args, got {found}"
            ),
            VerifyError::UnknownLiteral { func, at } => {
                write!(f, "{func}: instr {at}: unknown string/array literal")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a single function, collecting **every** violated invariant
/// instead of stopping at the first one.
///
/// An empty vector means the function verifies. Ordering: per-instruction
/// structural errors in code order, then the falls-off-end check, then
/// stack-discipline errors in traversal order.
pub fn verify_func_all(repo: &Repo, func: &Func) -> Vec<VerifyError> {
    let id = func.id;
    let n = func.code.len();
    let mut errors = Vec::new();
    if n == 0 {
        return vec![VerifyError::EmptyBody { func: id }];
    }
    // Per-instruction structural checks.
    for (at, instr) in func.code.iter().enumerate() {
        if let Some(t) = instr.jump_target() {
            if t as usize >= n {
                errors.push(VerifyError::JumpOutOfRange {
                    func: id,
                    at,
                    target: t,
                });
            }
        }
        match *instr {
            Instr::GetL(l) | Instr::SetL(l) | Instr::IncL(l, _) if l >= func.locals => {
                errors.push(VerifyError::LocalOutOfRange {
                    func: id,
                    at,
                    local: l,
                });
            }
            Instr::Call { func: callee, argc } => {
                if callee.index() >= repo.funcs().len() {
                    errors.push(VerifyError::UnknownCallee { func: id, at });
                } else {
                    let params = repo.func(callee).params;
                    if params != argc as u16 {
                        errors.push(VerifyError::BuiltinArity {
                            func: id,
                            at,
                            expected: params as usize,
                            found: argc as usize,
                        });
                    }
                }
            }
            Instr::CallBuiltin { builtin, argc } if builtin.arity() != argc as usize => {
                errors.push(VerifyError::BuiltinArity {
                    func: id,
                    at,
                    expected: builtin.arity(),
                    found: argc as usize,
                });
            }
            Instr::NewObj(c) if c.index() >= repo.classes().len() => {
                errors.push(VerifyError::UnknownClass { func: id, at });
            }
            Instr::Str(s)
            | Instr::GetProp(s)
            | Instr::SetProp(s)
            | Instr::CallMethod { name: s, .. }
                if s.index() >= repo.string_count() =>
            {
                errors.push(VerifyError::UnknownLiteral { func: id, at });
            }
            Instr::LitArr(a) if a.index() >= repo.lit_array_count() => {
                errors.push(VerifyError::UnknownLiteral { func: id, at });
            }
            _ => {}
        }
    }
    // Last instruction must not fall through.
    if !func.code[n - 1].is_terminal() {
        errors.push(VerifyError::FallsOffEnd { func: id });
    }
    // Stack discipline relies on in-range jump targets; with broken
    // targets the CFG itself is meaningless, so stop here.
    if errors
        .iter()
        .any(|e| matches!(e, VerifyError::JumpOutOfRange { .. }))
    {
        return errors;
    }
    // Abstract stack-depth interpretation over the CFG. On underflow the
    // depth is clamped so the walk can continue and surface later errors.
    let cfg = Cfg::build(func);
    let mut depth_at: Vec<Option<i32>> = vec![None; cfg.len()];
    depth_at[0] = Some(0);
    let mut work = vec![crate::cfg::BlockId::ENTRY];
    while let Some(b) = work.pop() {
        let block = cfg.block(b);
        let mut depth = depth_at[b.index()].expect("queued blocks have a depth");
        for i in block.start..block.end {
            let instr = &func.code[i as usize];
            if depth < instr.pops() as i32 {
                errors.push(VerifyError::StackUnderflow {
                    func: id,
                    at: i as usize,
                });
                depth = instr.pops() as i32;
            }
            depth += instr.stack_delta();
        }
        for s in block.successors() {
            match depth_at[s.index()] {
                None => {
                    depth_at[s.index()] = Some(depth);
                    work.push(s);
                }
                Some(d) if d != depth => {
                    errors.push(VerifyError::InconsistentStackDepth {
                        func: id,
                        block: s.0,
                        expected: d,
                        found: depth,
                    });
                }
                Some(_) => {}
            }
        }
    }
    errors
}

/// Verifies every function in the repo, collecting all errors.
pub fn verify_repo_all(repo: &Repo) -> Vec<VerifyError> {
    repo.funcs()
        .iter()
        .flat_map(|func| verify_func_all(repo, func))
        .collect()
}

/// Verifies a single function against the repo.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_func(repo: &Repo, func: &Func) -> Result<(), VerifyError> {
    match verify_func_all(repo, func).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Verifies every function in the repo.
///
/// # Errors
///
/// Returns the first violated invariant across all functions.
pub fn verify_repo(repo: &Repo) -> Result<(), VerifyError> {
    for func in repo.funcs() {
        verify_func(repo, func)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ids::{StrId, UnitId};
    use crate::instr::{BinOp, Builtin};
    use crate::repo::RepoBuilder;

    fn single(code: Vec<Instr>, params: u16, locals: u16) -> (Repo, FuncId) {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let mut f = FuncBuilder::new("f", params);
        f.reserve_locals(locals);
        // Bypass the builder's branch helpers: inject raw code.
        for i in code {
            match i {
                Instr::Jmp(_) | Instr::JmpZ(_) | Instr::JmpNZ(_) => {
                    // Write raw; builder normally patches, so emit through a
                    // bound label at the same index trick is avoided by
                    // pushing directly below.
                    f.emit_raw(i);
                }
                other => f.emit_raw(other),
            }
        }
        let id = b.define_func(u, f);
        (b.finish(), id)
    }

    #[test]
    fn ok_function_verifies() {
        let (repo, id) = single(
            vec![
                Instr::Int(1),
                Instr::Int(2),
                Instr::Bin(BinOp::Add),
                Instr::Ret,
            ],
            0,
            0,
        );
        assert!(verify_func(&repo, repo.func(id)).is_ok());
    }

    #[test]
    fn jump_out_of_range_detected() {
        let (repo, id) = single(vec![Instr::Jmp(99)], 0, 0);
        assert!(matches!(
            verify_func(&repo, repo.func(id)),
            Err(VerifyError::JumpOutOfRange { target: 99, .. })
        ));
    }

    #[test]
    fn local_out_of_range_detected() {
        let (repo, id) = single(vec![Instr::GetL(5), Instr::Ret], 0, 1);
        assert!(matches!(
            verify_func(&repo, repo.func(id)),
            Err(VerifyError::LocalOutOfRange { local: 5, .. })
        ));
    }

    #[test]
    fn stack_underflow_detected() {
        let (repo, id) = single(vec![Instr::Pop, Instr::Null, Instr::Ret], 0, 0);
        assert!(matches!(
            verify_func(&repo, repo.func(id)),
            Err(VerifyError::StackUnderflow { at: 0, .. })
        ));
    }

    #[test]
    fn falls_off_end_detected() {
        let (repo, id) = single(vec![Instr::Null, Instr::Pop], 0, 0);
        assert!(matches!(
            verify_func(&repo, repo.func(id)),
            Err(VerifyError::FallsOffEnd { .. })
        ));
    }

    #[test]
    fn inconsistent_join_depth_detected() {
        // One arm pushes two values, the other one; both jump to the same ret.
        let code = vec![
            Instr::GetL(0), // 0
            Instr::JmpZ(4), // 1
            Instr::Null,    // 2
            Instr::Jmp(6),  // 3
            Instr::Null,    // 4
            Instr::Null,    // 5 (falls into 6 with depth 2)
            Instr::Ret,     // 6
        ];
        let (repo, id) = single(code, 1, 1);
        assert!(matches!(
            verify_func(&repo, repo.func(id)),
            Err(VerifyError::InconsistentStackDepth { .. })
        ));
    }

    #[test]
    fn builtin_arity_checked() {
        let code = vec![
            Instr::Null,
            Instr::CallBuiltin {
                builtin: Builtin::Min,
                argc: 1,
            },
            Instr::Ret,
        ];
        let (repo, id) = single(code, 0, 0);
        assert!(matches!(
            verify_func(&repo, repo.func(id)),
            Err(VerifyError::BuiltinArity {
                expected: 2,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn unknown_string_detected() {
        let (repo, id) = single(vec![Instr::Str(StrId::new(999)), Instr::Ret], 0, 0);
        assert!(matches!(
            verify_func(&repo, repo.func(id)),
            Err(VerifyError::UnknownLiteral { .. })
        ));
        let _ = UnitId::new(0);
    }

    #[test]
    fn all_errors_are_collected() {
        // Three independent structural violations in one function.
        let code = vec![
            Instr::GetL(9),              // local out of range
            Instr::Str(StrId::new(999)), // unknown string
            Instr::Pop,
            Instr::Pop,                            // leaves depth 0... then:
            Instr::NewObj(crate::ClassId::new(7)), // unknown class
            Instr::Pop,
            Instr::Ret, // pops from empty stack
        ];
        let (repo, id) = single(code, 0, 1);
        let errors = verify_func_all(&repo, repo.func(id));
        assert!(errors.len() >= 3, "expected several errors, got {errors:?}");
        assert!(errors
            .iter()
            .any(|e| matches!(e, VerifyError::LocalOutOfRange { .. })));
        assert!(errors
            .iter()
            .any(|e| matches!(e, VerifyError::UnknownLiteral { .. })));
        assert!(errors
            .iter()
            .any(|e| matches!(e, VerifyError::UnknownClass { .. })));
        // The thin wrapper reports exactly the first of them.
        assert_eq!(verify_func(&repo, repo.func(id)).unwrap_err(), errors[0]);
    }

    #[test]
    fn collect_all_matches_single_error_api_on_clean_funcs() {
        let (repo, id) = single(
            vec![
                Instr::Int(1),
                Instr::Int(2),
                Instr::Bin(BinOp::Add),
                Instr::Ret,
            ],
            0,
            0,
        );
        assert!(verify_func_all(&repo, repo.func(id)).is_empty());
        assert!(verify_repo_all(&repo).is_empty());
    }

    #[test]
    fn verify_repo_all_spans_functions() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        for name in ["bad1", "bad2"] {
            let mut f = FuncBuilder::new(name, 0);
            f.emit_raw(Instr::Pop);
            f.emit_raw(Instr::Null);
            f.emit_raw(Instr::Ret);
            b.define_func(u, f);
        }
        let repo = b.finish();
        assert_eq!(verify_repo_all(&repo).len(), 2);
    }

    #[test]
    fn verify_repo_covers_all_funcs() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let mut ok = FuncBuilder::new("ok", 0);
        ok.emit(Instr::Null);
        ok.emit(Instr::Ret);
        b.define_func(u, ok);
        let mut bad = FuncBuilder::new("bad", 0);
        bad.emit(Instr::Pop);
        bad.emit(Instr::Null);
        bad.emit(Instr::Ret);
        b.define_func(u, bad);
        let repo = b.finish();
        assert!(verify_repo(&repo).is_err());
    }
}
