//! Ergonomic function construction with labels and back-patching.

use crate::ids::{ClassId, FuncId, Local, UnitId};
use crate::instr::Instr;
use crate::program::Func;
use crate::repo::RepoBuilder;

/// A forward-referencable jump label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Func`]'s bytecode incrementally.
///
/// Labels may be referenced before they are bound; `finish` patches all
/// branch targets and asserts every label was bound.
#[derive(Debug)]
pub struct FuncBuilder {
    name: String,
    params: u16,
    locals: u16,
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    // (instr index, label) pairs awaiting patching.
    fixups: Vec<(usize, Label)>,
}

impl FuncBuilder {
    /// Starts a function with `params` parameters (locals `0..params`).
    pub fn new(name: &str, params: u16) -> Self {
        Self {
            name: name.to_owned(),
            params,
            locals: params,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Reserves a fresh local slot and returns its index.
    pub fn new_local(&mut self) -> Local {
        let l = self.locals;
        self.locals += 1;
        l
    }

    /// Ensures at least `n` local slots exist.
    pub fn reserve_locals(&mut self, n: u16) {
        self.locals = self.locals.max(n);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Appends an instruction.
    pub fn emit(&mut self, i: Instr) {
        debug_assert!(
            i.jump_target().is_none(),
            "use emit_jmp/emit_jmp_z/emit_jmp_nz for branches"
        );
        self.code.push(i);
    }

    /// Appends an instruction verbatim, including branches with absolute
    /// targets. Intended for generators and tests that compute targets
    /// themselves; prefer the label API otherwise.
    pub fn emit_raw(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len() as u32);
    }

    /// Emits an unconditional jump to `label`.
    pub fn emit_jmp(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Jmp(u32::MAX));
    }

    /// Emits a jump-if-falsy to `label`.
    pub fn emit_jmp_z(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::JmpZ(u32::MAX));
    }

    /// Emits a jump-if-truthy to `label`.
    pub fn emit_jmp_nz(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::JmpNZ(u32::MAX));
    }

    pub(crate) fn finish(
        mut self,
        repo: &mut RepoBuilder,
        id: FuncId,
        unit: UnitId,
        class: Option<ClassId>,
    ) -> Func {
        for (at, label) in self.fixups.drain(..) {
            let target = self.labels[label.0].expect("label never bound");
            self.code[at] = match self.code[at] {
                Instr::Jmp(_) => Instr::Jmp(target),
                Instr::JmpZ(_) => Instr::JmpZ(target),
                Instr::JmpNZ(_) => Instr::JmpNZ(target),
                other => unreachable!("fixup on non-branch {other:?}"),
            };
        }
        let name = repo.intern(&self.name);
        Func {
            id,
            name,
            unit,
            params: self.params,
            locals: self.locals,
            class,
            code: self.code,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;
    use crate::repo::RepoBuilder;

    #[test]
    fn forward_labels_are_patched() {
        let mut repo = RepoBuilder::new();
        let u = repo.declare_unit("t.hl");
        let mut f = FuncBuilder::new("f", 1);
        let done = f.new_label();
        f.emit(Instr::GetL(0));
        f.emit_jmp_z(done);
        f.emit(Instr::Int(1));
        f.emit(Instr::Ret);
        f.bind(done);
        f.emit(Instr::Int(0));
        f.emit(Instr::Ret);
        let id = repo.define_func(u, f);
        let repo = repo.finish();
        let func = repo.func(id);
        assert_eq!(func.code[1], Instr::JmpZ(4));
    }

    #[test]
    fn locals_accumulate_past_params() {
        let mut f = FuncBuilder::new("f", 2);
        assert_eq!(f.new_local(), 2);
        assert_eq!(f.new_local(), 3);
        f.reserve_locals(10);
        assert_eq!(f.new_local(), 10);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut f = FuncBuilder::new("f", 0);
        let l = f.new_label();
        f.bind(l);
        f.bind(l);
    }

    #[test]
    fn backward_jump_forms_loop() {
        let mut repo = RepoBuilder::new();
        let u = repo.declare_unit("t.hl");
        let mut f = FuncBuilder::new("loop", 1);
        let top = f.new_label();
        let out = f.new_label();
        f.bind(top);
        f.emit(Instr::GetL(0));
        f.emit_jmp_z(out);
        f.emit(Instr::GetL(0));
        f.emit(Instr::Int(1));
        f.emit(Instr::Bin(BinOp::Sub));
        f.emit(Instr::SetL(0));
        f.emit_jmp(top);
        f.bind(out);
        f.emit(Instr::Null);
        f.emit(Instr::Ret);
        let id = repo.define_func(u, f);
        let repo = repo.finish();
        assert_eq!(repo.func(id).code[6], Instr::Jmp(0));
        assert_eq!(repo.func(id).code[1], Instr::JmpZ(7));
    }
}
