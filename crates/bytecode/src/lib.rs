//! An HHBC-like untyped bytecode for a dynamic PHP/Hack-style language.
//!
//! HHVM compiles Hack source offline into a *bytecode repo* that is deployed
//! to every web server; the VM then interprets or JIT-compiles that bytecode
//! at runtime (paper §II-A). This crate is the reproduction's equivalent of
//! that repo format:
//!
//! * [`Instr`] — the untyped, stack-based instruction set,
//! * [`Func`], [`Class`], [`Unit`] — program structure,
//! * [`Repo`] / [`RepoBuilder`] — the whole-program container with interned
//!   strings and literal arrays (the "repo global data" that Jump-Start
//!   preloads, paper §IV-B category 1),
//! * [`FuncBuilder`] — convenient construction with labels and patching,
//! * [`verify_repo`] — a structural verifier (jump targets, stack discipline),
//! * [`disasm_func`] — a textual disassembler for debugging.
//!
//! # Example
//!
//! ```
//! use bytecode::{FuncBuilder, Instr, RepoBuilder, BinOp};
//!
//! let mut repo = RepoBuilder::new();
//! let unit = repo.declare_unit("adder.hl");
//! let mut f = FuncBuilder::new("add2", 1);
//! f.emit(Instr::GetL(0));
//! f.emit(Instr::Int(2));
//! f.emit(Instr::Bin(BinOp::Add));
//! f.emit(Instr::Ret);
//! repo.define_func(unit, f);
//! let repo = repo.finish();
//! assert!(repo.func_by_name("add2").is_some());
//! ```

mod builder;
mod cfg;
mod disasm;
mod ids;
mod instr;
mod literal;
mod program;
mod repo;
mod verify;

pub use builder::{FuncBuilder, Label};
pub use cfg::{fnv_str, BlockId, Cfg, CfgBlock, Fnv};
pub use disasm::{disasm_func, disasm_unit};
pub use ids::{ClassId, FuncId, LitArrId, Local, StrId, UnitId};
pub use instr::{BinOp, Builtin, Instr, UnOp};
pub use literal::{LitArray, Literal};
pub use program::{Class, Func, PropDecl, Unit, Visibility};
pub use repo::{Repo, RepoBuilder, RepoError};
pub use verify::{verify_func, verify_func_all, verify_repo, verify_repo_all, VerifyError};
