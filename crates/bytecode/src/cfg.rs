//! Control-flow graph over bytecode.
//!
//! The JIT's profiling translator inserts counters at *bytecode-level basic
//! blocks* (paper §V-A); this module computes those blocks. Block ids are
//! dense per function and stable across runs, so profile counters keyed by
//! `BlockId` can be serialized into the Jump-Start package and applied in a
//! different process.

use crate::program::Func;

/// Dense id of a bytecode basic block within one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The function entry block.
    pub const ENTRY: BlockId = BlockId(0);

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// One bytecode basic block: a half-open instruction range plus successors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgBlock {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor taken when the terminating conditional branch fires (or the
    /// unconditional jump target). `None` for returns and fallthrough-only.
    pub taken: Option<BlockId>,
    /// Fallthrough successor, if control can fall through.
    pub fallthrough: Option<BlockId>,
}

impl CfgBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never produced by [`Cfg::build`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the block's successors.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.taken.into_iter().chain(self.fallthrough)
    }
}

/// The control-flow graph of one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<CfgBlock>,
    // Map from instruction index to owning block, for profiling lookups.
    block_of_instr: Vec<BlockId>,
}

impl Cfg {
    /// Computes basic blocks for `func` with the classic leader algorithm.
    pub fn build(func: &Func) -> Cfg {
        let code = &func.code;
        let n = code.len();
        let mut is_leader = vec![false; n.max(1)];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, instr) in code.iter().enumerate() {
            if let Some(t) = instr.jump_target() {
                if (t as usize) < n {
                    is_leader[t as usize] = true;
                }
            }
            if instr.ends_block() && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        // Assign block ids in instruction order.
        let mut starts: Vec<u32> = Vec::new();
        for (i, &l) in is_leader.iter().enumerate().take(n) {
            if l {
                starts.push(i as u32);
            }
        }
        let mut block_of_instr = vec![BlockId(0); n];
        let mut blocks = Vec::with_capacity(starts.len());
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(n as u32);
            for i in start..end {
                block_of_instr[i as usize] = BlockId(bi as u32);
            }
            blocks.push(CfgBlock {
                start,
                end,
                taken: None,
                fallthrough: None,
            });
        }
        // Wire successors now that instruction->block is known.
        for bi in 0..blocks.len() {
            let last_idx = blocks[bi].end - 1;
            let last = &code[last_idx as usize];
            let taken = last.jump_target().map(|t| block_of_instr[t as usize]);
            let falls = !last.is_terminal() && (blocks[bi].end as usize) < n;
            blocks[bi].taken = taken;
            blocks[bi].fallthrough = if falls {
                Some(block_of_instr[blocks[bi].end as usize])
            } else {
                None
            };
        }
        Cfg {
            blocks,
            block_of_instr,
        }
    }

    /// The blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> &[CfgBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the function had no code.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing instruction `idx`.
    pub fn block_of(&self, idx: u32) -> BlockId {
        self.block_of_instr[idx as usize]
    }

    /// Resolves a block id.
    pub fn block(&self, id: BlockId) -> &CfgBlock {
        &self.blocks[id.index()]
    }

    /// Structural hash of every block, for matching profile counters onto
    /// a *changed* CFG (stale-profile repair, paper §VI reliability).
    ///
    /// The hash covers each instruction's shape — opcode plus immediates —
    /// but deliberately **excludes jump-target indices** and includes the
    /// successor *shape* instead (has-taken / has-fallthrough). Inserting
    /// or deleting code elsewhere in the function shifts every absolute
    /// instruction index, yet untouched blocks keep their hash, so their
    /// counters can be remapped.
    ///
    /// Table-index immediates (`StrId`, `FuncId`, `ClassId`, `LitArrId`)
    /// renumber wholesale when unrelated code is added to the repo, so the
    /// hash resolves them to the *content* they name — string bytes, callee
    /// function names, class names, literal array values — making the exact
    /// hash of an untouched block stable across builds (and across the
    /// chunk store's content-addressed delta pushes).
    pub fn block_hashes(&self, func: &Func, repo: &crate::repo::Repo) -> Vec<u64> {
        self.blocks
            .iter()
            .map(|b| {
                let mut h = Fnv::new();
                for i in b.start..b.end {
                    hash_instr_shape(&mut h, &func.code[i as usize], repo);
                }
                h.u8(b.taken.is_some() as u8);
                h.u8(b.fallthrough.is_some() as u8);
                h.finish()
            })
            .collect()
    }

    /// Opcode-only hash of every block: like [`Cfg::block_hashes`] but
    /// covering just the opcode *tags* (no immediates) plus the successor
    /// shape. It tolerates edits that keep the opcode skeleton — renamed
    /// strings, retargeted calls, changed constants — and is the second
    /// rung of the stale-matching ladder when the exact (content-resolved)
    /// hash misses.
    pub fn block_opcode_hashes(&self, func: &Func) -> Vec<u64> {
        self.blocks
            .iter()
            .map(|b| {
                let mut h = Fnv::new();
                for i in b.start..b.end {
                    h.u8(opcode_tag(&func.code[i as usize]));
                }
                h.u8(b.taken.is_some() as u8);
                h.u8(b.fallthrough.is_some() as u8);
                h.finish()
            })
            .collect()
    }

    /// Neighborhood hash of every block: the block's own opcode hash
    /// combined with the *sorted* opcode hashes of its predecessors and
    /// successors. Two blocks with identical bodies (common for compiler-
    /// generated epilogues) are distinguished by where they sit in the
    /// graph; conversely a block whose body was edited can still be
    /// recognized by its unchanged neighborhood. Third rung of the ladder.
    pub fn block_neighbor_hashes(&self, func: &Func) -> Vec<u64> {
        let op = self.block_opcode_hashes(func);
        let mut preds: Vec<Vec<u64>> = vec![Vec::new(); self.blocks.len()];
        for (bi, b) in self.blocks.iter().enumerate() {
            for s in b.successors() {
                preds[s.index()].push(op[bi]);
            }
        }
        self.blocks
            .iter()
            .enumerate()
            .map(|(bi, b)| {
                let mut h = Fnv::new();
                h.u64(op[bi]);
                preds[bi].sort_unstable();
                h.u8(preds[bi].len() as u8);
                for &p in &preds[bi] {
                    h.u64(p);
                }
                let mut succs: Vec<u64> = b.successors().map(|s| op[s.index()]).collect();
                succs.sort_unstable();
                h.u8(succs.len() as u8);
                for &s in &succs {
                    h.u64(s);
                }
                h.finish()
            })
            .collect()
    }

    /// Call-site anchor hash of every block: the in-order sequence of the
    /// block's call targets, identified by *name string* (stable across
    /// builds, unlike the raw ids). Blocks with no calls hash to `0` so
    /// callers can skip them. A block whose arithmetic was rewritten but
    /// whose calls survived is still anchored; this is the last, fuzziest
    /// rung of the matching ladder.
    pub fn block_anchor_hashes(&self, func: &Func, repo: &crate::repo::Repo) -> Vec<u64> {
        use crate::instr::Instr as I;
        self.blocks
            .iter()
            .map(|b| {
                let mut h = Fnv::new();
                let mut any = false;
                for i in b.start..b.end {
                    match func.code[i as usize] {
                        I::Call { func: callee, argc } => {
                            any = true;
                            h.u8(1);
                            let f = repo.func(callee);
                            h.u64(fnv_str(repo.str(f.name)));
                            h.u8(argc);
                        }
                        I::CallMethod { name, argc } => {
                            any = true;
                            h.u8(2);
                            h.u64(fnv_str(repo.str(name)));
                            h.u8(argc);
                        }
                        I::CallBuiltin { builtin, argc } => {
                            any = true;
                            h.u8(3);
                            h.u8(builtin as u8);
                            h.u8(argc);
                        }
                        _ => {}
                    }
                }
                if any {
                    h.finish()
                } else {
                    0
                }
            })
            .collect()
    }

    /// Predecessor counts per block (entry gets an implicit +1).
    pub fn pred_counts(&self) -> Vec<u32> {
        let mut preds = vec![0u32; self.blocks.len()];
        if !self.blocks.is_empty() {
            preds[0] += 1;
        }
        for b in &self.blocks {
            for s in b.successors() {
                preds[s.index()] += 1;
            }
        }
        preds
    }
}

/// FNV-1a, enough for structural fingerprints (no adversarial inputs).
///
/// This is the hash behind [`Cfg::block_hashes`]; it is exported so other
/// structural fingerprints (e.g. the consumer's layout-plan cache keys)
/// stay in the same hash family instead of growing parallel hashers.
pub struct Fnv(u64);

impl Fnv {
    /// A hasher at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs one byte.
    pub fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Absorbs a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over a string's bytes: build-stable fingerprints of function and
/// method *names*, used to re-identify profiled functions after ids were
/// renumbered by an unrelated code push.
pub fn fnv_str(s: &str) -> u64 {
    let mut h = Fnv::new();
    for &b in s.as_bytes() {
        h.u8(b);
    }
    h.finish()
}

/// The dense opcode tag shared by the exact and opcode-only block hashes.
fn opcode_tag(instr: &crate::instr::Instr) -> u8 {
    use crate::instr::Instr as I;
    match *instr {
        I::Null => 0,
        I::True => 1,
        I::False => 2,
        I::Int(_) => 3,
        I::Double(_) => 4,
        I::Str(_) => 5,
        I::LitArr(_) => 6,
        I::Pop => 7,
        I::Dup => 8,
        I::GetL(_) => 9,
        I::SetL(_) => 10,
        I::IncL(..) => 11,
        I::Bin(_) => 12,
        I::Un(_) => 13,
        I::Jmp(_) => 14,
        I::JmpZ(_) => 15,
        I::JmpNZ(_) => 16,
        I::Call { .. } => 17,
        I::CallMethod { .. } => 18,
        I::CallBuiltin { .. } => 19,
        I::Ret => 20,
        I::NewObj(_) => 21,
        I::GetProp(_) => 22,
        I::SetProp(_) => 23,
        I::This => 24,
        I::NewVec(_) => 25,
        I::NewDict(_) => 26,
        I::Idx => 27,
        I::SetIdx => 28,
    }
}

fn hash_instr_shape(h: &mut Fnv, instr: &crate::instr::Instr, repo: &crate::repo::Repo) {
    use crate::instr::Instr as I;
    // The opcode tag plus the non-jump-target immediates. Table-index
    // immediates are resolved to the content they name so the hash
    // survives id renumbering across builds.
    h.u8(opcode_tag(instr));
    match *instr {
        I::Int(v) => h.u64(v as u64),
        I::Double(v) => h.u64(v.to_bits()),
        I::Str(s) => h.u64(fnv_str(repo.str(s))),
        I::LitArr(a) => hash_lit_array(h, repo.lit_array(a), repo),
        I::GetL(l) | I::SetL(l) => h.u64(l as u64),
        I::IncL(l, d) => {
            h.u64(l as u64);
            h.u64(d as u64);
        }
        I::Bin(op) => h.u8(op as u8),
        I::Un(op) => h.u8(op as u8),
        // Branch opcodes hash their kind only: the absolute target index
        // shifts whenever code is inserted upstream.
        I::Jmp(_) | I::JmpZ(_) | I::JmpNZ(_) => {}
        I::Call { func, argc } => {
            h.u64(fnv_str(repo.str(repo.func(func).name)));
            h.u8(argc);
        }
        I::CallMethod { name, argc } => {
            h.u64(fnv_str(repo.str(name)));
            h.u8(argc);
        }
        I::CallBuiltin { builtin, argc } => {
            h.u8(builtin as u8);
            h.u8(argc);
        }
        I::NewObj(c) => h.u64(fnv_str(repo.str(repo.class(c).name))),
        I::GetProp(s) | I::SetProp(s) => h.u64(fnv_str(repo.str(s))),
        I::NewVec(n) | I::NewDict(n) => h.u64(n as u64),
        I::Null | I::True | I::False | I::Pop | I::Dup | I::Ret | I::This | I::Idx | I::SetIdx => {}
    }
}

/// Content hash of a literal value (strings by bytes, arrays recursively),
/// so `LitArr` immediates survive table renumbering like everything else.
fn hash_literal(h: &mut Fnv, lit: &crate::literal::Literal, repo: &crate::repo::Repo) {
    use crate::literal::Literal as L;
    match *lit {
        L::Null => h.u8(0),
        L::Bool(b) => {
            h.u8(1);
            h.u8(b as u8);
        }
        L::Int(v) => {
            h.u8(2);
            h.u64(v as u64);
        }
        L::Float(v) => {
            h.u8(3);
            h.u64(v.to_bits());
        }
        L::Str(s) => {
            h.u8(4);
            h.u64(fnv_str(repo.str(s)));
        }
        L::Arr(a) => {
            h.u8(5);
            hash_lit_array(h, repo.lit_array(a), repo);
        }
    }
}

fn hash_lit_array(h: &mut Fnv, arr: &crate::literal::LitArray, repo: &crate::repo::Repo) {
    use crate::literal::LitArray as A;
    match arr {
        A::Vec(v) => {
            h.u8(1);
            h.u64(v.len() as u64);
            for l in v {
                hash_literal(h, l, repo);
            }
        }
        A::Dict(d) => {
            h.u8(2);
            h.u64(d.len() as u64);
            for (k, v) in d {
                h.u64(fnv_str(repo.str(*k)));
                hash_literal(h, v, repo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FuncId, StrId, UnitId};
    use crate::instr::{BinOp, Instr};

    fn func(code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(0),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params: 1,
            locals: 1,
            class: None,
            code,
        }
    }

    /// A repo whose string table is exactly `strs` in order, so tests can
    /// pick the numbering each simulated "build" hands out.
    fn repo_with_strings(strs: &[&str]) -> crate::repo::Repo {
        let mut rb = crate::repo::RepoBuilder::new();
        for s in strs {
            rb.intern(s);
        }
        rb.finish()
    }

    #[test]
    fn straight_line_is_one_block() {
        let f = func(vec![
            Instr::Int(1),
            Instr::Int(2),
            Instr::Bin(BinOp::Add),
            Instr::Ret,
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 1);
        let b = cfg.block(BlockId::ENTRY);
        assert_eq!(b.len(), 4);
        assert_eq!(b.taken, None);
        assert_eq!(b.fallthrough, None);
    }

    #[test]
    fn diamond_has_four_blocks() {
        // if (l0) { 1 } else { 2 }; ret
        let f = func(vec![
            Instr::GetL(0), // 0  b0
            Instr::JmpZ(4), // 1  b0 -> taken b2, fall b1
            Instr::Int(1),  // 2  b1
            Instr::Jmp(5),  // 3  b1 -> b3
            Instr::Int(2),  // 4  b2 (falls to b3)
            Instr::Ret,     // 5  b3
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 4);
        let b0 = cfg.block(BlockId(0));
        assert_eq!(b0.taken, Some(BlockId(2)));
        assert_eq!(b0.fallthrough, Some(BlockId(1)));
        let b1 = cfg.block(BlockId(1));
        assert_eq!(b1.taken, Some(BlockId(3)));
        assert_eq!(b1.fallthrough, None);
        let b2 = cfg.block(BlockId(2));
        assert_eq!(b2.taken, None);
        assert_eq!(b2.fallthrough, Some(BlockId(3)));
        assert_eq!(cfg.pred_counts(), vec![1, 1, 1, 2]);
    }

    #[test]
    fn loop_back_edge() {
        let f = func(vec![
            Instr::GetL(0), // 0 b0 (loop header)
            Instr::JmpZ(6), // 1 b0
            Instr::GetL(0), // 2 b1
            Instr::Int(1),  // 3
            Instr::Bin(BinOp::Sub),
            Instr::Jmp(0), // 5 b1 -> b0
            Instr::Ret,    // 6 b2
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.block(BlockId(1)).taken, Some(BlockId(0)));
        assert_eq!(cfg.block_of(4), BlockId(1));
    }

    #[test]
    fn block_of_maps_every_instr() {
        let f = func(vec![Instr::GetL(0), Instr::JmpNZ(0), Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.block_of(0), BlockId(0));
        assert_eq!(cfg.block_of(2), BlockId(1));
    }

    #[test]
    fn block_hashes_are_stable_and_distinguish_contents() {
        let f = func(vec![
            Instr::GetL(0),
            Instr::JmpZ(4),
            Instr::Int(1),
            Instr::Jmp(5),
            Instr::Int(2),
            Instr::Ret,
        ]);
        let cfg = Cfg::build(&f);
        let repo = repo_with_strings(&[]);
        let h1 = cfg.block_hashes(&f, &repo);
        let h2 = cfg.block_hashes(&f, &repo);
        assert_eq!(h1, h2, "hashing is deterministic");
        assert_eq!(h1.len(), cfg.len());
        // Int(1)+Jmp vs Int(2)+fallthrough differ.
        assert_ne!(h1[1], h1[2]);
    }

    #[test]
    fn exact_hashes_resolve_ids_to_content_across_renumbering() {
        // Build A interns "needle" as StrId 3; build B hands the *same
        // string* id 9. The exact hash resolves the id to the bytes it
        // names, so untouched code keeps its hash across the renumber.
        let ra = repo_with_strings(&["a0", "a1", "a2", "needle"]);
        let rb = repo_with_strings(&[
            "b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "needle",
        ]);
        let a = func(vec![
            Instr::GetL(0),
            Instr::Str(StrId::new(3)),
            Instr::JmpZ(4),
            Instr::Int(1),
            Instr::Ret,
        ]);
        let b = func(vec![
            Instr::GetL(0),
            Instr::Str(StrId::new(9)),
            Instr::JmpZ(4),
            Instr::Int(1),
            Instr::Ret,
        ]);
        let (ca, cb) = (Cfg::build(&a), Cfg::build(&b));
        assert_eq!(
            ca.block_hashes(&a, &ra),
            cb.block_hashes(&b, &rb),
            "renumbered id for identical content keeps the exact hash"
        );
        // But pointing the same id at *different* content changes it.
        let rb2 = repo_with_strings(&[
            "b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "haystack",
        ]);
        assert_ne!(ca.block_hashes(&a, &ra)[0], cb.block_hashes(&b, &rb2)[0]);
        // The opcode rung never saw the immediates to begin with.
        assert_eq!(ca.block_opcode_hashes(&a), cb.block_opcode_hashes(&b));
    }

    #[test]
    fn neighbor_hashes_distinguish_identical_bodies_by_position() {
        // Two arms with *identical* bodies jumping to different join points;
        // the opcode hash collides but the neighborhood hash separates them.
        let f = func(vec![
            Instr::GetL(0), // 0 b0
            Instr::JmpZ(5), // 1 b0 -> taken b2, fall b1
            Instr::Int(7),  // 2 b1
            Instr::Pop,     // 3 b1
            Instr::Jmp(8),  // 4 b1 -> b3
            Instr::Int(7),  // 5 b2
            Instr::Pop,     // 6 b2
            Instr::Jmp(9),  // 7 b2 -> b4
            Instr::Int(1),  // 8 b3 (falls to b4)
            Instr::Ret,     // 9 b4
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 5);
        let op = cfg.block_opcode_hashes(&f);
        let nb = cfg.block_neighbor_hashes(&f);
        assert_eq!(op[1], op[2], "bodies collide at the opcode level");
        assert_ne!(nb[1], nb[2], "neighborhoods differ");
    }

    #[test]
    fn block_hashes_survive_upstream_insertion() {
        // v1: cond; A; ret    v2: an extra instruction *before* the branch
        // shifts every absolute index, but untouched blocks keep hashes.
        let v1 = func(vec![
            Instr::GetL(0), // b0
            Instr::JmpZ(4), // b0 -> b2
            Instr::Int(7),  // b1
            Instr::Jmp(5),  // b1 -> b3
            Instr::Int(9),  // b2
            Instr::Ret,     // b3
        ]);
        let v2 = func(vec![
            Instr::GetL(0), // b0 (one instr longer)
            Instr::Dup,
            Instr::Pop,
            Instr::JmpZ(6), // b0 -> b2
            Instr::Int(7),  // b1
            Instr::Jmp(7),  // b1 -> b3
            Instr::Int(9),  // b2
            Instr::Ret,     // b3
        ]);
        let repo = repo_with_strings(&[]);
        let h1 = Cfg::build(&v1).block_hashes(&v1, &repo);
        let h2 = Cfg::build(&v2).block_hashes(&v2, &repo);
        assert_ne!(h1[0], h2[0], "edited block changes");
        assert_eq!(h1[1], h2[1], "untouched block keeps its hash");
        assert_eq!(h1[2], h2[2]);
        assert_eq!(h1[3], h2[3]);
    }
}
