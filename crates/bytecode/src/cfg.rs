//! Control-flow graph over bytecode.
//!
//! The JIT's profiling translator inserts counters at *bytecode-level basic
//! blocks* (paper §V-A); this module computes those blocks. Block ids are
//! dense per function and stable across runs, so profile counters keyed by
//! `BlockId` can be serialized into the Jump-Start package and applied in a
//! different process.

use crate::program::Func;

/// Dense id of a bytecode basic block within one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The function entry block.
    pub const ENTRY: BlockId = BlockId(0);

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// One bytecode basic block: a half-open instruction range plus successors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgBlock {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor taken when the terminating conditional branch fires (or the
    /// unconditional jump target). `None` for returns and fallthrough-only.
    pub taken: Option<BlockId>,
    /// Fallthrough successor, if control can fall through.
    pub fallthrough: Option<BlockId>,
}

impl CfgBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never produced by [`Cfg::build`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the block's successors.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.taken.into_iter().chain(self.fallthrough)
    }
}

/// The control-flow graph of one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<CfgBlock>,
    // Map from instruction index to owning block, for profiling lookups.
    block_of_instr: Vec<BlockId>,
}

impl Cfg {
    /// Computes basic blocks for `func` with the classic leader algorithm.
    pub fn build(func: &Func) -> Cfg {
        let code = &func.code;
        let n = code.len();
        let mut is_leader = vec![false; n.max(1)];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, instr) in code.iter().enumerate() {
            if let Some(t) = instr.jump_target() {
                if (t as usize) < n {
                    is_leader[t as usize] = true;
                }
            }
            if instr.ends_block() && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        // Assign block ids in instruction order.
        let mut starts: Vec<u32> = Vec::new();
        for (i, &l) in is_leader.iter().enumerate().take(n) {
            if l {
                starts.push(i as u32);
            }
        }
        let mut block_of_instr = vec![BlockId(0); n];
        let mut blocks = Vec::with_capacity(starts.len());
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(n as u32);
            for i in start..end {
                block_of_instr[i as usize] = BlockId(bi as u32);
            }
            blocks.push(CfgBlock {
                start,
                end,
                taken: None,
                fallthrough: None,
            });
        }
        // Wire successors now that instruction->block is known.
        for bi in 0..blocks.len() {
            let last_idx = blocks[bi].end - 1;
            let last = &code[last_idx as usize];
            let taken = last.jump_target().map(|t| block_of_instr[t as usize]);
            let falls = !last.is_terminal() && (blocks[bi].end as usize) < n;
            blocks[bi].taken = taken;
            blocks[bi].fallthrough = if falls {
                Some(block_of_instr[blocks[bi].end as usize])
            } else {
                None
            };
        }
        Cfg {
            blocks,
            block_of_instr,
        }
    }

    /// The blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> &[CfgBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the function had no code.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing instruction `idx`.
    pub fn block_of(&self, idx: u32) -> BlockId {
        self.block_of_instr[idx as usize]
    }

    /// Resolves a block id.
    pub fn block(&self, id: BlockId) -> &CfgBlock {
        &self.blocks[id.index()]
    }

    /// Structural hash of every block, for matching profile counters onto
    /// a *changed* CFG (stale-profile repair, paper §VI reliability).
    ///
    /// The hash covers each instruction's shape — opcode plus immediates —
    /// but deliberately **excludes jump-target indices** and includes the
    /// successor *shape* instead (has-taken / has-fallthrough). Inserting
    /// or deleting code elsewhere in the function shifts every absolute
    /// instruction index, yet untouched blocks keep their hash, so their
    /// counters can be remapped.
    pub fn block_hashes(&self, func: &Func) -> Vec<u64> {
        self.blocks
            .iter()
            .map(|b| {
                let mut h = Fnv::new();
                for i in b.start..b.end {
                    hash_instr_shape(&mut h, &func.code[i as usize]);
                }
                h.u8(b.taken.is_some() as u8);
                h.u8(b.fallthrough.is_some() as u8);
                h.finish()
            })
            .collect()
    }

    /// Predecessor counts per block (entry gets an implicit +1).
    pub fn pred_counts(&self) -> Vec<u32> {
        let mut preds = vec![0u32; self.blocks.len()];
        if !self.blocks.is_empty() {
            preds[0] += 1;
        }
        for b in &self.blocks {
            for s in b.successors() {
                preds[s.index()] += 1;
            }
        }
        preds
    }
}

/// FNV-1a, enough for structural fingerprints (no adversarial inputs).
///
/// This is the hash behind [`Cfg::block_hashes`]; it is exported so other
/// structural fingerprints (e.g. the consumer's layout-plan cache keys)
/// stay in the same hash family instead of growing parallel hashers.
pub struct Fnv(u64);

impl Fnv {
    /// A hasher at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs one byte.
    pub fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Absorbs a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_instr_shape(h: &mut Fnv, instr: &crate::instr::Instr) {
    use crate::instr::Instr as I;
    // A small opcode tag plus the non-jump-target immediates.
    match *instr {
        I::Null => h.u8(0),
        I::True => h.u8(1),
        I::False => h.u8(2),
        I::Int(v) => {
            h.u8(3);
            h.u64(v as u64);
        }
        I::Double(v) => {
            h.u8(4);
            h.u64(v.to_bits());
        }
        I::Str(s) => {
            h.u8(5);
            h.u64(s.0 as u64);
        }
        I::LitArr(a) => {
            h.u8(6);
            h.u64(a.0 as u64);
        }
        I::Pop => h.u8(7),
        I::Dup => h.u8(8),
        I::GetL(l) => {
            h.u8(9);
            h.u64(l as u64);
        }
        I::SetL(l) => {
            h.u8(10);
            h.u64(l as u64);
        }
        I::IncL(l, d) => {
            h.u8(11);
            h.u64(l as u64);
            h.u64(d as u64);
        }
        I::Bin(op) => {
            h.u8(12);
            h.u8(op as u8);
        }
        I::Un(op) => {
            h.u8(13);
            h.u8(op as u8);
        }
        // Branch opcodes hash their kind only: the absolute target index
        // shifts whenever code is inserted upstream.
        I::Jmp(_) => h.u8(14),
        I::JmpZ(_) => h.u8(15),
        I::JmpNZ(_) => h.u8(16),
        I::Call { func, argc } => {
            h.u8(17);
            h.u64(func.0 as u64);
            h.u8(argc);
        }
        I::CallMethod { name, argc } => {
            h.u8(18);
            h.u64(name.0 as u64);
            h.u8(argc);
        }
        I::CallBuiltin { builtin, argc } => {
            h.u8(19);
            h.u8(builtin as u8);
            h.u8(argc);
        }
        I::Ret => h.u8(20),
        I::NewObj(c) => {
            h.u8(21);
            h.u64(c.0 as u64);
        }
        I::GetProp(s) => {
            h.u8(22);
            h.u64(s.0 as u64);
        }
        I::SetProp(s) => {
            h.u8(23);
            h.u64(s.0 as u64);
        }
        I::This => h.u8(24),
        I::NewVec(n) => {
            h.u8(25);
            h.u64(n as u64);
        }
        I::NewDict(n) => {
            h.u8(26);
            h.u64(n as u64);
        }
        I::Idx => h.u8(27),
        I::SetIdx => h.u8(28),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FuncId, StrId, UnitId};
    use crate::instr::{BinOp, Instr};

    fn func(code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(0),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params: 1,
            locals: 1,
            class: None,
            code,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let f = func(vec![
            Instr::Int(1),
            Instr::Int(2),
            Instr::Bin(BinOp::Add),
            Instr::Ret,
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 1);
        let b = cfg.block(BlockId::ENTRY);
        assert_eq!(b.len(), 4);
        assert_eq!(b.taken, None);
        assert_eq!(b.fallthrough, None);
    }

    #[test]
    fn diamond_has_four_blocks() {
        // if (l0) { 1 } else { 2 }; ret
        let f = func(vec![
            Instr::GetL(0), // 0  b0
            Instr::JmpZ(4), // 1  b0 -> taken b2, fall b1
            Instr::Int(1),  // 2  b1
            Instr::Jmp(5),  // 3  b1 -> b3
            Instr::Int(2),  // 4  b2 (falls to b3)
            Instr::Ret,     // 5  b3
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 4);
        let b0 = cfg.block(BlockId(0));
        assert_eq!(b0.taken, Some(BlockId(2)));
        assert_eq!(b0.fallthrough, Some(BlockId(1)));
        let b1 = cfg.block(BlockId(1));
        assert_eq!(b1.taken, Some(BlockId(3)));
        assert_eq!(b1.fallthrough, None);
        let b2 = cfg.block(BlockId(2));
        assert_eq!(b2.taken, None);
        assert_eq!(b2.fallthrough, Some(BlockId(3)));
        assert_eq!(cfg.pred_counts(), vec![1, 1, 1, 2]);
    }

    #[test]
    fn loop_back_edge() {
        let f = func(vec![
            Instr::GetL(0), // 0 b0 (loop header)
            Instr::JmpZ(6), // 1 b0
            Instr::GetL(0), // 2 b1
            Instr::Int(1),  // 3
            Instr::Bin(BinOp::Sub),
            Instr::Jmp(0), // 5 b1 -> b0
            Instr::Ret,    // 6 b2
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.block(BlockId(1)).taken, Some(BlockId(0)));
        assert_eq!(cfg.block_of(4), BlockId(1));
    }

    #[test]
    fn block_of_maps_every_instr() {
        let f = func(vec![Instr::GetL(0), Instr::JmpNZ(0), Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.block_of(0), BlockId(0));
        assert_eq!(cfg.block_of(2), BlockId(1));
    }

    #[test]
    fn block_hashes_are_stable_and_distinguish_contents() {
        let f = func(vec![
            Instr::GetL(0),
            Instr::JmpZ(4),
            Instr::Int(1),
            Instr::Jmp(5),
            Instr::Int(2),
            Instr::Ret,
        ]);
        let cfg = Cfg::build(&f);
        let h1 = cfg.block_hashes(&f);
        let h2 = cfg.block_hashes(&f);
        assert_eq!(h1, h2, "hashing is deterministic");
        assert_eq!(h1.len(), cfg.len());
        // Int(1)+Jmp vs Int(2)+fallthrough differ.
        assert_ne!(h1[1], h1[2]);
    }

    #[test]
    fn block_hashes_survive_upstream_insertion() {
        // v1: cond; A; ret    v2: an extra instruction *before* the branch
        // shifts every absolute index, but untouched blocks keep hashes.
        let v1 = func(vec![
            Instr::GetL(0), // b0
            Instr::JmpZ(4), // b0 -> b2
            Instr::Int(7),  // b1
            Instr::Jmp(5),  // b1 -> b3
            Instr::Int(9),  // b2
            Instr::Ret,     // b3
        ]);
        let v2 = func(vec![
            Instr::GetL(0), // b0 (one instr longer)
            Instr::Dup,
            Instr::Pop,
            Instr::JmpZ(6), // b0 -> b2
            Instr::Int(7),  // b1
            Instr::Jmp(7),  // b1 -> b3
            Instr::Int(9),  // b2
            Instr::Ret,     // b3
        ]);
        let h1 = Cfg::build(&v1).block_hashes(&v1);
        let h2 = Cfg::build(&v2).block_hashes(&v2);
        assert_ne!(h1[0], h2[0], "edited block changes");
        assert_eq!(h1[1], h2[1], "untouched block keeps its hash");
        assert_eq!(h1[2], h2[2]);
        assert_eq!(h1[3], h2[3]);
    }
}
