//! Control-flow graph over bytecode.
//!
//! The JIT's profiling translator inserts counters at *bytecode-level basic
//! blocks* (paper §V-A); this module computes those blocks. Block ids are
//! dense per function and stable across runs, so profile counters keyed by
//! `BlockId` can be serialized into the Jump-Start package and applied in a
//! different process.


use crate::program::Func;

/// Dense id of a bytecode basic block within one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The function entry block.
    pub const ENTRY: BlockId = BlockId(0);

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// One bytecode basic block: a half-open instruction range plus successors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgBlock {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor taken when the terminating conditional branch fires (or the
    /// unconditional jump target). `None` for returns and fallthrough-only.
    pub taken: Option<BlockId>,
    /// Fallthrough successor, if control can fall through.
    pub fallthrough: Option<BlockId>,
}

impl CfgBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never produced by [`Cfg::build`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the block's successors.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.taken.into_iter().chain(self.fallthrough)
    }
}

/// The control-flow graph of one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<CfgBlock>,
    // Map from instruction index to owning block, for profiling lookups.
    block_of_instr: Vec<BlockId>,
}

impl Cfg {
    /// Computes basic blocks for `func` with the classic leader algorithm.
    pub fn build(func: &Func) -> Cfg {
        let code = &func.code;
        let n = code.len();
        let mut is_leader = vec![false; n.max(1)];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, instr) in code.iter().enumerate() {
            if let Some(t) = instr.jump_target() {
                if (t as usize) < n {
                    is_leader[t as usize] = true;
                }
            }
            if instr.ends_block() && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        // Assign block ids in instruction order.
        let mut starts: Vec<u32> = Vec::new();
        for (i, &l) in is_leader.iter().enumerate().take(n) {
            if l {
                starts.push(i as u32);
            }
        }
        let mut block_of_instr = vec![BlockId(0); n];
        let mut blocks = Vec::with_capacity(starts.len());
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(n as u32);
            for i in start..end {
                block_of_instr[i as usize] = BlockId(bi as u32);
            }
            blocks.push(CfgBlock { start, end, taken: None, fallthrough: None });
        }
        // Wire successors now that instruction->block is known.
        for bi in 0..blocks.len() {
            let last_idx = blocks[bi].end - 1;
            let last = &code[last_idx as usize];
            let taken = last
                .jump_target()
                .map(|t| block_of_instr[t as usize]);
            let falls = !last.is_terminal() && (blocks[bi].end as usize) < n;
            blocks[bi].taken = taken;
            blocks[bi].fallthrough = if falls {
                Some(block_of_instr[blocks[bi].end as usize])
            } else {
                None
            };
        }
        Cfg { blocks, block_of_instr }
    }

    /// The blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> &[CfgBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the function had no code.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing instruction `idx`.
    pub fn block_of(&self, idx: u32) -> BlockId {
        self.block_of_instr[idx as usize]
    }

    /// Resolves a block id.
    pub fn block(&self, id: BlockId) -> &CfgBlock {
        &self.blocks[id.index()]
    }

    /// Predecessor counts per block (entry gets an implicit +1).
    pub fn pred_counts(&self) -> Vec<u32> {
        let mut preds = vec![0u32; self.blocks.len()];
        if !self.blocks.is_empty() {
            preds[0] += 1;
        }
        for b in &self.blocks {
            for s in b.successors() {
                preds[s.index()] += 1;
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FuncId, StrId, UnitId};
    use crate::instr::{BinOp, Instr};

    fn func(code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(0),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params: 1,
            locals: 1,
            class: None,
            code,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let f = func(vec![Instr::Int(1), Instr::Int(2), Instr::Bin(BinOp::Add), Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 1);
        let b = cfg.block(BlockId::ENTRY);
        assert_eq!(b.len(), 4);
        assert_eq!(b.taken, None);
        assert_eq!(b.fallthrough, None);
    }

    #[test]
    fn diamond_has_four_blocks() {
        // if (l0) { 1 } else { 2 }; ret
        let f = func(vec![
            Instr::GetL(0),   // 0  b0
            Instr::JmpZ(4),   // 1  b0 -> taken b2, fall b1
            Instr::Int(1),    // 2  b1
            Instr::Jmp(5),    // 3  b1 -> b3
            Instr::Int(2),    // 4  b2 (falls to b3)
            Instr::Ret,       // 5  b3
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 4);
        let b0 = cfg.block(BlockId(0));
        assert_eq!(b0.taken, Some(BlockId(2)));
        assert_eq!(b0.fallthrough, Some(BlockId(1)));
        let b1 = cfg.block(BlockId(1));
        assert_eq!(b1.taken, Some(BlockId(3)));
        assert_eq!(b1.fallthrough, None);
        let b2 = cfg.block(BlockId(2));
        assert_eq!(b2.taken, None);
        assert_eq!(b2.fallthrough, Some(BlockId(3)));
        assert_eq!(cfg.pred_counts(), vec![1, 1, 1, 2]);
    }

    #[test]
    fn loop_back_edge() {
        let f = func(vec![
            Instr::GetL(0), // 0 b0 (loop header)
            Instr::JmpZ(6), // 1 b0
            Instr::GetL(0), // 2 b1
            Instr::Int(1),  // 3
            Instr::Bin(BinOp::Sub),
            Instr::Jmp(0),  // 5 b1 -> b0
            Instr::Ret,     // 6 b2
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.block(BlockId(1)).taken, Some(BlockId(0)));
        assert_eq!(cfg.block_of(4), BlockId(1));
    }

    #[test]
    fn block_of_maps_every_instr() {
        let f = func(vec![Instr::GetL(0), Instr::JmpNZ(0), Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.block_of(0), BlockId(0));
        assert_eq!(cfg.block_of(2), BlockId(1));
    }
}
