//! Newtype identifiers for repo entities.
//!
//! All cross-references inside the repo are by dense integer id, mirroring
//! HHVM's repo-authoritative mode where units, classes and functions are
//! numbered at offline-compile time. Dense ids also make profile data
//! (per-function counter tables, call graphs) cheap to index and serialize.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> $name {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of an interned string in the repo string table.
    StrId,
    "s"
);
define_id!(
    /// Identifier of a function (free function or method) in the repo.
    FuncId,
    "f"
);
define_id!(
    /// Identifier of a class in the repo.
    ClassId,
    "c"
);
define_id!(
    /// Identifier of a compilation unit (one source file) in the repo.
    UnitId,
    "u"
);
define_id!(
    /// Identifier of a literal (static) array in the repo.
    LitArrId,
    "a"
);

/// Index of a local variable slot within a function frame.
///
/// Parameters occupy the first slots, followed by named locals and
/// compiler temporaries.
pub type Local = u16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw() {
        let f = FuncId::new(42);
        assert_eq!(f.index(), 42);
        assert_eq!(u32::from(f), 42);
        assert_eq!(FuncId::from(42u32), f);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", StrId::new(3)), "s3");
        assert_eq!(format!("{:?}", ClassId::new(7)), "c7");
        assert_eq!(format!("{}", UnitId::new(0)), "u0");
        assert_eq!(format!("{}", LitArrId::new(9)), "a9");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(FuncId::new(1) < FuncId::new(2));
        assert_eq!(FuncId::new(5), FuncId::new(5));
    }
}
