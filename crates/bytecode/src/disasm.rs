//! Textual disassembler, for debugging and golden tests.

use std::fmt::Write as _;

use crate::cfg::Cfg;
use crate::ids::{FuncId, UnitId};
use crate::instr::Instr;
use crate::repo::Repo;

/// Renders one function as human-readable text, one instruction per line,
/// with basic-block markers matching [`Cfg::build`].
pub fn disasm_func(repo: &Repo, id: FuncId) -> String {
    let func = repo.func(id);
    let mut out = String::new();
    let kind = if func.is_method() {
        "method"
    } else {
        "function"
    };
    let _ = writeln!(
        out,
        "{} {}({} params, {} locals) {{",
        kind,
        repo.str(func.name),
        func.params,
        func.locals
    );
    let cfg = Cfg::build(func);
    for (bi, block) in cfg.blocks().iter().enumerate() {
        let _ = writeln!(out, "b{bi}:");
        for i in block.start..block.end {
            let _ = writeln!(out, "  {:4}  {}", i, render(repo, &func.code[i as usize]));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every function and class of a unit.
pub fn disasm_unit(repo: &Repo, id: UnitId) -> String {
    let unit = repo.unit(id);
    let mut out = format!("// unit {}\n", repo.str(unit.name));
    for &c in &unit.classes {
        let class = repo.class(c);
        let parent = class
            .parent
            .map(|p| format!(" extends {}", repo.str(repo.class(p).name)))
            .unwrap_or_default();
        let _ = writeln!(out, "class {}{} {{", repo.str(class.name), parent);
        for p in &class.props {
            let _ = writeln!(out, "  prop ${};", repo.str(p.name));
        }
        out.push_str("}\n");
    }
    for &f in &unit.funcs {
        out.push_str(&disasm_func(repo, f));
    }
    out
}

fn render(repo: &Repo, i: &Instr) -> String {
    match *i {
        Instr::Null => "null".into(),
        Instr::True => "true".into(),
        Instr::False => "false".into(),
        Instr::Int(v) => format!("int {v}"),
        Instr::Double(v) => format!("double {v}"),
        Instr::Str(s) => format!("str {:?}", repo.str(s)),
        Instr::LitArr(a) => format!("litarr {a}"),
        Instr::Pop => "pop".into(),
        Instr::Dup => "dup".into(),
        Instr::GetL(l) => format!("getl ${l}"),
        Instr::SetL(l) => format!("setl ${l}"),
        Instr::IncL(l, d) => format!("incl ${l}, {d}"),
        Instr::Bin(op) => op.mnemonic().to_string(),
        Instr::Un(op) => op.mnemonic().to_string(),
        Instr::Jmp(t) => format!("jmp @{t}"),
        Instr::JmpZ(t) => format!("jmpz @{t}"),
        Instr::JmpNZ(t) => format!("jmpnz @{t}"),
        Instr::Call { func, argc } => {
            format!("call {}({argc})", repo.str(repo.func(func).name))
        }
        Instr::CallMethod { name, argc } => {
            format!("callmethod {:?}({argc})", repo.str(name))
        }
        Instr::CallBuiltin { builtin, argc } => {
            format!("callbuiltin {}({argc})", builtin.name())
        }
        Instr::Ret => "ret".into(),
        Instr::NewObj(c) => format!("newobj {}", repo.str(repo.class(c).name)),
        Instr::GetProp(s) => format!("getprop {:?}", repo.str(s)),
        Instr::SetProp(s) => format!("setprop {:?}", repo.str(s)),
        Instr::This => "this".into(),
        Instr::NewVec(n) => format!("newvec {n}"),
        Instr::NewDict(n) => format!("newdict {n}"),
        Instr::Idx => "idx".into(),
        Instr::SetIdx => "setidx".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::BinOp;
    use crate::repo::RepoBuilder;

    #[test]
    fn disasm_contains_blocks_and_mnemonics() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let mut f = FuncBuilder::new("f", 1);
        let out = f.new_label();
        f.emit(Instr::GetL(0));
        f.emit_jmp_z(out);
        f.emit(Instr::Int(1));
        f.emit(Instr::Ret);
        f.bind(out);
        f.emit(Instr::Int(2));
        f.emit(Instr::Ret);
        let id = b.define_func(u, f);
        let repo = b.finish();
        let text = disasm_func(&repo, id);
        assert!(text.contains("function f(1 params"));
        assert!(text.contains("b0:"));
        assert!(text.contains("b2:"));
        assert!(text.contains("jmpz @4"));
        let _ = BinOp::Add;
    }

    #[test]
    fn disasm_unit_lists_classes() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let base = b.declare_class(u, "Base", None, vec![]);
        b.declare_class(u, "Kid", Some(base), vec![]);
        let repo = b.finish();
        let text = disasm_unit(&repo, u);
        assert!(text.contains("class Base"));
        assert!(text.contains("class Kid extends Base"));
    }
}
