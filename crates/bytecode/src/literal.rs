//! Literal (static) values baked into the repo at offline-compile time.

use crate::ids::{LitArrId, StrId};

/// A compile-time constant value.
///
/// Literals appear as property defaults and as elements of static arrays.
/// They reference strings and arrays by id, so a literal is `Copy` and the
/// repo owns all the actual data — exactly the property that makes the
/// "repo global data" category of the Jump-Start package (paper §IV-B) a
/// simple list of ids to preload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Literal {
    /// The null value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An interned string.
    Str(StrId),
    /// A static array (vec or dict) stored in the repo.
    Arr(LitArrId),
}

/// A static array stored once in the repo and shared by all requests.
#[derive(Clone, Debug, PartialEq)]
pub enum LitArray {
    /// A vector of literals.
    Vec(Vec<Literal>),
    /// A dict of string-keyed literals, in insertion order.
    Dict(Vec<(StrId, Literal)>),
}

impl LitArray {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            LitArray::Vec(v) => v.len(),
            LitArray::Dict(d) => d.len(),
        }
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate in-memory footprint in bytes, used by the lazy loader
    /// and the warmup model to cost repo metadata loading.
    pub fn footprint_bytes(&self) -> usize {
        16 + self.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_literal_is_null() {
        assert_eq!(Literal::default(), Literal::Null);
    }

    #[test]
    fn lit_array_len_and_footprint() {
        let v = LitArray::Vec(vec![Literal::Int(1), Literal::Int(2)]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.footprint_bytes(), 16 + 48);

        let d = LitArray::Dict(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.footprint_bytes(), 16);
    }
}
