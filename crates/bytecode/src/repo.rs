//! The bytecode repo: the whole program, compiled offline.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::builder::FuncBuilder;
use crate::ids::{ClassId, FuncId, LitArrId, StrId, UnitId};
use crate::literal::{LitArray, Literal};
use crate::program::{Class, Func, PropDecl, Unit, Visibility};

/// Errors raised while assembling a repo.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepoError {
    /// Two functions were defined with the same name.
    DuplicateFunc(String),
    /// Two classes were defined with the same name.
    DuplicateClass(String),
    /// A class referenced a parent that was never defined.
    UnknownParent { class: String, parent: String },
    /// The class hierarchy contains a cycle through the named class.
    InheritanceCycle(String),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::DuplicateFunc(n) => write!(f, "duplicate function `{n}`"),
            RepoError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            RepoError::UnknownParent { class, parent } => {
                write!(f, "class `{class}` extends unknown class `{parent}`")
            }
            RepoError::InheritanceCycle(n) => {
                write!(f, "inheritance cycle through class `{n}`")
            }
        }
    }
}

impl std::error::Error for RepoError {}

/// The immutable, whole-program bytecode container.
///
/// A `Repo` is cheap to share across simulated servers (it is deployed to
/// the whole fleet, paper §II-A); wrap it in [`Arc`] via [`Repo::into_shared`].
#[derive(Debug)]
pub struct Repo {
    strings: Vec<String>,
    string_ids: HashMap<String, StrId>,
    lit_arrays: Vec<LitArray>,
    units: Vec<Unit>,
    funcs: Vec<Func>,
    classes: Vec<Class>,
    func_names: HashMap<StrId, FuncId>,
    class_names: HashMap<StrId, ClassId>,
}

impl Repo {
    /// Resolves an interned string id to its text.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this repo.
    pub fn str(&self, id: StrId) -> &str {
        &self.strings[id.index()]
    }

    /// Looks up an already-interned string.
    pub fn str_id(&self, s: &str) -> Option<StrId> {
        self.string_ids.get(s).copied()
    }

    /// Number of interned strings.
    pub fn string_count(&self) -> usize {
        self.strings.len()
    }

    /// Resolves a literal-array id.
    pub fn lit_array(&self, id: LitArrId) -> &LitArray {
        &self.lit_arrays[id.index()]
    }

    /// Number of literal arrays.
    pub fn lit_array_count(&self) -> usize {
        self.lit_arrays.len()
    }

    /// All functions, indexable by [`FuncId`].
    pub fn funcs(&self) -> &[Func] {
        &self.funcs
    }

    /// Resolves a function id.
    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.index()]
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Func> {
        let id = self.str_id(name)?;
        self.func_names.get(&id).map(|&f| self.func(f))
    }

    /// All classes, indexable by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// Resolves a class id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<&Class> {
        let id = self.str_id(name)?;
        self.class_names.get(&id).map(|&c| self.class(c))
    }

    /// All units, indexable by [`UnitId`].
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Resolves a unit id.
    pub fn unit(&self, id: UnitId) -> &Unit {
        &self.units[id.index()]
    }

    /// Total bytecode bytes across all functions (drives Fig. 1's scale).
    pub fn total_bytecode_bytes(&self) -> usize {
        self.funcs.iter().map(Func::bytecode_bytes).sum()
    }

    /// Walks `class` and its ancestors, outermost ancestor first.
    ///
    /// Property layout concatenates each layer's properties in this order so
    /// that subtyping is honored (paper §V-C: "only reorders properties
    /// within each layer of the class hierarchy").
    pub fn ancestry(&self, class: ClassId) -> Vec<ClassId> {
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.class(c).parent;
        }
        chain.reverse();
        chain
    }

    /// Resolves a method by name on `class`, walking up the hierarchy.
    pub fn resolve_method(&self, class: ClassId, name: StrId) -> Option<FuncId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let cls = self.class(c);
            if let Some(f) = cls.declared_method(name) {
                return Some(f);
            }
            cur = cls.parent;
        }
        None
    }

    /// Wraps the repo for sharing across simulated servers.
    pub fn into_shared(self) -> Arc<Repo> {
        Arc::new(self)
    }
}

/// Incremental constructor for a [`Repo`].
///
/// The builder interns strings, assigns dense ids, and validates the class
/// hierarchy in [`RepoBuilder::try_finish`].
#[derive(Debug, Default)]
pub struct RepoBuilder {
    strings: Vec<String>,
    string_ids: HashMap<String, StrId>,
    lit_arrays: Vec<LitArray>,
    units: Vec<Unit>,
    funcs: Vec<Func>,
    classes: Vec<Class>,
    func_names: HashMap<StrId, FuncId>,
    class_names: HashMap<StrId, ClassId>,
    errors: Vec<RepoError>,
}

impl RepoBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string, returning its id.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = StrId::new(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.string_ids.insert(s.to_owned(), id);
        id
    }

    /// Adds a literal array, returning its id.
    pub fn add_lit_array(&mut self, arr: LitArray) -> LitArrId {
        let id = LitArrId::new(self.lit_arrays.len() as u32);
        self.lit_arrays.push(arr);
        id
    }

    /// Declares a new unit (source file).
    pub fn declare_unit(&mut self, name: &str) -> UnitId {
        let name = self.intern(name);
        let id = UnitId::new(self.units.len() as u32);
        self.units.push(Unit {
            id,
            name,
            funcs: Vec::new(),
            classes: Vec::new(),
        });
        id
    }

    /// Finalizes a [`FuncBuilder`] into the repo as a free function.
    pub fn define_func(&mut self, unit: UnitId, fb: FuncBuilder) -> FuncId {
        self.define_func_impl(unit, fb, None)
    }

    /// Finalizes a [`FuncBuilder`] into the repo as a method of `class`.
    pub fn define_method(&mut self, unit: UnitId, class: ClassId, fb: FuncBuilder) -> FuncId {
        let id = self.define_func_impl(unit, fb, Some(class));
        let name = self.funcs[id.index()].name;
        // Method names are `Class::method`; register under the bare method
        // name on the class for dynamic dispatch.
        let bare = {
            let full = &self.strings[name.index()];
            let bare = full.rsplit("::").next().unwrap_or(full).to_owned();
            self.intern(&bare)
        };
        self.classes[class.index()].methods.push((bare, id));
        id
    }

    fn define_func_impl(
        &mut self,
        unit: UnitId,
        fb: FuncBuilder,
        class: Option<ClassId>,
    ) -> FuncId {
        let id = FuncId::new(self.funcs.len() as u32);
        let func = fb.finish(self, id, unit, class);
        if class.is_none() {
            let prev = self.func_names.insert(func.name, id);
            if prev.is_some() {
                let name = self.strings[func.name.index()].clone();
                self.errors.push(RepoError::DuplicateFunc(name));
            }
        }
        self.units[unit.index()].funcs.push(id);
        self.funcs.push(func);
        id
    }

    /// Declares a class. Properties are in source order; methods are added
    /// via [`RepoBuilder::define_method`].
    pub fn declare_class(
        &mut self,
        unit: UnitId,
        name: &str,
        parent: Option<ClassId>,
        props: Vec<(String, Literal, Visibility)>,
    ) -> ClassId {
        let name = self.intern(name);
        let id = ClassId::new(self.classes.len() as u32);
        let props = props
            .into_iter()
            .map(|(n, default, visibility)| PropDecl {
                name: self.intern(&n),
                default,
                visibility,
            })
            .collect();
        let prev = self.class_names.insert(name, id);
        if prev.is_some() {
            let n = self.strings[name.index()].clone();
            self.errors.push(RepoError::DuplicateClass(n));
        }
        self.classes.push(Class {
            id,
            name,
            parent,
            unit,
            props,
            methods: Vec::new(),
        });
        self.units[unit.index()].classes.push(id);
        id
    }

    /// Looks up a class id by name (for forward references resolved by the
    /// caller in two passes).
    pub fn class_id_by_name(&self, name: &str) -> Option<ClassId> {
        let id = self.string_ids.get(name)?;
        self.class_names.get(id).copied()
    }

    /// Looks up a function id by name.
    pub fn func_id_by_name(&self, name: &str) -> Option<FuncId> {
        let id = self.string_ids.get(name)?;
        self.func_names.get(id).copied()
    }

    /// Validates and produces the immutable [`Repo`].
    ///
    /// # Errors
    ///
    /// Returns the first accumulated [`RepoError`] (duplicates, unknown
    /// parents, inheritance cycles).
    pub fn try_finish(mut self) -> Result<Repo, RepoError> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        // Detect inheritance cycles with a colored DFS.
        let n = self.classes.len();
        let mut color = vec![0u8; n]; // 0 = white, 1 = gray, 2 = black
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((c, processed)) = stack.pop() {
                if processed {
                    color[c] = 2;
                    continue;
                }
                if color[c] == 2 {
                    continue;
                }
                if color[c] == 1 {
                    let name = self.strings[self.classes[c].name.index()].clone();
                    return Err(RepoError::InheritanceCycle(name));
                }
                color[c] = 1;
                stack.push((c, true));
                if let Some(p) = self.classes[c].parent {
                    if p.index() >= n {
                        let class = self.strings[self.classes[c].name.index()].clone();
                        return Err(RepoError::UnknownParent {
                            class,
                            parent: format!("{p:?}"),
                        });
                    }
                    match color[p.index()] {
                        0 => stack.push((p.index(), false)),
                        1 => {
                            let name = self.strings[self.classes[p.index()].name.index()].clone();
                            return Err(RepoError::InheritanceCycle(name));
                        }
                        _ => {}
                    }
                }
            }
        }
        self.errors.clear();
        Ok(Repo {
            strings: self.strings,
            string_ids: self.string_ids,
            lit_arrays: self.lit_arrays,
            units: self.units,
            funcs: self.funcs,
            classes: self.classes,
            func_names: self.func_names,
            class_names: self.class_names,
        })
    }

    /// Like [`RepoBuilder::try_finish`] but panics on error; convenient in
    /// tests and generators that construct known-valid programs.
    ///
    /// # Panics
    ///
    /// Panics if the repo is structurally invalid.
    pub fn finish(self) -> Repo {
        self.try_finish().expect("repo is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn intern_deduplicates() {
        let mut b = RepoBuilder::new();
        let a = b.intern("hello");
        let c = b.intern("hello");
        let d = b.intern("world");
        assert_eq!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn duplicate_function_is_an_error() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("x.hl");
        let mut f1 = FuncBuilder::new("f", 0);
        f1.emit(Instr::Null);
        f1.emit(Instr::Ret);
        let mut f2 = FuncBuilder::new("f", 0);
        f2.emit(Instr::Null);
        f2.emit(Instr::Ret);
        b.define_func(u, f1);
        b.define_func(u, f2);
        assert_eq!(
            b.try_finish().unwrap_err(),
            RepoError::DuplicateFunc("f".into())
        );
    }

    #[test]
    fn inheritance_cycle_detected() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("x.hl");
        let a = b.declare_class(u, "A", None, vec![]);
        let bid = b.declare_class(u, "B", Some(a), vec![]);
        // Introduce a cycle A -> B.
        b.classes[a.index()].parent = Some(bid);
        assert!(matches!(
            b.try_finish(),
            Err(RepoError::InheritanceCycle(_))
        ));
    }

    #[test]
    fn method_resolution_walks_ancestry() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("x.hl");
        let base = b.declare_class(u, "Base", None, vec![]);
        let derived = b.declare_class(u, "Derived", Some(base), vec![]);
        let mut m = FuncBuilder::new("Base::greet", 0);
        m.emit(Instr::Null);
        m.emit(Instr::Ret);
        let mid = b.define_method(u, base, m);
        let repo = b.finish();
        let greet = repo.str_id("greet").unwrap();
        assert_eq!(repo.resolve_method(derived, greet), Some(mid));
        assert_eq!(repo.ancestry(derived), vec![base, derived]);
    }

    #[test]
    fn override_shadows_parent_method() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("x.hl");
        let base = b.declare_class(u, "Base", None, vec![]);
        let derived = b.declare_class(u, "Derived", Some(base), vec![]);
        let mut m1 = FuncBuilder::new("Base::f", 0);
        m1.emit(Instr::Int(1));
        m1.emit(Instr::Ret);
        b.define_method(u, base, m1);
        let mut m2 = FuncBuilder::new("Derived::f", 0);
        m2.emit(Instr::Int(2));
        m2.emit(Instr::Ret);
        let over = b.define_method(u, derived, m2);
        let repo = b.finish();
        let f = repo.str_id("f").unwrap();
        assert_eq!(repo.resolve_method(derived, f), Some(over));
    }
}
