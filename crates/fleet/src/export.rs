//! Fleet-run telemetry: per-server registries, fleet-wide aggregation,
//! and Chrome-trace export of warmup timelines.
//!
//! A fleet simulation produces one [`Timeline`] per server. This module
//! renders those into the unified telemetry layer: each server gets a
//! metrics registry (boot time, ready time, capacity loss) that
//! [`telemetry::aggregate`] folds into fleet percentiles, and the whole
//! deployment exports as a Chrome trace with one process track per
//! simulated server — lifecycle points A/B/C as instants, normalized RPS
//! and code size as counter series.

use std::borrow::Cow;

use telemetry::{AttrValue, Event, EventKind, Trace, TrackDump};

use crate::metrics::Timeline;
use crate::warmup::TimelineClass;

const MS_TO_NS: u64 = 1_000_000;

/// Builds one server's metrics registry from its warmup timeline.
///
/// Gauges: `server.boot_ms` (serve start), `server.ready_ms` (first time
/// normalized RPS reaches 0.9; absent if never), and the f64 gauge
/// `server.capacity_loss` over `window_ms`. When a classifier verdict is
/// supplied, the class lands as a `warmup.class.<name>` counter (so
/// [`telemetry::aggregate`]'s `n` field counts servers per class across
/// the fleet) and the steady time as `warmup.steady_ms`.
pub fn server_registry(
    tl: &Timeline,
    window_ms: u64,
    class: Option<&TimelineClass>,
) -> telemetry::Registry {
    let reg = telemetry::Registry::default();
    reg.gauge("server.boot_ms").set(tl.serve_start_ms);
    if let Some(ready) = tl.time_to_rps(0.9) {
        reg.gauge("server.ready_ms").set(ready);
    }
    reg.gauge_f64("server.capacity_loss")
        .set(tl.capacity_loss_over(window_ms));
    if let Some(verdict) = class {
        reg.counter(&format!("warmup.class.{}", verdict.class.name()))
            .inc();
        if let Some(steady) = verdict.steady_ms {
            reg.gauge("warmup.steady_ms").set(steady);
        }
    }
    reg
}

fn instant(name: &'static str, t_ms: u64, attrs: Vec<(&'static str, AttrValue)>) -> Event {
    Event {
        kind: EventKind::Instant,
        name: Cow::Borrowed(name),
        ts_ns: t_ms * MS_TO_NS,
        attrs,
    }
}

fn counter(name: &'static str, t_ms: u64, value: f64) -> Event {
    Event {
        kind: EventKind::Counter(value),
        name: Cow::Borrowed(name),
        ts_ns: t_ms * MS_TO_NS,
        attrs: Vec::new(),
    }
}

/// Renders fleet timelines as a [`telemetry::Trace`]: one process (pid)
/// per server, with the serve-start and A/B/C lifecycle points as
/// instants and the sampled `rps_norm` / `latency_ms` / `code_bytes`
/// curves as counter series. Simulated milliseconds map to trace
/// nanoseconds. `jstrace --warmup` rebuilds timelines from exactly these
/// series, so their names are a schema.
pub fn timelines_to_trace(timelines: &[Timeline], label: &str) -> Trace {
    timelines_to_trace_capped(timelines, label, usize::MAX, usize::MAX)
}

/// [`timelines_to_trace`] with memory bounds for paper-scale fleets: at
/// most `max_tracks` servers get a track (the rest are counted in
/// [`Trace::dropped`]), and each track's sample series is thinned to at
/// most `max_samples` evenly-strided points (the last sample is always
/// kept so the converged value survives). Lifecycle instants are never
/// dropped.
pub fn timelines_to_trace_capped(
    timelines: &[Timeline],
    label: &str,
    max_tracks: usize,
    max_samples: usize,
) -> Trace {
    let mut tracks = Vec::new();
    let shown = timelines.len().min(max_tracks);
    for (i, tl) in timelines[..shown].iter().enumerate() {
        let mut events = Vec::new();
        events.push(instant(
            "serve-start",
            tl.serve_start_ms,
            vec![("t_ms", AttrValue::U64(tl.serve_start_ms))],
        ));
        for (name, point) in [
            ("point-A", tl.point_a_ms),
            ("point-B", tl.point_b_ms),
            ("point-C", tl.point_c_ms),
        ] {
            if let Some(t_ms) = point {
                events.push(instant(name, t_ms, vec![("t_ms", AttrValue::U64(t_ms))]));
            }
        }
        let stride = tl.samples.len().div_ceil(max_samples.max(1)).max(1);
        let last = tl.samples.len().wrapping_sub(1);
        for (k, s) in tl.samples.iter().enumerate() {
            if k % stride != 0 && k != last {
                continue;
            }
            events.push(counter("rps_norm", s.t_ms, s.rps_norm));
            events.push(counter("latency_ms", s.t_ms, s.latency_ms));
            events.push(counter("code_bytes", s.t_ms, s.code_bytes as f64));
        }
        // Chrome requires non-decreasing timestamps per track; the
        // lifecycle instants interleave with the sample series.
        events.sort_by_key(|e| e.ts_ns);
        let id = i as u64 + 1;
        tracks.push(TrackDump {
            id,
            pid: id as u32,
            name: "timeline".to_string(),
            process_name: Some(format!("{label} server {i}")),
            events,
        });
    }
    Trace {
        tracks,
        dropped: (timelines.len() - shown) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Sample;

    fn timeline(serve_start_ms: u64) -> Timeline {
        Timeline {
            samples: (1..=10)
                .map(|i| Sample {
                    t_ms: i * 1000,
                    rps_norm: (i as f64 / 10.0).min(1.0),
                    latency_ms: 2.0,
                    code_bytes: i * 4096,
                })
                .collect(),
            serve_start_ms,
            point_a_ms: Some(2_000),
            point_b_ms: Some(5_000),
            point_c_ms: Some(7_000),
        }
    }

    #[test]
    fn server_registry_snapshots_boot_ready_loss() {
        let tl = timeline(500);
        let reg = server_registry(&tl, 10_000, None);
        assert_eq!(reg.value_u64("server.boot_ms"), 500);
        assert_eq!(reg.value_u64("server.ready_ms"), 9_000);
        let loss = reg.scalar("server.capacity_loss").unwrap();
        assert!(loss > 0.0 && loss < 1.0, "got {loss}");
        assert!(!reg.contains("warmup.class.warmup"));

        // A server that never reaches 0.9 has no ready gauge.
        let mut cold = timeline(500);
        for s in &mut cold.samples {
            s.rps_norm = 0.3;
        }
        let reg = server_registry(&cold, 10_000, None);
        assert!(!reg.contains("server.ready_ms"));
    }

    #[test]
    fn server_registry_carries_warmup_class() {
        let tl = timeline(500);
        let verdict = crate::warmup::classify_timeline(&tl, 10_000, &Default::default());
        let reg = server_registry(&tl, 10_000, Some(&verdict));
        let name = format!("warmup.class.{}", verdict.class.name());
        assert_eq!(reg.value_u64(&name), 1);
        if let Some(steady) = verdict.steady_ms {
            assert_eq!(reg.value_u64("warmup.steady_ms"), steady);
        }
    }

    #[test]
    fn fleet_trace_is_chrome_valid_with_one_pid_per_server() {
        let timelines: Vec<Timeline> = (0..3).map(|i| timeline(500 + i * 100)).collect();
        let trace = timelines_to_trace(&timelines, "jumpstart");
        assert_eq!(trace.tracks.len(), 3);
        let pids: std::collections::BTreeSet<u32> = trace.tracks.iter().map(|t| t.pid).collect();
        assert_eq!(pids.len(), 3, "one process per server");

        let json = trace.to_chrome_json();
        let summary = telemetry::validate_chrome(&json).expect("valid Chrome trace");
        assert_eq!(summary.tracks, 3);
        // serve-start + A/B/C per server.
        assert_eq!(summary.instants, 4 * 3);
        assert!(json.contains("jumpstart server 0"));
        assert!(json.contains("point-B"));
        // All three counter series are exported (jstrace --warmup
        // rebuilds timelines from them).
        for series in ["rps_norm", "latency_ms", "code_bytes"] {
            assert!(json.contains(series), "missing counter series {series}");
        }
    }

    #[test]
    fn capped_trace_bounds_tracks_and_downsamples() {
        let timelines: Vec<Timeline> = (0..6).map(|i| timeline(500 + i * 100)).collect();
        let trace = timelines_to_trace_capped(&timelines, "fleet", 2, 4);
        assert_eq!(trace.tracks.len(), 2);
        assert_eq!(trace.dropped, 4);
        for track in &trace.tracks {
            let counters = track
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Counter(_)) && e.name == "rps_norm")
                .count();
            assert!(counters <= 5, "downsampled to ~4 + last, got {counters}");
            // The converged tail sample survives thinning.
            let last_ts = track.events.iter().map(|e| e.ts_ns).max().unwrap();
            assert_eq!(last_ts, 10_000 * MS_TO_NS);
        }
        let json = trace.to_chrome_json();
        telemetry::validate_chrome(&json).expect("valid Chrome trace");
    }

    #[test]
    fn fleet_aggregation_yields_percentiles() {
        let snaps: Vec<telemetry::Snapshot> = (0..8)
            .map(|i| server_registry(&timeline(400 + i * 50), 10_000, None).snapshot())
            .collect();
        let agg = telemetry::aggregate(&snaps);
        assert_eq!(agg.servers, 8);
        let boot = agg.stat("server.boot_ms").expect("boot stat");
        assert_eq!(boot.n, 8);
        assert_eq!(boot.min, 400.0);
        assert_eq!(boot.max, 750.0);
        assert!(boot.p50 >= boot.min && boot.p50 <= boot.p95);
        assert!(boot.p95 <= boot.p99 && boot.p99 <= boot.max);
    }
}
