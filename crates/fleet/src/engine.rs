//! The discrete-event core: an arena-backed event pool and a binary-heap
//! scheduler over integer-nanosecond timestamps.
//!
//! The old fleet simulator stepped every server through every simulated
//! second, so a 2000-server push cost `servers × duration` work even when
//! almost every server was idle (booting is closed-form, steady state is
//! constant). The event core inverts that: simulation objects schedule
//! *wakeups* for the instants where their state can actually change, and
//! pay nothing in between. Idle servers have no pending events and cost
//! zero.
//!
//! Determinism contract: events firing at the same timestamp pop in
//! scheduling order (a monotone sequence number breaks ties), so a run is
//! a pure function of the schedule calls — never of heap internals. The
//! fleet layer shards *servers*, not time: each shard owns one
//! [`EventQueue`] over its subset of servers, and because servers are
//! independent and every per-server random decision comes from that
//! server's own seeded RNG stream, merging shard outputs by server id
//! yields bit-identical results for any shard count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in integer nanoseconds (no float drift in the clock).
pub type SimNs = u64;

/// One simulated millisecond in [`SimNs`].
pub const MS: SimNs = 1_000_000;

/// Pool slot index of a scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventId(u32);

/// A `Vec`-backed arena for event payloads with a free list, so a
/// long-running simulation recycles slots instead of growing without
/// bound or hitting the allocator per event.
#[derive(Debug)]
struct EventPool<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for EventPool<T> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> EventPool<T> {
    fn alloc(&mut self, payload: T) -> EventId {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(payload);
                EventId(i)
            }
            None => {
                self.slots.push(Some(payload));
                EventId((self.slots.len() - 1) as u32)
            }
        }
    }

    fn take(&mut self, id: EventId) -> T {
        let payload = self.slots[id.0 as usize].take().expect("live event slot");
        self.free.push(id.0);
        payload
    }

    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// A discrete-event scheduler: `schedule` wakeups, `pop` them in time
/// order. Payloads live in the arena; the heap holds only
/// `(time, seq, id)` triples.
#[derive(Debug)]
pub struct EventQueue<T> {
    pool: EventPool<T>,
    heap: BinaryHeap<Reverse<(SimNs, u64, EventId)>>,
    seq: u64,
    processed: u64,
    now: SimNs,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self {
            pool: EventPool::default(),
            heap: BinaryHeap::new(),
            seq: 0,
            processed: 0,
            now: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at absolute time `at`. Events at equal
    /// timestamps fire in scheduling order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time — the past is
    /// immutable in a discrete-event world.
    pub fn schedule(&mut self, at: SimNs, payload: T) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let id = self.pool.alloc(payload);
        self.heap.push(Reverse((at, self.seq, id)));
        self.seq += 1;
        id
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimNs, T)> {
        let Reverse((at, _, id)) = self.heap.pop()?;
        self.now = at;
        self.processed += 1;
        Some((at, self.pool.take(id)))
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimNs {
        self.now
    }

    /// Events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events scheduled but not yet fired.
    pub fn pending(&self) -> usize {
        self.pool.live()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(5 * MS, "late");
        q.schedule(MS, "a");
        q.schedule(MS, "b");
        q.schedule(3 * MS, "mid");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "mid", "late"]);
        assert_eq!(q.processed(), 4);
        assert_eq!(q.now(), 5 * MS);
        assert!(q.is_empty());
    }

    #[test]
    fn arena_recycles_slots() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.schedule(round * MS, round);
            let (at, p) = q.pop().expect("scheduled");
            assert_eq!(at, round * MS);
            assert_eq!(p, round);
        }
        // One live slot high-water mark: the pool never grew past it.
        assert_eq!(q.pending(), 0);
        assert_eq!(q.pool.slots.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10 * MS, ());
        q.pop();
        q.schedule(MS, ());
    }

    #[test]
    fn interleaves_many_sources_deterministically() {
        // Two runs with identical schedules produce identical pops even
        // though the heap internally reorders.
        let run = || {
            let mut q = EventQueue::new();
            for s in 0..10u32 {
                for k in 0..5u64 {
                    q.schedule(k * 7 * MS + (s as u64) * MS, (s, k));
                }
            }
            let mut out = Vec::new();
            while let Some((at, p)) = q.pop() {
                out.push((at, p));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
