//! Single-server warmup simulation.
//!
//! A discrete-time (1 s step) model of one web server's life after a
//! restart, following Fig. 3's workflows exactly:
//!
//! * **No Jump-Start** (Fig. 3a): init (sequential warmup requests) →
//!   serve; hot functions get profiling translations; after the profiling
//!   request target, a retranslate-all event compiles every profiled
//!   function on background JIT threads (point A→B), then relocation
//!   (B→C); newly discovered functions get live translations.
//! * **Consumer** (Fig. 3c): deserialize → preload units → compile all
//!   optimized code on *all* cores → serve near peak immediately.
//!
//! Requests compete with compilation for cores; service time per request
//! follows each touched function's current execution mode. Everything
//! dynamic (what compiles when, how much code, how slow interp is) comes
//! from the measured [`AppModel`].

use jumpstart::ProfilePackage;
use workload::{App, RequestMix};

use crate::metrics::{Sample, Timeline};
use crate::model::{AppModel, WarmupParams};

/// Per-function execution mode in the warmup model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Interp,
    Profiling,
    Optimized,
    Live,
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig<'p> {
    /// Calibration constants.
    pub params: WarmupParams,
    /// Boot as a Jump-Start consumer with this package.
    pub jumpstart: Option<&'p ProfilePackage>,
}

/// The simulation state (exposed for tests and incremental stepping).
#[derive(Debug)]
pub struct ServerSim<'a> {
    app: &'a App,
    model: &'a AppModel,
    params: WarmupParams,
    ep_probs: Vec<f64>,
    mode: Vec<Mode>,
    calls: Vec<f64>,
    unit_loaded: Vec<bool>,
    // Compile queue: (func index or NONE for batch end, bytes remaining).
    queue: std::collections::VecDeque<(usize, u64, Mode)>,
    code_bytes: u64,
    retranslate_started: bool,
    optimize_remaining: usize,
    relocation_left_ms: f64,
    relocating: bool,
    optimized_ready: Vec<usize>,
    optimized_phase_done: bool,
    // Early-serve consumer boot: background Jump-Start compiles complete
    // directly into Optimized (no point-B batch / relocation pause).
    consumer_bg: bool,
    bg_pending: Vec<bool>,
    peak_ms_per_req: f64,
    serve_start_ms: u64,
    point_a_ms: Option<u64>,
    point_b_ms: Option<u64>,
    point_c_ms: Option<u64>,
}

impl<'a> ServerSim<'a> {
    /// Creates the simulation for one server boot.
    pub fn new(
        app: &'a App,
        model: &'a AppModel,
        mix: &RequestMix,
        config: &ServerConfig<'_>,
    ) -> Self {
        let params = config.params;
        let n = app.repo.funcs().len();
        let mut sim = Self {
            app,
            model,
            params,
            ep_probs: mix.probabilities(),
            mode: vec![Mode::Interp; n],
            calls: vec![0.0; n],
            unit_loaded: vec![false; app.repo.units().len()],
            queue: std::collections::VecDeque::new(),
            code_bytes: 0,
            retranslate_started: false,
            optimize_remaining: 0,
            relocation_left_ms: 0.0,
            relocating: false,
            optimized_ready: Vec::new(),
            optimized_phase_done: false,
            consumer_bg: false,
            bg_pending: vec![false; n],
            peak_ms_per_req: model.peak_request_core_ms(app, mix, &params),
            serve_start_ms: 0,
            point_a_ms: None,
            point_b_ms: None,
            point_c_ms: None,
        };
        sim.serve_start_ms = match config.jumpstart {
            None => params.init_ms_nojs,
            Some(pkg) => {
                // Deserialize + preload + compile on every core, then
                // parallel (shorter) init — §IV-A and §VII-A. With
                // `early_serve_frac < 1.0` only the hottest prefix of heat
                // mass is compiled inside the boot window; the remainder
                // finishes on the background JIT threads while serving.
                let order: Vec<bytecode::FuncId> = pkg
                    .tier
                    .functions_by_heat()
                    .into_iter()
                    .filter(|f| f.index() < n)
                    .collect();
                let ready =
                    jumpstart::early_serve_prefix(&pkg.tier, &order, params.early_serve_frac);
                let mut ready_bytes = 0u64;
                for f in &order[..ready] {
                    let i = f.index();
                    ready_bytes += model.opt_bytes[i];
                    // Hottest code is optimized from the first request.
                    sim.mode[i] = Mode::Optimized;
                }
                for f in &order[ready..] {
                    let i = f.index();
                    sim.bg_pending[i] = true;
                    sim.queue
                        .push_back((i, model.opt_bytes[i], Mode::Optimized));
                    sim.consumer_bg = true;
                }
                let compile_ms =
                    ready_bytes as f64 / (params.compile_bytes_per_core_ms * params.cores as f64);
                let mut preload_kb = 0.0;
                for u in &pkg.preload.unit_order {
                    if u.index() < sim.unit_loaded.len() && !sim.unit_loaded[u.index()] {
                        sim.unit_loaded[u.index()] = true;
                        preload_kb += vm::unit_bytes(&app.repo, *u) as f64 / 1024.0;
                    }
                }
                let preload_ms = preload_kb * params.load_ms_per_kb / params.cores as f64;
                sim.code_bytes = ready_bytes;
                sim.optimized_phase_done = true;
                // Consumers never run the profiling phase (Fig. 3c).
                sim.retranslate_started = true;
                params.deserialize_ms + params.init_ms_js + (compile_ms + preload_ms) as u64
            }
        };
        sim
    }

    /// Expected core-milliseconds to serve one request right now,
    /// including lazy-load overhead committed this step.
    fn service_core_ms(&mut self, dt_requests: f64) -> f64 {
        let p = &self.params;
        let mut total_cycles = 0.0;
        let mut load_ms = 0.0;
        for (e, &prob) in self.ep_probs.iter().enumerate() {
            if prob <= 0.0 {
                continue;
            }
            for &(f, calls) in &self.model.endpoint_calls[e] {
                let i = f.index();
                let cpi = match self.mode[i] {
                    Mode::Interp => p.interp_cpi,
                    Mode::Profiling => p.profiling_cpi,
                    Mode::Optimized => p.optimized_cpi,
                    Mode::Live => p.live_cpi,
                };
                total_cycles += prob * calls * self.model.avg_instrs[i] * p.work_scale * cpi;
                // Lazy unit load on first touch (amortized over this step's
                // requests).
                let u = self.app.repo.func(f).unit.index();
                if !self.unit_loaded[u] && prob * dt_requests >= 0.5 {
                    self.unit_loaded[u] = true;
                    load_ms += self.model.unit_bytes[i] as f64 / 1024.0 * p.load_ms_per_kb
                        / dt_requests.max(1.0);
                }
            }
        }
        total_cycles / p.cycles_per_ms + load_ms
    }

    /// Applies the per-function effects of serving `requests` requests.
    fn account_requests(&mut self, requests: f64, now_ms: u64) {
        let p = self.params;
        for (e, &prob) in self.ep_probs.iter().enumerate() {
            let share = prob * requests;
            if share <= 0.0 {
                continue;
            }
            for &(f, calls) in &self.model.endpoint_calls[e] {
                let i = f.index();
                self.calls[i] += share * calls;
                if self.mode[i] == Mode::Interp
                    && !self.bg_pending[i]
                    && self.calls[i] >= p.promote_calls as f64
                {
                    if self.optimized_phase_done {
                        self.queue
                            .push_back((i, self.model.live_bytes[i], Mode::Live));
                    } else if !self.retranslate_started {
                        self.queue
                            .push_back((i, self.model.prof_bytes[i], Mode::Profiling));
                    }
                    // Mark as queued so it isn't enqueued again.
                    self.mode[i] = if self.optimized_phase_done {
                        Mode::Live
                    } else {
                        Mode::Profiling
                    };
                    self.code_bytes += 0; // bytes counted at compile completion
                }
            }
        }
        let _ = requests;
        if !self.retranslate_started && now_ms >= self.serve_start_ms + p.profile_serve_ms {
            self.retranslate_started = true;
            self.point_a_ms = Some(now_ms);
            // Enqueue optimize-all jobs hottest-first.
            for &f in &self.model.profiled {
                let i = f.index();
                self.queue
                    .push_back((i, self.model.opt_bytes[i], Mode::Optimized));
                self.optimize_remaining += 1;
            }
        }
    }

    /// Drains the compile queue with `core_ms` of JIT-thread time;
    /// returns the core-milliseconds actually consumed.
    fn run_compilers(&mut self, mut core_ms: f64, now_ms: u64) -> f64 {
        let budget = core_ms;
        let rate = self.params.compile_bytes_per_core_ms;
        if self.relocating {
            self.relocation_left_ms -= core_ms;
            if self.relocation_left_ms <= 0.0 {
                self.relocating = false;
                self.point_c_ms = Some(now_ms);
                for &i in &self.optimized_ready {
                    self.mode[i] = Mode::Optimized;
                }
                self.optimized_ready.clear();
                self.optimized_phase_done = true;
            }
            return budget;
        }
        while core_ms > 0.0 {
            let Some((i, bytes, kind)) = self.queue.front().copied() else {
                break;
            };
            let affordable = (core_ms * rate) as u64;
            if affordable >= bytes {
                core_ms -= bytes as f64 / rate;
                self.queue.pop_front();
                self.code_bytes += bytes;
                match kind {
                    Mode::Optimized if self.consumer_bg => {
                        // Early-serve background compile: the unit goes
                        // live directly (the streaming emitter placed it
                        // at its final address — no relocation batch).
                        self.mode[i] = Mode::Optimized;
                        self.bg_pending[i] = false;
                    }
                    Mode::Optimized => {
                        self.optimized_ready.push(i);
                        self.optimize_remaining -= 1;
                        if self.optimize_remaining == 0 {
                            // Point B: relocation begins.
                            self.point_b_ms = Some(now_ms);
                            self.relocating = true;
                            self.relocation_left_ms = self.params.relocation_ms as f64;
                            return budget;
                        }
                    }
                    mode => self.mode[i] = mode,
                }
            } else {
                // Partial progress: credit the emitted bytes now so the
                // code-size curve (and its final value) reflects all work
                // done, not just each job's completion-step residual.
                self.queue.front_mut().expect("checked").1 -= affordable;
                self.code_bytes += affordable;
                core_ms = 0.0;
                break;
            }
        }
        budget - core_ms
    }
}

/// Runs the warmup simulation, returning the timeline.
pub fn simulate_warmup(
    app: &App,
    model: &AppModel,
    mix: &RequestMix,
    config: &ServerConfig<'_>,
) -> Timeline {
    let params = config.params;
    let _span = telemetry::span!(
        "simulate-warmup",
        "jumpstart" => config.jumpstart.is_some(),
        "duration_ms" => params.duration_ms,
    );
    let mut sim = ServerSim::new(app, model, mix, config);
    let peak_rps = params.cores as f64 * 1000.0 / sim.peak_ms_per_req;
    let offered = peak_rps * params.offered_fraction;

    let mut timeline = Timeline {
        serve_start_ms: sim.serve_start_ms,
        ..Default::default()
    };
    let step = 1000u64; // 1 s
    let mut t = 0u64;
    while t < params.duration_ms {
        let now = t + step;
        if now <= sim.serve_start_ms {
            // Booting: Jump-Start compile work happens inside the boot
            // window (already priced into serve_start_ms).
            if now.is_multiple_of(params.sample_ms) {
                let frac = if config.jumpstart.is_some() && sim.serve_start_ms > 0 {
                    now as f64 / sim.serve_start_ms as f64
                } else {
                    0.0
                };
                timeline.samples.push(Sample {
                    t_ms: now,
                    rps_norm: 0.0,
                    latency_ms: 0.0,
                    code_bytes: (sim.code_bytes as f64 * frac.min(1.0)) as u64,
                });
            }
            t = now;
            continue;
        }
        // Background compile threads (serving competes for the rest);
        // only the core time actually consumed is taken from serving.
        let used_core_ms = sim.run_compilers(params.jit_threads as f64 * step as f64, now);
        let serve_cores = params.cores as f64 - used_core_ms / step as f64;
        let offered_this_step = offered * step as f64 / 1000.0;
        let service_ms = sim.service_core_ms(offered_this_step).max(0.01);
        let capacity = serve_cores * step as f64 / service_ms;
        let served = offered_this_step.min(capacity);
        sim.account_requests(served, now);

        if now.is_multiple_of(params.sample_ms) {
            let util = (offered_this_step / capacity).min(3.0);
            let queue_factor = 1.0 + 2.0 * (util.min(1.0)).powi(3);
            timeline.samples.push(Sample {
                t_ms: now,
                rps_norm: served / offered_this_step,
                latency_ms: service_ms * queue_factor,
                code_bytes: sim.code_bytes,
            });
        }
        t = now;
    }
    timeline.point_a_ms = sim.point_a_ms;
    timeline.point_b_ms = sim.point_b_ms;
    timeline.point_c_ms = sim.point_c_ms;
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_app_model;
    use jit::JitOptions;
    use jumpstart::{build_package, JumpStartOptions, SeederInputs};
    use workload::{generate, profile_run, AppParams};

    fn setup() -> (App, AppModel, ProfilePackage) {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let run = profile_run(&app, &mix, 150, 11);
        let model = build_app_model(&app, &run);
        let pkg = build_package(
            SeederInputs {
                repo: &app.repo,
                tier: run.tier,
                ctx: run.ctx,
                unit_order: run.unit_order,
                requests: run.requests,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        (app, model, pkg)
    }

    fn quick_params(model: &AppModel) -> WarmupParams {
        WarmupParams {
            duration_ms: 300_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 60_000,
            relocation_ms: 20_000,
            ..WarmupParams::fig4()
        }
        .with_compile_window(model, 90_000)
    }

    #[test]
    fn no_jumpstart_walks_through_the_lifecycle() {
        let (app, model, _pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let tl = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: quick_params(&model),
                jumpstart: None,
            },
        );
        assert!(tl.point_a_ms.is_some(), "profiling must end");
        assert!(tl.point_b_ms.is_some(), "optimization must finish");
        assert!(tl.point_c_ms.is_some(), "relocation must finish");
        let (a, b, c) = (
            tl.point_a_ms.unwrap(),
            tl.point_b_ms.unwrap(),
            tl.point_c_ms.unwrap(),
        );
        assert!(a < b && b < c, "A < B < C");
        // Code grows over time.
        let last = tl.samples.last().unwrap();
        assert!(last.code_bytes > 0);
        // RPS eventually recovers.
        assert!(last.rps_norm > 0.9, "got {}", last.rps_norm);
    }

    #[test]
    fn jumpstart_starts_near_peak() {
        let (app, model, pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let params = quick_params(&model);
        let js = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: Some(&pkg),
            },
        );
        let nojs = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: None,
            },
        );
        // Shortly after serving begins, the consumer is already fast.
        let early = js.at(js.serve_start_ms + 20_000).unwrap();
        assert!(early.rps_norm > 0.8, "JS early rps {}", early.rps_norm);
        let early_nojs = nojs.at(nojs.serve_start_ms + 20_000).unwrap();
        assert!(
            early.rps_norm > early_nojs.rps_norm + 0.2,
            "JS {} vs no-JS {}",
            early.rps_norm,
            early_nojs.rps_norm
        );
        // Headline: capacity loss reduced substantially.
        let loss_js = js.capacity_loss_over(params.duration_ms);
        let loss_nojs = nojs.capacity_loss_over(params.duration_ms);
        assert!(
            loss_js < 0.7 * loss_nojs,
            "JS loss {loss_js:.3} should be well below no-JS {loss_nojs:.3}"
        );
    }

    #[test]
    fn latency_improves_with_jumpstart_early_on() {
        let (app, model, pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let params = quick_params(&model);
        let js = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: Some(&pkg),
            },
        );
        let nojs = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: None,
            },
        );
        let t = nojs.serve_start_ms + 30_000;
        let l_js = js.at(t).unwrap().latency_ms;
        let l_nojs = nojs.at(t).unwrap().latency_ms;
        assert!(
            l_nojs > 1.5 * l_js,
            "early latency: no-JS {l_nojs:.2}ms vs JS {l_js:.2}ms"
        );
    }

    #[test]
    fn early_serve_boots_earlier_and_converges() {
        let (app, model, pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let full = quick_params(&model);
        let early = WarmupParams {
            early_serve_frac: 0.5,
            ..full
        };
        let tl_full = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: full,
                jumpstart: Some(&pkg),
            },
        );
        let tl_early = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: early,
                jumpstart: Some(&pkg),
            },
        );
        // Serving starts sooner: only the hottest prefix is priced into
        // the boot window.
        assert!(
            tl_early.serve_start_ms < tl_full.serve_start_ms,
            "early-serve {} should boot before compile-all {}",
            tl_early.serve_start_ms,
            tl_full.serve_start_ms
        );
        // And converges: background compiles finish, so the final code
        // footprint matches and throughput is near peak.
        let last_early = tl_early.samples.last().unwrap();
        let last_full = tl_full.samples.last().unwrap();
        assert_eq!(last_early.code_bytes, last_full.code_bytes);
        assert!(
            last_early.rps_norm > 0.9,
            "early-serve converges, got {}",
            last_early.rps_norm
        );
        // Early-serve never re-enters the Fig. 3a batch machinery.
        assert!(tl_early.point_b_ms.is_none());
        assert!(tl_early.point_c_ms.is_none());
    }

    #[test]
    fn code_size_curve_is_monotonic() {
        let (app, model, _pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let tl = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: quick_params(&model),
                jumpstart: None,
            },
        );
        for w in tl.samples.windows(2) {
            assert!(w[1].code_bytes >= w[0].code_bytes);
        }
    }
}
