//! Statistically rigorous warmup classification over fleet timelines.
//!
//! "Virtual Machine Warmup Blows Hot and Cold" (Barrett et al., OOPSLA
//! 2017) showed that VM process executions frequently never reach a
//! steady state, warm up non-monotonically, or get *slower* — so reading
//! warmup off a threshold crossing (`time_to_rps(0.9)`) can silently
//! misreport Jump-Start's benefit. This module replaces the threshold
//! with their method, adapted to fleet timelines:
//!
//! 1. **Changepoint segmentation** ([`pelt_changepoints`]): each server's
//!    post-serve RPS and latency series is segmented by PELT (Killick et
//!    al. 2012) — exact dynamic programming over an L2 cost with linear
//!    expected cost via pruning. Deterministic, no external crates; the
//!    unpruned O(n²) recursion survives as
//!    [`pelt_changepoints_reference`], the equivalence oracle.
//! 2. **Classification** ([`classify_timeline`]): segment means relative
//!    to the final (steady) segment assign one of the five Barrett-style
//!    classes in [`WarmupClass`], plus a time-to-steady-state estimate.
//! 3. **Fleet aggregation** ([`WarmupAccumulator`] → [`WarmupReport`]):
//!    per-class server fractions for the Jump-Start and baseline arms,
//!    time-to-steady-state p50/p95/p99 with deterministic bootstrap
//!    confidence intervals, and the median fleet warmup curve — Fig. 1/2
//!    reproduced from the aggregate rather than one representative.
//!
//! Everything is a pure function of the inputs: the same timelines
//! produce a byte-identical [`WarmupReport::to_json`] (and therefore
//! [`WarmupReport::digest`]) on every run and any shard count — which is
//! what lets ci.sh gate on it.

use telemetry::{bootstrap_percentile_ci, fmt_f64, quantile_sorted};

use crate::metrics::Timeline;

/// Warmup class of one server timeline, after Barrett et al.'s taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WarmupClass {
    /// Throughput started below the steady level and rose to it (or the
    /// restart gap itself was the warmup: serving began at the steady
    /// level after a non-trivial boot window).
    Warmup,
    /// Throughput ended below where it started, or latency degraded into
    /// the final segment: the server got *slower*.
    Slowdown,
    /// Steady from the very first sample with no restart gap.
    Flat,
    /// Direction changed repeatedly (or warmup and slowdown evidence
    /// conflict): no monotone story describes this server.
    Cyclic,
    /// The final segment began too late (or too few samples exist) to
    /// call anything steady.
    NoSteadyState,
}

impl WarmupClass {
    /// Stable JSON / digest name.
    pub fn name(self) -> &'static str {
        match self {
            WarmupClass::Warmup => "warmup",
            WarmupClass::Slowdown => "slowdown",
            WarmupClass::Flat => "flat",
            WarmupClass::Cyclic => "cyclic",
            WarmupClass::NoSteadyState => "no-steady-state",
        }
    }

    /// Stable one-byte code for digests.
    pub fn code(self) -> u8 {
        match self {
            WarmupClass::Warmup => 0,
            WarmupClass::Slowdown => 1,
            WarmupClass::Flat => 2,
            WarmupClass::Cyclic => 3,
            WarmupClass::NoSteadyState => 4,
        }
    }

    /// All classes, in `code()` order.
    pub fn all() -> [WarmupClass; 5] {
        [
            WarmupClass::Warmup,
            WarmupClass::Slowdown,
            WarmupClass::Flat,
            WarmupClass::Cyclic,
            WarmupClass::NoSteadyState,
        ]
    }
}

/// Tuning for segmentation, classification, and the bootstrap CIs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmupAnalysisParams {
    /// Multiplies the BIC-style penalty `σ̂² · ln n`; higher = fewer
    /// segments.
    pub penalty_scale: f64,
    /// Minimum samples per segment.
    pub min_segment_len: usize,
    /// Relative tolerance band around the steady mean: segment means
    /// within `±steady_tol` of the final mean count as "at level".
    pub steady_tol: f64,
    /// A final segment starting after `duration · steady_latest_frac` is
    /// too late to call steady → [`WarmupClass::NoSteadyState`].
    pub steady_latest_frac: f64,
    /// Bootstrap resamples per confidence interval.
    pub bootstrap_resamples: u32,
    /// Bootstrap RNG seed (the stream is splitmix64; see
    /// [`telemetry::bootstrap_percentile_ci`]).
    pub bootstrap_seed: u64,
}

impl Default for WarmupAnalysisParams {
    fn default() -> Self {
        Self {
            penalty_scale: 3.0,
            min_segment_len: 3,
            steady_tol: 0.05,
            steady_latest_frac: 0.75,
            bootstrap_resamples: 200,
            bootstrap_seed: 0x57a2_b007,
        }
    }
}

impl WarmupAnalysisParams {
    /// Sets the penalty scale (builder-style).
    pub fn with_penalty_scale(mut self, scale: f64) -> Self {
        self.penalty_scale = scale;
        self
    }

    /// Sets the minimum segment length.
    pub fn with_min_segment_len(mut self, len: usize) -> Self {
        self.min_segment_len = len.max(1);
        self
    }

    /// Sets the steady-band tolerance.
    pub fn with_steady_tol(mut self, tol: f64) -> Self {
        self.steady_tol = tol;
        self
    }

    /// Sets the latest fraction of the duration a steady segment may
    /// begin at.
    pub fn with_steady_latest(mut self, frac: f64) -> Self {
        self.steady_latest_frac = frac;
        self
    }

    /// Sets the bootstrap resample count and seed.
    pub fn with_bootstrap(mut self, resamples: u32, seed: u64) -> Self {
        self.bootstrap_resamples = resamples;
        self.bootstrap_seed = seed;
        self
    }
}

/// L2 segment cost over `xs[a..b]` from prefix sums: the residual sum of
/// squares around the segment mean, `Σx² − (Σx)²/len`.
struct L2Cost {
    s1: Vec<f64>,
    s2: Vec<f64>,
}

impl L2Cost {
    fn new(xs: &[f64]) -> Self {
        let mut s1 = Vec::with_capacity(xs.len() + 1);
        let mut s2 = Vec::with_capacity(xs.len() + 1);
        s1.push(0.0);
        s2.push(0.0);
        let (mut a1, mut a2) = (0.0f64, 0.0f64);
        for &x in xs {
            a1 += x;
            a2 += x * x;
            s1.push(a1);
            s2.push(a2);
        }
        Self { s1, s2 }
    }

    fn cost(&self, a: usize, b: usize) -> f64 {
        let len = (b - a) as f64;
        let sum = self.s1[b] - self.s1[a];
        // RSS can come out as a tiny negative through float cancellation
        // on constant segments; clamp so penalties stay comparable.
        ((self.s2[b] - self.s2[a]) - sum * sum / len).max(0.0)
    }
}

/// The segmentation penalty: `penalty_scale · σ̂² · ln n`, with σ̂²
/// estimated robustly from successive differences (median absolute
/// difference / 0.6745 / √2 — insensitive to the level jumps we are
/// trying to find) and floored so zero-noise series still pay a strictly
/// positive price per extra segment.
fn pelt_penalty(xs: &[f64], penalty_scale: f64) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let mut diffs: Vec<f64> = xs.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mad = quantile_sorted(&diffs, 0.5);
    let sigma = mad / 0.6745 / std::f64::consts::SQRT_2;
    let (mut lo, mut hi) = (xs[0], xs[0]);
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let range = hi - lo;
    let var = (sigma * sigma).max(1e-4 * range * range).max(1e-12);
    penalty_scale.max(0.1) * var * (n as f64).ln().max(1.0)
}

/// Exact penalized changepoint detection, unpruned: the O(n²) optimal
/// partitioning recursion `F(t) = min_s F(s) + C(s,t) + β`. Kept as the
/// reference oracle the pruned implementation is property-tested against
/// (the repo idiom: `exttsp_order_reference`, `simulate_warmup_dense`).
///
/// Returns the interior changepoints as indices where a new segment
/// starts, strictly increasing, excluding `0` and `n`.
pub fn pelt_changepoints_reference(xs: &[f64], params: &WarmupAnalysisParams) -> Vec<usize> {
    pelt_impl(xs, params, false)
}

/// [`pelt_changepoints_reference`] with PELT pruning: candidates whose
/// partial objective already exceeds the incumbent can never become
/// optimal again (Killick et al. 2012, K = 0 for L2) and are dropped,
/// giving linear expected time on series with changepoints. Bit-identical
/// to the reference by construction — pruning only removes provably
/// non-optimal candidates, and ties break identically (lowest candidate
/// index, which prefers fewer segments).
pub fn pelt_changepoints(xs: &[f64], params: &WarmupAnalysisParams) -> Vec<usize> {
    pelt_impl(xs, params, true)
}

fn pelt_impl(xs: &[f64], params: &WarmupAnalysisParams, prune: bool) -> Vec<usize> {
    let n = xs.len();
    let min_len = params.min_segment_len.max(1);
    if n < 2 * min_len {
        return Vec::new();
    }
    let cost = L2Cost::new(xs);
    let beta = pelt_penalty(xs, params.penalty_scale);
    // f[t]: optimal penalized cost of xs[..t]; f[0] = -β so the first
    // segment's β cancels (segments are priced, not boundaries).
    let mut f = vec![f64::INFINITY; n + 1];
    f[0] = -beta;
    let mut prev = vec![0usize; n + 1];
    let mut cands: Vec<usize> = vec![0];
    for t in min_len..=n {
        let mut best = f64::INFINITY;
        let mut best_s = 0usize;
        for &s in &cands {
            if t - s < min_len {
                continue;
            }
            let val = f[s] + cost.cost(s, t) + beta;
            // Strict `<` with candidates scanned in increasing order:
            // ties go to the smaller s, i.e. fewer segments — a
            // zero-gain split is never taken.
            if val < best {
                best = val;
                best_s = s;
            }
        }
        f[t] = best;
        prev[t] = best_s;
        if prune {
            // Keep s if it may still beat the incumbent later. Candidates
            // not yet evaluable (t - s < min_len) are always kept.
            cands.retain(|&s| t - s < min_len || f[s] + cost.cost(s, t) <= f[t]);
        }
        if t + min_len <= n {
            cands.push(t);
        }
    }
    let mut cps = Vec::new();
    let mut t = n;
    while t > 0 {
        let s = prev[t];
        if s > 0 {
            cps.push(s);
        }
        t = s;
    }
    cps.reverse();
    cps
}

/// One segment of a segmented series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First sample index (inclusive).
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
    /// Segment mean.
    pub mean: f64,
}

/// Segments a series with [`pelt_changepoints`] and reports each
/// segment's bounds and mean.
pub fn segment_series(xs: &[f64], params: &WarmupAnalysisParams) -> Vec<Segment> {
    if xs.is_empty() {
        return Vec::new();
    }
    let cps = pelt_changepoints(xs, params);
    let mut bounds = Vec::with_capacity(cps.len() + 2);
    bounds.push(0);
    bounds.extend_from_slice(&cps);
    bounds.push(xs.len());
    bounds
        .windows(2)
        .map(|w| {
            let (a, b) = (w[0], w[1]);
            Segment {
                start: a,
                end: b,
                mean: xs[a..b].iter().sum::<f64>() / (b - a) as f64,
            }
        })
        .collect()
}

/// Verdict for one server timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineClass {
    /// The assigned class.
    pub class: WarmupClass,
    /// Time from restart to steady state (server-local ms); present only
    /// for `Warmup` and `Flat`.
    pub steady_ms: Option<u64>,
    /// RPS segments over the post-serve samples.
    pub rps_segments: Vec<Segment>,
    /// Latency segments over the post-serve samples.
    pub latency_segments: Vec<Segment>,
    /// Sample times (ms) the segments index into.
    pub times_ms: Vec<u64>,
}

impl TimelineClass {
    /// Segment start times (ms) for the RPS series, excluding the first.
    pub fn rps_boundaries_ms(&self) -> Vec<u64> {
        self.rps_segments
            .iter()
            .skip(1)
            .map(|s| self.times_ms[s.start])
            .collect()
    }
}

/// Direction of a step between consecutive segment means, relative to a
/// tolerance scaled by the steady level.
fn direction(from: f64, to: f64, tol_abs: f64) -> i8 {
    if to - from > tol_abs {
        1
    } else if from - to > tol_abs {
        -1
    } else {
        0
    }
}

/// Classifies one server timeline.
///
/// Boot-window samples (`t_ms ≤ serve_start_ms`, all-zero by
/// construction) are dropped first — the restart gap is priced by the
/// *time origin*, not by segmenting zeros. The post-serve RPS series is
/// segmented; the final segment is the steady-state candidate:
///
/// * final segment starting after `duration · steady_latest_frac`, or
///   fewer than `2 · min_segment_len` post-serve samples →
///   [`WarmupClass::NoSteadyState`];
/// * ≥ 2 direction alternations across segment means, or conflicting
///   warmup + slowdown evidence → [`WarmupClass::Cyclic`];
/// * an earlier segment above the final mean (throughput fell), or — when
///   RPS alone is flat — latency rising into its final segment →
///   [`WarmupClass::Slowdown`] (RPS saturates at the offered load, so
///   rising service time shows up in latency first);
/// * an earlier segment below the final mean → [`WarmupClass::Warmup`];
/// * all segments at level: [`WarmupClass::Flat`] if serving began at
///   `t = 0`, else [`WarmupClass::Warmup`] — the restart gap itself was
///   the warmup (a Jump-Start consumer serves at peak immediately, but
///   it did spend its boot window dark).
///
/// `steady_ms` is the time the last-changing series (RPS or latency)
/// entered its final segment; for immediately-steady servers it is the
/// first post-serve sample time.
pub fn classify_timeline(
    tl: &Timeline,
    duration_ms: u64,
    params: &WarmupAnalysisParams,
) -> TimelineClass {
    let serving: Vec<&crate::metrics::Sample> = tl
        .samples
        .iter()
        .filter(|s| s.t_ms > tl.serve_start_ms)
        .collect();
    let times_ms: Vec<u64> = serving.iter().map(|s| s.t_ms).collect();
    let rps: Vec<f64> = serving.iter().map(|s| s.rps_norm).collect();
    let latency: Vec<f64> = serving.iter().map(|s| s.latency_ms).collect();
    if rps.len() < 2 * params.min_segment_len.max(1) {
        return TimelineClass {
            class: WarmupClass::NoSteadyState,
            steady_ms: None,
            rps_segments: segment_series(&rps, params),
            latency_segments: segment_series(&latency, params),
            times_ms,
        };
    }
    let rps_segments = segment_series(&rps, params);
    let latency_segments = segment_series(&latency, params);
    let fin = *rps_segments.last().expect("non-empty series");
    let fin_lat = *latency_segments.last().expect("non-empty series");

    // Too late to call anything steady?
    let latest_ms = (duration_ms as f64 * params.steady_latest_frac) as u64;
    let rps_steady_start = times_ms[fin.start];
    let lat_steady_start = times_ms[fin_lat.start];
    if rps_steady_start > latest_ms || lat_steady_start > latest_ms {
        return TimelineClass {
            class: WarmupClass::NoSteadyState,
            steady_ms: None,
            rps_segments,
            latency_segments,
            times_ms,
        };
    }

    // Evidence from RPS segment means, relative to the steady level.
    let tol_abs = params.steady_tol * fin.mean.abs().max(1e-9);
    let mut below = false;
    let mut above = false;
    for seg in &rps_segments[..rps_segments.len() - 1] {
        match direction(seg.mean, fin.mean, tol_abs) {
            1 => below = true,  // rose into steady: warmup evidence
            -1 => above = true, // fell into steady: slowdown evidence
            _ => {}
        }
    }
    let mut alternations = 0u32;
    let mut last_dir = 0i8;
    for w in rps_segments.windows(2) {
        let d = direction(w[0].mean, w[1].mean, tol_abs);
        if d != 0 {
            if last_dir != 0 && d != last_dir {
                alternations += 1;
            }
            last_dir = d;
        }
    }

    // Latency-side slowdown: service time rising into the final latency
    // segment while RPS never dipped (saturated at the offered load).
    let lat_tol_abs = params.steady_tol * fin_lat.mean.abs().max(1e-9);
    let latency_degraded = latency_segments[..latency_segments.len() - 1]
        .iter()
        .any(|seg| direction(seg.mean, fin_lat.mean, lat_tol_abs) == 1);

    let class = if alternations >= 2 || (below && above) {
        WarmupClass::Cyclic
    } else if above || (!below && latency_degraded) {
        WarmupClass::Slowdown
    } else if below {
        WarmupClass::Warmup
    } else if tl.serve_start_ms > 0 {
        // Steady from the first served request after a real boot window:
        // the restart gap was the warmup.
        WarmupClass::Warmup
    } else {
        WarmupClass::Flat
    };
    let steady_ms = match class {
        WarmupClass::Warmup | WarmupClass::Flat => Some(rps_steady_start.max(lat_steady_start)),
        _ => None,
    };
    TimelineClass {
        class,
        steady_ms,
        rps_segments,
        latency_segments,
        times_ms,
    }
}

/// Per-class server counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    counts: [u32; 5],
}

impl ClassCounts {
    /// Increments the count for `class`.
    pub fn add(&mut self, class: WarmupClass) {
        self.counts[class.code() as usize] += 1;
    }

    /// Count for one class.
    pub fn get(&self, class: WarmupClass) -> u32 {
        self.counts[class.code() as usize]
    }

    /// Total servers counted.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Fraction of servers in `class` (0 when empty).
    pub fn fraction(&self, class: WarmupClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(class) as f64 / total as f64
        }
    }
}

/// A percentile with its bootstrap confidence interval.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CiStat {
    /// The point estimate.
    pub value: f64,
    /// Lower 95% CI bound.
    pub lo: f64,
    /// Upper 95% CI bound.
    pub hi: f64,
}

/// One deployment arm's (Jump-Start or baseline) warmup summary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArmSummary {
    /// Servers classified.
    pub servers: u32,
    /// Per-class counts.
    pub counts: ClassCounts,
    /// Servers contributing a time-to-steady-state (Warmup/Flat only).
    pub ttss_n: u32,
    /// Time-to-steady-state p50 with CI (ms).
    pub ttss_p50: CiStat,
    /// Time-to-steady-state p95 with CI (ms).
    pub ttss_p95: CiStat,
    /// Time-to-steady-state p99 with CI (ms).
    pub ttss_p99: CiStat,
    /// The median fleet warmup curve: `(t_ms, median rps_norm across
    /// servers sampled at t_ms)` — the Fig. 1/2 reproduction from the
    /// aggregate.
    pub median_curve: Vec<(u64, f64)>,
}

/// The fleet-wide warmup classification report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WarmupReport {
    /// Analysis parameters the report was computed under.
    pub params: WarmupAnalysisParams,
    /// Jump-Start arm.
    pub js: ArmSummary,
    /// No-Jump-Start (baseline) arm.
    pub nojs: ArmSummary,
}

impl WarmupReport {
    /// Renders as JSON. Field order is fixed, floats go through
    /// [`telemetry::fmt_f64`], so equal reports serialize byte-identically.
    pub fn to_json(&self) -> String {
        fn arm(a: &ArmSummary) -> String {
            let classes: Vec<String> = WarmupClass::all()
                .iter()
                .map(|&c| format!("\"{}\":{}", c.name(), a.counts.get(c)))
                .collect();
            let ci = |s: &CiStat| {
                format!(
                    "{{\"value\":{},\"lo\":{},\"hi\":{}}}",
                    fmt_f64(s.value),
                    fmt_f64(s.lo),
                    fmt_f64(s.hi)
                )
            };
            let curve: Vec<String> = a
                .median_curve
                .iter()
                .map(|&(t, v)| format!("[{},{}]", t, fmt_f64(v)))
                .collect();
            format!(
                "{{\"servers\":{},\"classes\":{{{}}},\"ttss_n\":{},\"ttss_p50\":{},\"ttss_p95\":{},\"ttss_p99\":{},\"median_curve\":[{}]}}",
                a.servers,
                classes.join(","),
                a.ttss_n,
                ci(&a.ttss_p50),
                ci(&a.ttss_p95),
                ci(&a.ttss_p99),
                curve.join(","),
            )
        }
        format!(
            "{{\"penalty_scale\":{},\"min_segment_len\":{},\"steady_tol\":{},\"steady_latest_frac\":{},\"bootstrap_resamples\":{},\"bootstrap_seed\":{},\"js\":{},\"nojs\":{}}}",
            fmt_f64(self.params.penalty_scale),
            self.params.min_segment_len,
            fmt_f64(self.params.steady_tol),
            fmt_f64(self.params.steady_latest_frac),
            self.params.bootstrap_resamples,
            self.params.bootstrap_seed,
            arm(&self.js),
            arm(&self.nojs),
        )
    }

    /// CRC of the canonical JSON — the byte-identity fingerprint ci.sh
    /// gates across runs and shard counts.
    pub fn digest(&self) -> u32 {
        jumpstart::crc32(self.to_json().as_bytes())
    }
}

/// Per-arm accumulation state.
#[derive(Default)]
struct ArmAccum {
    counts: ClassCounts,
    ttss: Vec<f64>,
    /// `curve[k]` = every server's `rps_norm` at `t = (k+1) · sample_ms`.
    /// Server-local sample times all land on multiples of `sample_ms`
    /// (stagger offsets are added outside the server's own clock), so
    /// bucketing by index is exact, not approximate.
    curve: Vec<Vec<f64>>,
}

/// Streams per-server timelines into a [`WarmupReport`].
///
/// The deployment merge loop holds every server's full timeline exactly
/// once (in gid order, before non-representatives are discarded); feeding
/// each through [`WarmupAccumulator::add`] classifies it and folds it
/// into the fleet curve without retaining it — memory stays flat at paper
/// scale, and gid-order feeding makes the report shard-count-invariant.
pub struct WarmupAccumulator {
    params: WarmupAnalysisParams,
    sample_ms: u64,
    duration_ms: u64,
    js: ArmAccum,
    nojs: ArmAccum,
}

impl WarmupAccumulator {
    /// Creates an accumulator for timelines sampled every `sample_ms`
    /// over `duration_ms`.
    pub fn new(params: WarmupAnalysisParams, sample_ms: u64, duration_ms: u64) -> Self {
        Self {
            params,
            sample_ms: sample_ms.max(1),
            duration_ms,
            js: ArmAccum::default(),
            nojs: ArmAccum::default(),
        }
    }

    /// Classifies one timeline, folds it into its arm, and returns the
    /// verdict (the caller stores class + steady time in its compact
    /// per-server stat).
    pub fn add(&mut self, tl: &Timeline, jumpstart: bool) -> TimelineClass {
        let verdict = classify_timeline(tl, self.duration_ms, &self.params);
        let sample_ms = self.sample_ms;
        let arm = if jumpstart {
            &mut self.js
        } else {
            &mut self.nojs
        };
        arm.counts.add(verdict.class);
        if let Some(steady) = verdict.steady_ms {
            arm.ttss.push(steady as f64);
        }
        for s in &tl.samples {
            if s.t_ms == 0 || !s.t_ms.is_multiple_of(sample_ms) {
                continue;
            }
            let k = (s.t_ms / sample_ms - 1) as usize;
            if arm.curve.len() <= k {
                arm.curve.resize_with(k + 1, Vec::new);
            }
            arm.curve[k].push(s.rps_norm);
        }
        verdict
    }

    /// Finalizes both arms into the fleet report.
    pub fn finish(self) -> WarmupReport {
        let params = self.params;
        let sample_ms = self.sample_ms;
        let summarize = |mut acc: ArmAccum| -> ArmSummary {
            acc.ttss.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let stat = |q: f64| CiStat {
                value: quantile_sorted(&acc.ttss, q),
                lo: bootstrap_percentile_ci(
                    &acc.ttss,
                    q,
                    params.bootstrap_resamples,
                    params.bootstrap_seed,
                )
                .0,
                hi: bootstrap_percentile_ci(
                    &acc.ttss,
                    q,
                    params.bootstrap_resamples,
                    params.bootstrap_seed,
                )
                .1,
            };
            let median_curve: Vec<(u64, f64)> = acc
                .curve
                .iter_mut()
                .enumerate()
                .filter(|(_, vs)| !vs.is_empty())
                .map(|(k, vs)| {
                    vs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                    ((k as u64 + 1) * sample_ms, quantile_sorted(vs, 0.5))
                })
                .collect();
            ArmSummary {
                servers: acc.counts.total(),
                counts: acc.counts,
                ttss_n: acc.ttss.len() as u32,
                ttss_p50: stat(0.50),
                ttss_p95: stat(0.95),
                ttss_p99: stat(0.99),
                median_curve,
            }
        };
        WarmupReport {
            params,
            js: summarize(self.js),
            nojs: summarize(self.nojs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Sample;

    fn series(segments: &[(usize, f64)]) -> Vec<f64> {
        let mut xs = Vec::new();
        for &(len, level) in segments {
            xs.extend(std::iter::repeat_n(level, len));
        }
        xs
    }

    fn tl(serve_start_ms: u64, rps: &[f64]) -> Timeline {
        tl_lat(serve_start_ms, rps, &vec![2.0; rps.len()])
    }

    fn tl_lat(serve_start_ms: u64, rps: &[f64], lat: &[f64]) -> Timeline {
        // Boot-window zeros at every sample boundary up to serve start,
        // then the post-serve series — the shape ServerTask produces.
        let mut samples: Vec<Sample> = Vec::new();
        let mut t = 1000;
        while t <= serve_start_ms {
            samples.push(Sample {
                t_ms: t,
                rps_norm: 0.0,
                latency_ms: 0.0,
                code_bytes: 0,
            });
            t += 1000;
        }
        for (i, (&r, &l)) in rps.iter().zip(lat).enumerate() {
            samples.push(Sample {
                t_ms: t + i as u64 * 1000,
                rps_norm: r,
                latency_ms: l,
                code_bytes: 0,
            });
        }
        Timeline {
            samples,
            serve_start_ms,
            ..Default::default()
        }
    }

    #[test]
    fn zero_noise_jump_is_found_exactly() {
        let xs = series(&[(20, 0.2), (30, 1.0)]);
        let p = WarmupAnalysisParams::default();
        assert_eq!(pelt_changepoints(&xs, &p), vec![20]);
        assert_eq!(pelt_changepoints_reference(&xs, &p), vec![20]);
    }

    #[test]
    fn constant_series_never_splits() {
        let xs = vec![0.7; 50];
        let p = WarmupAnalysisParams::default();
        assert!(pelt_changepoints(&xs, &p).is_empty());
        let segs = segment_series(&xs, &p);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].mean - 0.7).abs() < 1e-12);
    }

    #[test]
    fn three_level_staircase_recovers_both_boundaries() {
        let xs = series(&[(15, 0.1), (15, 0.5), (20, 1.0)]);
        let p = WarmupAnalysisParams::default();
        assert_eq!(pelt_changepoints(&xs, &p), vec![15, 30]);
    }

    #[test]
    fn pruned_matches_reference_on_noisy_series() {
        // Deterministic pseudo-noise via a fixed LCG so the test needs no
        // rand dependency here.
        let mut state = 12345u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.02
        };
        let mut xs = series(&[(25, 0.3), (25, 0.9), (25, 0.6)]);
        for x in &mut xs {
            *x += noise();
        }
        let p = WarmupAnalysisParams::default();
        assert_eq!(
            pelt_changepoints(&xs, &p),
            pelt_changepoints_reference(&xs, &p)
        );
    }

    #[test]
    fn min_segment_len_is_respected() {
        let xs = series(&[(2, 0.0), (48, 1.0)]);
        let p = WarmupAnalysisParams::default().with_min_segment_len(5);
        for w in segment_series(&xs, &p).windows(1) {
            assert!(w[0].end - w[0].start >= 5);
        }
    }

    #[test]
    fn short_series_yields_no_changepoints() {
        let p = WarmupAnalysisParams::default();
        assert!(pelt_changepoints(&[1.0, 2.0], &p).is_empty());
        assert!(pelt_changepoints(&[], &p).is_empty());
        assert!(segment_series(&[], &p).is_empty());
    }

    #[test]
    fn classic_warmup_ramp_classifies_warmup() {
        let rps = series(&[(10, 0.3), (10, 0.7), (40, 1.0)]);
        let t = tl(20_000, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::Warmup);
        let steady = v.steady_ms.expect("warmup has a steady time");
        // Steady begins when the final segment starts: 20 ramp samples
        // after serve start.
        assert_eq!(steady, 20_000 + 1000 + 20 * 1000);
        assert_eq!(v.rps_segments.len(), 3);
    }

    #[test]
    fn immediate_peak_after_boot_gap_is_warmup_not_flat() {
        // A Jump-Start consumer: dark boot window, then ~peak at once.
        let rps = vec![1.0; 40];
        let t = tl(30_000, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::Warmup);
        assert_eq!(v.steady_ms, Some(31_000));
    }

    #[test]
    fn no_boot_gap_constant_series_is_flat() {
        let rps = vec![1.0; 40];
        let t = tl(0, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::Flat);
        assert_eq!(v.steady_ms, Some(1000));
    }

    #[test]
    fn throughput_decline_classifies_slowdown() {
        let rps = series(&[(20, 1.0), (20, 0.6)]);
        let t = tl(10_000, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::Slowdown);
        assert_eq!(v.steady_ms, None);
    }

    #[test]
    fn latency_degradation_with_flat_rps_classifies_slowdown() {
        // RPS saturated at the offered load while service time doubles:
        // the latency series carries the slowdown.
        let rps = vec![1.0; 40];
        let lat: Vec<f64> = series(&[(20, 2.0), (20, 5.0)]);
        let t = tl_lat(10_000, &rps, &lat);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::Slowdown);
    }

    #[test]
    fn oscillation_classifies_cyclic() {
        let rps = series(&[
            (10, 0.4),
            (10, 1.0),
            (10, 0.4),
            (10, 1.0),
            (10, 0.4),
            (10, 1.0),
        ]);
        let t = tl(0, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::Cyclic);
        assert_eq!(v.steady_ms, None);
    }

    #[test]
    fn late_final_segment_classifies_no_steady_state() {
        // Still climbing at 80% of the duration.
        let rps = series(&[(90, 0.3), (10, 1.0)]);
        let t = tl(0, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::NoSteadyState);
        assert_eq!(v.steady_ms, None);
    }

    #[test]
    fn too_few_samples_classifies_no_steady_state() {
        let rps = vec![1.0; 3];
        let t = tl(95_000, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.class, WarmupClass::NoSteadyState);
    }

    #[test]
    fn boundaries_report_in_ms() {
        let rps = series(&[(10, 0.2), (30, 1.0)]);
        let t = tl(5_000, &rps);
        let v = classify_timeline(&t, 100_000, &WarmupAnalysisParams::default());
        assert_eq!(v.rps_boundaries_ms(), vec![5_000 + 1000 + 10 * 1000]);
    }

    #[test]
    fn accumulator_builds_reproducible_report() {
        let mut acc = WarmupAccumulator::new(WarmupAnalysisParams::default(), 1000, 100_000);
        let mut acc2 = WarmupAccumulator::new(WarmupAnalysisParams::default(), 1000, 100_000);
        for i in 0..8u64 {
            let rps = series(&[(10 + i as usize, 0.3), (40, 1.0)]);
            let t = tl(10_000 + i * 1000, &rps);
            acc.add(&t, true);
            acc2.add(&t, true);
            let base = series(&[(20, 0.2), (20, 0.8), (40, 1.0)]);
            let bt = tl(20_000, &base);
            acc.add(&bt, false);
            acc2.add(&bt, false);
        }
        let report = acc.finish();
        let report2 = acc2.finish();
        assert_eq!(report.js.counts.get(WarmupClass::Warmup), 8);
        assert_eq!(report.nojs.counts.get(WarmupClass::Warmup), 8);
        assert_eq!(report.js.servers, 8);
        assert_eq!(report.js.ttss_n, 8);
        // js settles long before the baseline.
        assert!(report.js.ttss_p50.value < report.nojs.ttss_p50.value);
        assert!(report.js.ttss_p50.lo <= report.js.ttss_p50.value);
        assert!(report.js.ttss_p50.value <= report.js.ttss_p50.hi);
        // Median curve exists and ends at peak.
        assert!(!report.js.median_curve.is_empty());
        assert!((report.js.median_curve.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Byte-identical across identical accumulations.
        assert_eq!(report.to_json(), report2.to_json());
        assert_eq!(report.digest(), report2.digest());
        telemetry::json::parse(&report.to_json()).expect("report JSON parses");
    }

    #[test]
    fn class_counts_and_fractions() {
        let mut c = ClassCounts::default();
        c.add(WarmupClass::Warmup);
        c.add(WarmupClass::Warmup);
        c.add(WarmupClass::Slowdown);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(WarmupClass::Warmup), 2);
        assert!((c.fraction(WarmupClass::Warmup) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ClassCounts::default().fraction(WarmupClass::Flat), 0.0);
    }
}
