//! Single-server warmup simulation.
//!
//! A discrete-event model of one web server's life after a restart,
//! following Fig. 3's workflows exactly:
//!
//! * **No Jump-Start** (Fig. 3a): init (sequential warmup requests) →
//!   serve; hot functions get profiling translations; after the profiling
//!   request target, a retranslate-all event compiles every profiled
//!   function on background JIT threads (point A→B), then relocation
//!   (B→C); newly discovered functions get live translations.
//! * **Consumer** (Fig. 3c): deserialize → preload units → compile all
//!   optimized code on *all* cores → serve near peak immediately.
//!
//! Requests compete with compilation for cores; service time per request
//! follows each touched function's current execution mode. Everything
//! dynamic (what compiles when, how much code, how slow interp is) comes
//! from the measured [`AppModel`].
//!
//! The state machine lives in [`sim::ServerSim`]; this module drives it
//! with the event core: the boot window is closed-form (one event), the
//! server then wakes once per simulated second only while *active*
//! (compiling, loading, promoting), and as soon as
//! [`sim::ServerSim::quiescent`] proves the remaining timeline constant,
//! the tail is replicated without further stepping. The retired dense
//! stepper survives as [`reference::simulate_warmup_dense`], the
//! equivalence oracle.

pub mod reference;
mod sim;

use workload::{App, RequestMix};

use crate::engine::{EventQueue, MS};
use crate::metrics::{Sample, Timeline};
use crate::model::AppModel;

pub use sim::{ServerConfig, ServerSim};

/// The per-second step quantum shared by both drivers (ms).
pub(crate) const STEP_MS: u64 = 1000;

/// Outcome of one server's simulated life.
#[derive(Clone, Debug)]
pub struct ServerRun {
    /// The warmup timeline (samples + lifecycle points).
    pub timeline: Timeline,
    /// Total requests served over the simulated duration.
    pub requests: f64,
    /// Steps the event core actually computed.
    pub steps_executed: u64,
    /// Steps the dense reference would have computed (the denominator of
    /// the event core's work saving).
    pub steps_dense: u64,
}

/// One server's event-driven execution: state machine plus timeline
/// bookkeeping. `deploy` multiplexes many of these on one shard-local
/// [`EventQueue`]; wake times returned here are in the server's local
/// clock (ms since its own restart) and the shard adds its stagger
/// offset.
pub(crate) struct ServerTask<'a> {
    sim: ServerSim<'a>,
    timeline: Timeline,
    offered_this_step: f64,
    sample_ms: u64,
    last_now: u64,
    requests: f64,
    steps: u64,
    done: bool,
}

impl<'a> ServerTask<'a> {
    pub(crate) fn new(
        app: &'a App,
        model: &'a AppModel,
        mix: &RequestMix,
        config: &ServerConfig<'_>,
        peak_ms_per_req: Option<f64>,
    ) -> Self {
        let params = config.params;
        let sim = ServerSim::new_with_peak(app, model, mix, config, peak_ms_per_req);
        let peak_rps = params.cores as f64 * 1000.0 / sim.peak_ms_per_req;
        let offered = peak_rps * params.offered_fraction;
        let timeline = Timeline {
            serve_start_ms: sim.serve_start_ms,
            ..Default::default()
        };
        // The dense loop runs steps ending at STEP, 2·STEP, …, up to the
        // first boundary at or past `duration_ms`.
        let last_now = params.duration_ms.div_ceil(STEP_MS) * STEP_MS;
        Self {
            sim,
            timeline,
            offered_this_step: offered * STEP_MS as f64 / 1000.0,
            sample_ms: params.sample_ms,
            last_now,
            requests: 0.0,
            steps: 0,
            done: false,
        }
    }

    /// Emits the closed-form boot window and returns the first serving
    /// step boundary, or `None` if the simulation never reaches serving.
    pub(crate) fn start(&mut self) -> Option<u64> {
        let mut now = STEP_MS;
        while now <= self.sim.serve_start_ms && now <= self.last_now {
            if now.is_multiple_of(self.sample_ms) {
                self.timeline.samples.push(self.sim.boot_sample(now));
            }
            now += STEP_MS;
        }
        if now > self.last_now {
            self.finish();
            return None;
        }
        Some(now)
    }

    /// Runs the serving step ending at `now`; returns the next wakeup
    /// (local ms) or `None` when the server's timeline is complete.
    pub(crate) fn on_step(&mut self, now: u64) -> Option<u64> {
        debug_assert!(!self.done, "stepping a finished server");
        let (served, sample) = self.sim.serve_step(now, STEP_MS, self.offered_this_step);
        self.requests += served;
        self.steps += 1;
        if now.is_multiple_of(self.sample_ms) {
            self.timeline.samples.push(sample);
        }
        if now >= self.last_now {
            self.finish();
            return None;
        }
        if self.sim.quiescent(self.offered_this_step) {
            self.fast_forward(now);
            return None;
        }
        Some(now + STEP_MS)
    }

    /// The server is provably in steady state: compute one more real step
    /// (the first with zero compile interference) and replicate it across
    /// the remaining sample boundaries. Bit-identical to dense stepping
    /// because a quiescent [`ServerSim::serve_step`] is a pure function
    /// of state that no longer changes.
    fn fast_forward(&mut self, now: u64) {
        let steady_now = now + STEP_MS;
        let (served, steady) = self
            .sim
            .serve_step(steady_now, STEP_MS, self.offered_this_step);
        self.requests += served;
        self.steps += 1;
        if steady_now.is_multiple_of(self.sample_ms) {
            self.timeline.samples.push(steady);
        }
        let mut t = steady_now + STEP_MS;
        while t <= self.last_now {
            self.requests += served;
            if t.is_multiple_of(self.sample_ms) {
                self.timeline.samples.push(Sample { t_ms: t, ..steady });
            }
            t += STEP_MS;
        }
        self.finish();
    }

    fn finish(&mut self) {
        self.sim.finish(&mut self.timeline);
        self.done = true;
    }

    pub(crate) fn into_run(self) -> ServerRun {
        debug_assert!(self.done, "collecting an unfinished server");
        ServerRun {
            timeline: self.timeline,
            requests: self.requests,
            steps_executed: self.steps,
            steps_dense: self.last_now / STEP_MS,
        }
    }
}

/// Runs one server's warmup on the event core, returning the timeline
/// plus serving/step accounting.
pub fn run_server(
    app: &App,
    model: &AppModel,
    mix: &RequestMix,
    config: &ServerConfig<'_>,
) -> ServerRun {
    let mut task = ServerTask::new(app, model, mix, config, None);
    let mut queue: EventQueue<()> = EventQueue::new();
    if let Some(first) = task.start() {
        queue.schedule(first * MS, ());
    }
    while let Some((at, ())) = queue.pop() {
        if let Some(next) = task.on_step(at / MS) {
            queue.schedule(next * MS, ());
        }
    }
    task.into_run()
}

/// Runs the warmup simulation, returning the timeline.
pub fn simulate_warmup(
    app: &App,
    model: &AppModel,
    mix: &RequestMix,
    config: &ServerConfig<'_>,
) -> Timeline {
    let _span = telemetry::span!(
        "simulate-warmup",
        "jumpstart" => config.jumpstart.is_some(),
        "duration_ms" => config.params.duration_ms,
    );
    run_server(app, model, mix, config).timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{build_app_model, WarmupParams};
    use jit::JitOptions;
    use jumpstart::{build_package, JumpStartOptions, ProfilePackage, SeederInputs};
    use workload::{generate, profile_run, AppParams};

    fn setup() -> (App, AppModel, ProfilePackage) {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let run = profile_run(&app, &mix, 150, 11);
        let model = build_app_model(&app, &run);
        let pkg = build_package(
            SeederInputs {
                repo: &app.repo,
                tier: run.tier,
                ctx: run.ctx,
                unit_order: run.unit_order,
                requests: run.requests,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        (app, model, pkg)
    }

    fn quick_params(model: &AppModel) -> WarmupParams {
        WarmupParams {
            duration_ms: 300_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 60_000,
            relocation_ms: 20_000,
            ..WarmupParams::fig4()
        }
        .with_compile_window(model, 90_000)
    }

    #[test]
    fn no_jumpstart_walks_through_the_lifecycle() {
        let (app, model, _pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let tl = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: quick_params(&model),
                jumpstart: None,
            },
        );
        assert!(tl.point_a_ms.is_some(), "profiling must end");
        assert!(tl.point_b_ms.is_some(), "optimization must finish");
        assert!(tl.point_c_ms.is_some(), "relocation must finish");
        let (a, b, c) = (
            tl.point_a_ms.unwrap(),
            tl.point_b_ms.unwrap(),
            tl.point_c_ms.unwrap(),
        );
        assert!(a < b && b < c, "A < B < C");
        // Code grows over time.
        let last = tl.samples.last().unwrap();
        assert!(last.code_bytes > 0);
        // RPS eventually recovers.
        assert!(last.rps_norm > 0.9, "got {}", last.rps_norm);
    }

    #[test]
    fn jumpstart_starts_near_peak() {
        let (app, model, pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let params = quick_params(&model);
        let js = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: Some(&pkg),
            },
        );
        let nojs = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: None,
            },
        );
        // Shortly after serving begins, the consumer is already fast.
        let early = js.at(js.serve_start_ms + 20_000).unwrap();
        assert!(early.rps_norm > 0.8, "JS early rps {}", early.rps_norm);
        let early_nojs = nojs.at(nojs.serve_start_ms + 20_000).unwrap();
        assert!(
            early.rps_norm > early_nojs.rps_norm + 0.2,
            "JS {} vs no-JS {}",
            early.rps_norm,
            early_nojs.rps_norm
        );
        // Headline: capacity loss reduced substantially.
        let loss_js = js.capacity_loss_over(params.duration_ms);
        let loss_nojs = nojs.capacity_loss_over(params.duration_ms);
        assert!(
            loss_js < 0.7 * loss_nojs,
            "JS loss {loss_js:.3} should be well below no-JS {loss_nojs:.3}"
        );
    }

    #[test]
    fn latency_improves_with_jumpstart_early_on() {
        let (app, model, pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let params = quick_params(&model);
        let js = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: Some(&pkg),
            },
        );
        let nojs = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params,
                jumpstart: None,
            },
        );
        let t = nojs.serve_start_ms + 30_000;
        let l_js = js.at(t).unwrap().latency_ms;
        let l_nojs = nojs.at(t).unwrap().latency_ms;
        assert!(
            l_nojs > 1.5 * l_js,
            "early latency: no-JS {l_nojs:.2}ms vs JS {l_js:.2}ms"
        );
    }

    #[test]
    fn early_serve_boots_earlier_and_converges() {
        let (app, model, pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let full = quick_params(&model);
        let early = WarmupParams {
            early_serve_frac: 0.5,
            ..full
        };
        let tl_full = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: full,
                jumpstart: Some(&pkg),
            },
        );
        let tl_early = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: early,
                jumpstart: Some(&pkg),
            },
        );
        // Serving starts sooner: only the hottest prefix is priced into
        // the boot window.
        assert!(
            tl_early.serve_start_ms < tl_full.serve_start_ms,
            "early-serve {} should boot before compile-all {}",
            tl_early.serve_start_ms,
            tl_full.serve_start_ms
        );
        // And converges: background compiles finish, so the final code
        // footprint matches and throughput is near peak.
        let last_early = tl_early.samples.last().unwrap();
        let last_full = tl_full.samples.last().unwrap();
        assert_eq!(last_early.code_bytes, last_full.code_bytes);
        assert!(
            last_early.rps_norm > 0.9,
            "early-serve converges, got {}",
            last_early.rps_norm
        );
        // Early-serve never re-enters the Fig. 3a batch machinery.
        assert!(tl_early.point_b_ms.is_none());
        assert!(tl_early.point_c_ms.is_none());
    }

    #[test]
    fn code_size_curve_is_monotonic() {
        let (app, model, _pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let tl = simulate_warmup(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: quick_params(&model),
                jumpstart: None,
            },
        );
        for w in tl.samples.windows(2) {
            assert!(w[1].code_bytes >= w[0].code_bytes);
        }
    }

    #[test]
    fn event_core_skips_most_steps() {
        let (app, model, pkg) = setup();
        let mix = RequestMix::new(&app, 0, 0);
        let run = run_server(
            &app,
            &model,
            &mix,
            &ServerConfig {
                params: quick_params(&model),
                jumpstart: Some(&pkg),
            },
        );
        assert!(run.requests > 0.0);
        assert!(
            run.steps_executed < run.steps_dense / 2,
            "a consumer should quiesce early: {} executed of {} dense",
            run.steps_executed,
            run.steps_dense
        );
    }
}
