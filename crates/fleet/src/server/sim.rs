//! The per-server warmup state machine, shared by both drivers.
//!
//! [`ServerSim`] holds the full Fig. 3 lifecycle state (per-function
//! execution modes, the compile queue, relocation, lazy unit loads) and
//! exposes exactly one transition: [`ServerSim::serve_step`], one
//! simulated second of serving + background compilation. The dense
//! reference driver ([`super::reference`]) calls it for every second; the
//! event-core driver ([`super::run_server`]) calls it only while the
//! server is *active* and skips ahead once [`ServerSim::quiescent`]
//! proves no future step can change state. Because every floating-point
//! operation lives here, in one place, the two drivers agree bit for bit
//! — the equivalence proptests in `tests/event_equivalence.rs` hold with
//! `==`, not epsilons.

use jumpstart::ProfilePackage;
use workload::{App, RequestMix};

use crate::metrics::Sample;
use crate::model::{AppModel, WarmupParams};

/// Per-function execution mode in the warmup model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Mode {
    Interp,
    Profiling,
    Optimized,
    Live,
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig<'p> {
    /// Calibration constants.
    pub params: WarmupParams,
    /// Boot as a Jump-Start consumer with this package.
    pub jumpstart: Option<&'p ProfilePackage>,
}

/// What the event driver watches to prove a server quiescent: the
/// reachable functions that could still be promoted and the units the
/// lazy loader will eventually touch. Built once per run (the offered
/// load is constant), scanned in O(reachable) per check.
#[derive(Debug, Default)]
struct Watch {
    dt_requests: f64,
    interp_funcs: Vec<usize>,
    loadable_units: Vec<usize>,
}

/// The simulation state (exposed for tests and incremental stepping).
#[derive(Debug)]
pub struct ServerSim<'a> {
    app: &'a App,
    model: &'a AppModel,
    pub(crate) params: WarmupParams,
    ep_probs: Vec<f64>,
    mode: Vec<Mode>,
    calls: Vec<f64>,
    unit_loaded: Vec<bool>,
    // Compile queue: (func index, bytes remaining, target mode).
    queue: std::collections::VecDeque<(usize, u64, Mode)>,
    pub(crate) code_bytes: u64,
    retranslate_started: bool,
    optimize_remaining: usize,
    relocation_left_ms: f64,
    relocating: bool,
    optimized_ready: Vec<usize>,
    optimized_phase_done: bool,
    // Early-serve consumer boot: background Jump-Start compiles complete
    // directly into Optimized (no point-B batch / relocation pause).
    consumer_bg: bool,
    bg_pending: Vec<bool>,
    is_js: bool,
    pub(crate) peak_ms_per_req: f64,
    pub(crate) serve_start_ms: u64,
    pub(crate) point_a_ms: Option<u64>,
    pub(crate) point_b_ms: Option<u64>,
    pub(crate) point_c_ms: Option<u64>,
    watch: Option<Watch>,
}

impl<'a> ServerSim<'a> {
    /// Creates the simulation for one server boot.
    pub fn new(
        app: &'a App,
        model: &'a AppModel,
        mix: &RequestMix,
        config: &ServerConfig<'_>,
    ) -> Self {
        Self::new_with_peak(app, model, mix, config, None)
    }

    /// [`ServerSim::new`] with the peak request cost supplied by the
    /// caller. The peak is a pure function of (app, mix, calibration
    /// constants) — none of which vary per server within a deployment
    /// cell — so the fleet orchestrator measures it once per cell and
    /// shares it instead of re-sampling 2000 requests per server.
    pub(crate) fn new_with_peak(
        app: &'a App,
        model: &'a AppModel,
        mix: &RequestMix,
        config: &ServerConfig<'_>,
        peak_ms_per_req: Option<f64>,
    ) -> Self {
        let params = config.params;
        let n = app.repo.funcs().len();
        let mut sim = Self {
            app,
            model,
            params,
            ep_probs: mix.probabilities(),
            mode: vec![Mode::Interp; n],
            calls: vec![0.0; n],
            unit_loaded: vec![false; app.repo.units().len()],
            queue: std::collections::VecDeque::new(),
            code_bytes: 0,
            retranslate_started: false,
            optimize_remaining: 0,
            relocation_left_ms: 0.0,
            relocating: false,
            optimized_ready: Vec::new(),
            optimized_phase_done: false,
            consumer_bg: false,
            bg_pending: vec![false; n],
            is_js: config.jumpstart.is_some(),
            peak_ms_per_req: peak_ms_per_req
                .unwrap_or_else(|| model.peak_request_core_ms(app, mix, &params)),
            serve_start_ms: 0,
            point_a_ms: None,
            point_b_ms: None,
            point_c_ms: None,
            watch: None,
        };
        sim.serve_start_ms = match config.jumpstart {
            None => params.init_ms_nojs,
            Some(pkg) => {
                // Deserialize + preload + compile on every core, then
                // parallel (shorter) init — §IV-A and §VII-A. With
                // `early_serve_frac < 1.0` only the hottest prefix of heat
                // mass is compiled inside the boot window; the remainder
                // finishes on the background JIT threads while serving.
                let order: Vec<bytecode::FuncId> = pkg
                    .tier
                    .functions_by_heat()
                    .into_iter()
                    .filter(|f| f.index() < n)
                    .collect();
                let ready =
                    jumpstart::early_serve_prefix(&pkg.tier, &order, params.early_serve_frac);
                let mut ready_bytes = 0u64;
                for f in &order[..ready] {
                    let i = f.index();
                    ready_bytes += model.opt_bytes[i];
                    // Hottest code is optimized from the first request.
                    sim.mode[i] = Mode::Optimized;
                }
                for f in &order[ready..] {
                    let i = f.index();
                    sim.bg_pending[i] = true;
                    sim.queue
                        .push_back((i, model.opt_bytes[i], Mode::Optimized));
                    sim.consumer_bg = true;
                }
                let compile_ms =
                    ready_bytes as f64 / (params.compile_bytes_per_core_ms * params.cores as f64);
                let mut preload_kb = 0.0;
                for u in &pkg.preload.unit_order {
                    if u.index() < sim.unit_loaded.len() && !sim.unit_loaded[u.index()] {
                        sim.unit_loaded[u.index()] = true;
                        preload_kb += vm::unit_bytes(&app.repo, *u) as f64 / 1024.0;
                    }
                }
                let preload_ms = preload_kb * params.load_ms_per_kb / params.cores as f64;
                sim.code_bytes = ready_bytes;
                sim.optimized_phase_done = true;
                // Consumers never run the profiling phase (Fig. 3c).
                sim.retranslate_started = true;
                params.deserialize_ms + params.init_ms_js + (compile_ms + preload_ms) as u64
            }
        };
        sim
    }

    /// Expected core-milliseconds to serve one request right now,
    /// including lazy-load overhead committed this step.
    fn service_core_ms(&mut self, dt_requests: f64) -> f64 {
        let p = &self.params;
        let mut total_cycles = 0.0;
        let mut load_ms = 0.0;
        for (e, &prob) in self.ep_probs.iter().enumerate() {
            if prob <= 0.0 {
                continue;
            }
            for &(f, calls) in &self.model.endpoint_calls[e] {
                let i = f.index();
                let cpi = match self.mode[i] {
                    Mode::Interp => p.interp_cpi,
                    Mode::Profiling => p.profiling_cpi,
                    Mode::Optimized => p.optimized_cpi,
                    Mode::Live => p.live_cpi,
                };
                total_cycles += prob * calls * self.model.avg_instrs[i] * p.work_scale * cpi;
                // Lazy unit load on first touch (amortized over this step's
                // requests).
                let u = self.app.repo.func(f).unit.index();
                if !self.unit_loaded[u] && prob * dt_requests >= 0.5 {
                    self.unit_loaded[u] = true;
                    load_ms += self.model.unit_bytes[i] as f64 / 1024.0 * p.load_ms_per_kb
                        / dt_requests.max(1.0);
                }
            }
        }
        total_cycles / p.cycles_per_ms + load_ms
    }

    /// Applies the per-function effects of serving `requests` requests.
    fn account_requests(&mut self, requests: f64, now_ms: u64) {
        let p = self.params;
        for (e, &prob) in self.ep_probs.iter().enumerate() {
            let share = prob * requests;
            if share <= 0.0 {
                continue;
            }
            for &(f, calls) in &self.model.endpoint_calls[e] {
                let i = f.index();
                self.calls[i] += share * calls;
                if self.mode[i] == Mode::Interp
                    && !self.bg_pending[i]
                    && self.calls[i] >= p.promote_calls as f64
                {
                    if self.optimized_phase_done {
                        self.queue
                            .push_back((i, self.model.live_bytes[i], Mode::Live));
                    } else if !self.retranslate_started {
                        self.queue
                            .push_back((i, self.model.prof_bytes[i], Mode::Profiling));
                    }
                    // Mark as queued so it isn't enqueued again.
                    self.mode[i] = if self.optimized_phase_done {
                        Mode::Live
                    } else {
                        Mode::Profiling
                    };
                }
            }
        }
        if !self.retranslate_started && now_ms >= self.serve_start_ms + p.profile_serve_ms {
            self.retranslate_started = true;
            self.point_a_ms = Some(now_ms);
            // Enqueue optimize-all jobs hottest-first.
            for &f in &self.model.profiled {
                let i = f.index();
                self.queue
                    .push_back((i, self.model.opt_bytes[i], Mode::Optimized));
                self.optimize_remaining += 1;
            }
        }
    }

    /// Drains the compile queue with `core_ms` of JIT-thread time;
    /// returns the core-milliseconds actually consumed.
    fn run_compilers(&mut self, mut core_ms: f64, now_ms: u64) -> f64 {
        let budget = core_ms;
        let rate = self.params.compile_bytes_per_core_ms;
        if self.relocating {
            self.relocation_left_ms -= core_ms;
            if self.relocation_left_ms <= 0.0 {
                self.relocating = false;
                self.point_c_ms = Some(now_ms);
                for &i in &self.optimized_ready {
                    self.mode[i] = Mode::Optimized;
                }
                self.optimized_ready.clear();
                self.optimized_phase_done = true;
            }
            return budget;
        }
        while core_ms > 0.0 {
            let Some((i, bytes, kind)) = self.queue.front().copied() else {
                break;
            };
            let affordable = (core_ms * rate) as u64;
            if affordable >= bytes {
                core_ms -= bytes as f64 / rate;
                self.queue.pop_front();
                self.code_bytes += bytes;
                match kind {
                    Mode::Optimized if self.consumer_bg => {
                        // Early-serve background compile: the unit goes
                        // live directly (the streaming emitter placed it
                        // at its final address — no relocation batch).
                        self.mode[i] = Mode::Optimized;
                        self.bg_pending[i] = false;
                    }
                    Mode::Optimized => {
                        self.optimized_ready.push(i);
                        self.optimize_remaining -= 1;
                        if self.optimize_remaining == 0 {
                            // Point B: relocation begins.
                            self.point_b_ms = Some(now_ms);
                            self.relocating = true;
                            self.relocation_left_ms = self.params.relocation_ms as f64;
                            return budget;
                        }
                    }
                    mode => self.mode[i] = mode,
                }
            } else {
                // Partial progress: credit the emitted bytes now so the
                // code-size curve (and its final value) reflects all work
                // done, not just each job's completion-step residual.
                self.queue.front_mut().expect("checked").1 -= affordable;
                self.code_bytes += affordable;
                core_ms = 0.0;
                break;
            }
        }
        budget - core_ms
    }

    /// A boot-window timeline sample at `now` (serving has not begun; a
    /// Jump-Start consumer's compile progress is priced into the window).
    pub(crate) fn boot_sample(&self, now: u64) -> Sample {
        let frac = if self.is_js && self.serve_start_ms > 0 {
            now as f64 / self.serve_start_ms as f64
        } else {
            0.0
        };
        Sample {
            t_ms: now,
            rps_norm: 0.0,
            latency_ms: 0.0,
            code_bytes: (self.code_bytes as f64 * frac.min(1.0)) as u64,
        }
    }

    /// One simulated step of `step` ms ending at `now`: background
    /// compilation, then serving under the remaining cores. Returns the
    /// requests served and the timeline sample describing the step (the
    /// driver decides whether `now` is a sampling boundary).
    pub(crate) fn serve_step(
        &mut self,
        now: u64,
        step: u64,
        offered_this_step: f64,
    ) -> (f64, Sample) {
        // Background compile threads (serving competes for the rest);
        // only the core time actually consumed is taken from serving.
        let used_core_ms = self.run_compilers(self.params.jit_threads as f64 * step as f64, now);
        let serve_cores = self.params.cores as f64 - used_core_ms / step as f64;
        // A degrading host serves every request slower the longer it has
        // been up — time-varying, so such a server must never be
        // fast-forwarded (see `quiescent`).
        let degrade =
            1.0 + self.params.degrade_per_mille_per_min as f64 / 1000.0 * (now as f64 / 60_000.0);
        let service_ms = (self.service_core_ms(offered_this_step) * degrade).max(0.01);
        let capacity = serve_cores * step as f64 / service_ms;
        let served = offered_this_step.min(capacity);
        self.account_requests(served, now);
        let util = (offered_this_step / capacity).min(3.0);
        let queue_factor = 1.0 + 2.0 * (util.min(1.0)).powi(3);
        let sample = Sample {
            t_ms: now,
            rps_norm: served / offered_this_step,
            latency_ms: service_ms * queue_factor,
            code_bytes: self.code_bytes,
        };
        (served, sample)
    }

    /// Copies the lifecycle markers into a finished timeline.
    pub(crate) fn finish(&self, timeline: &mut crate::metrics::Timeline) {
        timeline.point_a_ms = self.point_a_ms;
        timeline.point_b_ms = self.point_b_ms;
        timeline.point_c_ms = self.point_c_ms;
    }

    fn build_watch(&self, dt_requests: f64) -> Watch {
        let mut interp_funcs = Vec::new();
        let mut loadable_units = Vec::new();
        for (e, &prob) in self.ep_probs.iter().enumerate() {
            if prob <= 0.0 {
                continue;
            }
            for &(f, _) in &self.model.endpoint_calls[e] {
                let i = f.index();
                if !interp_funcs.contains(&i) {
                    interp_funcs.push(i);
                }
                let u = self.app.repo.func(f).unit.index();
                if prob * dt_requests >= 0.5 && !loadable_units.contains(&u) {
                    loadable_units.push(u);
                }
            }
        }
        Watch {
            dt_requests,
            interp_funcs,
            loadable_units,
        }
    }

    /// Whether no future [`ServerSim::serve_step`] can change any state
    /// that the timeline observes: the compile queue is drained, the
    /// batch lifecycle (retranslate → relocation) has fully completed,
    /// every unit the lazy loader will ever touch is loaded, and — when
    /// traffic flows — no reachable function is still interpreted (each
    /// such function's call counter grows every step and must eventually
    /// cross `promote_calls`). Once this holds, the per-step sample is a
    /// pure function of frozen state and the driver may replicate it.
    pub(crate) fn quiescent(&mut self, offered_this_step: f64) -> bool {
        // A degrading host's service time depends on `now`: the per-step
        // sample is never a pure function of frozen state, so the driver
        // must step it densely to the end.
        if self.params.degrade_per_mille_per_min > 0 {
            return false;
        }
        if !self.queue.is_empty()
            || self.relocating
            || !self.retranslate_started
            || !self.optimized_phase_done
        {
            return false;
        }
        if self
            .watch
            .as_ref()
            .is_none_or(|w| w.dt_requests != offered_this_step)
        {
            self.watch = Some(self.build_watch(offered_this_step));
        }
        let watch = self.watch.as_ref().expect("just built");
        if offered_this_step > 0.0
            && watch
                .interp_funcs
                .iter()
                .any(|&i| self.mode[i] == Mode::Interp)
        {
            return false;
        }
        watch.loadable_units.iter().all(|&u| self.unit_loaded[u])
    }
}
