//! The dense per-second reference stepper — the equivalence oracle for
//! the event core.
//!
//! This is the original fleet simulator loop: one [`ServerSim`] step per
//! simulated second for the whole duration, whether or not anything can
//! change. It is O(duration) per server and exists so the event-driven
//! driver in [`super::run_server`] has ground truth to match bit for bit
//! (see `tests/event_equivalence.rs`). Keep it dumb: its value is that it
//! cannot be clever.

use workload::{App, RequestMix};

use crate::metrics::Timeline;
use crate::model::AppModel;

use super::sim::{ServerConfig, ServerSim};

/// Runs the warmup simulation by dense per-second stepping, returning
/// the timeline. Semantically identical to [`super::simulate_warmup`];
/// asymptotically slower.
pub fn simulate_warmup_dense(
    app: &App,
    model: &AppModel,
    mix: &RequestMix,
    config: &ServerConfig<'_>,
) -> Timeline {
    let params = config.params;
    let mut sim = ServerSim::new(app, model, mix, config);
    let peak_rps = params.cores as f64 * 1000.0 / sim.peak_ms_per_req;
    let offered = peak_rps * params.offered_fraction;

    let mut timeline = Timeline {
        serve_start_ms: sim.serve_start_ms,
        ..Default::default()
    };
    let step = 1000u64; // 1 s
    let mut t = 0u64;
    while t < params.duration_ms {
        let now = t + step;
        if now <= sim.serve_start_ms {
            // Booting: Jump-Start compile work happens inside the boot
            // window (already priced into serve_start_ms).
            if now.is_multiple_of(params.sample_ms) {
                timeline.samples.push(sim.boot_sample(now));
            }
            t = now;
            continue;
        }
        let offered_this_step = offered * step as f64 / 1000.0;
        let (_served, sample) = sim.serve_step(now, step, offered_this_step);
        if now.is_multiple_of(params.sample_ms) {
            timeline.samples.push(sample);
        }
        t = now;
    }
    sim.finish(&mut timeline);
    timeline
}
