//! Fault injection for the deployment pipeline (§VI).
//!
//! Two layers:
//!
//! * [`FaultPlan`] — deterministic per-entity fault rolls woven into
//!   [`crate::run_deployment`]: seeders that crash before publishing,
//!   seeders that profile a drained cell (validation rejects the
//!   undersampled package), and consumers on degraded hosts whose boot
//!   path runs several times slower. Every roll comes from the faulted
//!   entity's own seeded RNG stream, so fault placement is a pure
//!   function of the deployment seed — independent of shard count.
//! * [`run_crashloop`] — the §VI-A crash-loop containment experiment:
//!   a crash-inducing package slipped through validation. Without
//!   randomized selection every consumer would pick it, crash, restart,
//!   pick it again — a fleet-wide crash loop. With several randomized
//!   packages, "the number of affected consumers [reduces] exponentially
//!   with each restart", and the automatic fallback bounds the worst
//!   case.

use bytes::Bytes;
use jumpstart::{BootController, BootDecision, PackageMeta, PackageStore, Poison};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deployment-time fault injection: the failures a C1/C2/C3 push must
/// absorb, expressed as per-mille rates so the plan stays `Copy + Eq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Per-mille chance a C2 seeder crashes before publishing.
    pub seeder_crash_per_mille: u16,
    /// Per-mille chance a seeder profiles a drained cell: its run sees
    /// almost no requests, so validation rejects the package (§VI-B).
    pub undersample_per_mille: u16,
    /// Per-mille chance a C3 consumer lands on a degraded host.
    pub slow_consumer_per_mille: u16,
    /// How much slower a degraded host boots, in percent (300 = 3×
    /// slower init/deserialize and a third of the compile throughput).
    pub slow_factor_pct: u32,
    /// Per-mille chance a server sits on a *degrading* host: one whose
    /// per-request service time inflates with uptime (thermal throttling,
    /// noisy neighbors). Unlike a slow host — which boots badly but then
    /// serves normally — a degrading host gets monotonically worse, so
    /// its timeline must classify as `slowdown`, never `warmup`.
    pub degrading_per_mille: u16,
    /// Service-time inflation rate for degrading hosts, in per-mille per
    /// minute of uptime (see `WarmupParams::degrade_per_mille_per_min`).
    pub degrade_per_mille_per_min: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seeder_crash_per_mille: 0,
            undersample_per_mille: 0,
            slow_consumer_per_mille: 0,
            slow_factor_pct: 300,
            degrading_per_mille: 0,
            degrade_per_mille_per_min: 50,
        }
    }
}

impl FaultPlan {
    /// Sets the seeder-crash rate (builder-style).
    pub fn with_seeder_crashes(mut self, per_mille: u16) -> Self {
        self.seeder_crash_per_mille = per_mille;
        self
    }

    /// Sets the undersampled-seeder rate (builder-style).
    pub fn with_undersampling(mut self, per_mille: u16) -> Self {
        self.undersample_per_mille = per_mille;
        self
    }

    /// Sets the slow-consumer rate and slowdown (builder-style).
    pub fn with_slow_consumers(mut self, per_mille: u16, factor_pct: u32) -> Self {
        self.slow_consumer_per_mille = per_mille;
        self.slow_factor_pct = factor_pct.max(100);
        self
    }

    /// Sets the degrading-host rate and inflation speed (builder-style).
    pub fn with_degrading(mut self, per_mille: u16, per_mille_per_min: u32) -> Self {
        self.degrading_per_mille = per_mille;
        self.degrade_per_mille_per_min = per_mille_per_min;
        self
    }

    /// Rolls a per-mille chance on an entity's own RNG stream. Always
    /// consumes exactly one draw so a plan change never shifts the
    /// stream for unrelated decisions.
    pub(crate) fn roll(rng: &mut SmallRng, per_mille: u16) -> bool {
        rng.gen_range(0..1000u32) < per_mille as u32
    }
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct CrashLoopParams {
    /// Consumers in the (region, bucket) cell.
    pub servers: usize,
    /// Packages published for the cell (§VI-A.2's "several seeders").
    pub packages: usize,
    /// How many of those are crash-inducing.
    pub poisoned: usize,
    /// Crash probability per boot with a poisoned package (per-mille).
    pub poison_per_mille: u16,
    /// Jump-Start boot attempts before automatic fallback (§VI-A.3).
    pub max_boot_attempts: u32,
    /// Restart waves to simulate.
    pub waves: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrashLoopParams {
    fn default() -> Self {
        Self {
            servers: 2000,
            packages: 5,
            poisoned: 1,
            poison_per_mille: 1000,
            max_boot_attempts: 3,
            waves: 8,
            seed: 0xfb,
        }
    }
}

/// Experiment outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashLoopReport {
    /// Servers that crashed in each wave.
    pub crashed_per_wave: Vec<usize>,
    /// Servers that ended up booting without Jump-Start.
    pub fallbacks: usize,
    /// Servers healthy with Jump-Start.
    pub healthy_jumpstart: usize,
    /// Waves until the whole fleet was healthy (`None` if never).
    pub waves_to_healthy: Option<u32>,
}

/// Runs the crash-loop experiment.
pub fn run_crashloop(params: &CrashLoopParams) -> CrashLoopReport {
    let store = PackageStore::new();
    for i in 0..params.packages {
        let poison = if i < params.poisoned {
            Poison::RuntimeCrash {
                per_mille: params.poison_per_mille,
            }
        } else {
            Poison::None
        };
        store.publish(
            PackageMeta {
                region: 0,
                bucket: 0,
                seeder_id: i as u64,
                poison,
                ..Default::default()
            },
            Bytes::from_static(b"pkg"),
        );
    }
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut controllers: Vec<BootController> = (0..params.servers)
        .map(|_| BootController::new(params.max_boot_attempts))
        .collect();
    let mut healthy = vec![false; params.servers];
    let mut via_fallback = vec![false; params.servers];
    let mut report = CrashLoopReport::default();

    for wave in 0..params.waves {
        let mut crashed = 0;
        for (s, ctl) in controllers.iter_mut().enumerate() {
            if healthy[s] {
                continue;
            }
            match ctl.decide(&store, 0, 0, &mut rng) {
                BootDecision::Fallback => {
                    healthy[s] = true;
                    via_fallback[s] = true;
                }
                BootDecision::TryPackage(pkg) => {
                    let crashes = match pkg.meta.poison {
                        Poison::None => false,
                        Poison::CompileCrash => true,
                        Poison::RuntimeCrash { per_mille } => {
                            rng.gen_range(0..1000) < per_mille as u32
                        }
                    };
                    if crashes {
                        crashed += 1;
                    } else {
                        ctl.record_healthy();
                        healthy[s] = true;
                    }
                }
            }
        }
        report.crashed_per_wave.push(crashed);
        if healthy.iter().all(|&h| h) && report.waves_to_healthy.is_none() {
            report.waves_to_healthy = Some(wave + 1);
            break;
        }
    }
    report.fallbacks = via_fallback.iter().filter(|&&f| f).count();
    report.healthy_jumpstart = healthy
        .iter()
        .zip(&via_fallback)
        .filter(|(&h, &f)| h && !f)
        .count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashes_decay_exponentially_with_randomized_packages() {
        let report = run_crashloop(&CrashLoopParams {
            servers: 5000,
            packages: 5,
            poisoned: 1,
            ..Default::default()
        });
        let w = &report.crashed_per_wave;
        // Wave 0: ~1/5 of the fleet crashes; each later wave shrinks ~5x.
        assert!(w[0] > 800 && w[0] < 1200, "wave0 {w:?}");
        assert!(w[1] < w[0] / 3, "decay: {w:?}");
        if w.len() > 2 {
            assert!(w[2] <= w[1] / 2, "decay: {w:?}");
        }
        assert!(report.waves_to_healthy.is_some());
    }

    #[test]
    fn single_bad_package_without_randomization_crash_loops_then_falls_back() {
        let report = run_crashloop(&CrashLoopParams {
            servers: 1000,
            packages: 1,
            poisoned: 1,
            max_boot_attempts: 3,
            waves: 10,
            ..Default::default()
        });
        // Every server crashes for max_boot_attempts waves, then falls back.
        assert_eq!(report.crashed_per_wave[0], 1000);
        assert_eq!(report.crashed_per_wave[1], 1000);
        assert_eq!(report.crashed_per_wave[2], 1000);
        assert_eq!(report.fallbacks, 1000);
        assert_eq!(report.healthy_jumpstart, 0);
        assert_eq!(report.waves_to_healthy, Some(4));
    }

    #[test]
    fn healthy_packages_boot_everyone_first_wave() {
        let report = run_crashloop(&CrashLoopParams {
            servers: 500,
            packages: 4,
            poisoned: 0,
            ..Default::default()
        });
        assert_eq!(report.crashed_per_wave[0], 0);
        assert_eq!(report.waves_to_healthy, Some(1));
        assert_eq!(report.healthy_jumpstart, 500);
        assert_eq!(report.fallbacks, 0);
    }

    #[test]
    fn no_packages_means_everyone_falls_back() {
        let report = run_crashloop(&CrashLoopParams {
            servers: 100,
            packages: 0,
            poisoned: 0,
            ..Default::default()
        });
        assert_eq!(report.fallbacks, 100);
        assert_eq!(report.waves_to_healthy, Some(1));
    }
}
