//! Data-center fleet simulation: server warmup, continuous deployment and
//! reliability.
//!
//! The paper's warmup evaluation (Figs. 1, 2, 4) is about what one web
//! server goes through after a restart: initialization, lazy loading,
//! profiling translations, the retranslate-all event, relocation, live
//! JITing — all while serving (or failing to serve) production traffic.
//! This crate simulates that timeline:
//!
//! * [`AppModel`] — per-function static facts (sizes of each translation
//!   kind, average work per call, per-endpoint call vectors) measured once
//!   from the real pipeline,
//! * [`ServerSim`] / [`simulate_warmup`] — a discrete-time single-server
//!   simulation producing RPS/latency/code-size timelines,
//! * [`capacity_loss`] — the area-above-the-curve metric of Fig. 2,
//! * [`deploy`] — the C1/C2/C3 phased push with seeders and validation,
//! * [`faults`] — crash-loop containment experiments for §VI.

mod deploy;
mod export;
mod faults;
mod metrics;
mod model;
mod server;
mod steady;

pub use deploy::{run_deployment, DeployParams, DeployReport};
pub use export::{server_registry, timelines_to_trace};
pub use faults::{run_crashloop, CrashLoopParams, CrashLoopReport};
pub use metrics::{capacity_loss, capacity_loss_from, Sample, Timeline};
pub use model::{build_app_model, AppModel, WarmupParams};
pub use server::{simulate_warmup, ServerConfig, ServerSim};
pub use steady::{measure_steady_state, SteadyConfig, SteadyOutcome, SteadyParams};
