//! Data-center fleet simulation: server warmup, continuous deployment and
//! reliability — at paper scale.
//!
//! The paper's warmup evaluation (Figs. 1, 2, 4) is about what one web
//! server goes through after a restart: initialization, lazy loading,
//! profiling translations, the retranslate-all event, relocation, live
//! JITing — all while serving (or failing to serve) production traffic,
//! across a fleet of more than 2000 servers pushed three times a day.
//! This crate simulates that:
//!
//! * [`engine`] — the discrete-event core: arena-backed event pool,
//!   binary-heap scheduler, integer-ns timestamps,
//! * [`AppModel`] — per-function static facts (sizes of each translation
//!   kind, average work per call, per-endpoint call vectors) measured once
//!   from the real pipeline,
//! * [`ServerSim`] / [`simulate_warmup`] — an event-driven single-server
//!   simulation producing RPS/latency/code-size timelines; the dense
//!   per-second stepper survives as [`simulate_warmup_dense`], the
//!   equivalence oracle,
//! * [`capacity_loss`] — the area-above-the-curve metric of Fig. 2,
//! * [`deploy`] — the two-level C1/C2/C3 push: per-(region, bucket)
//!   seeding done once and shared read-only, then thousands of consumers
//!   fanned out over shard threads with per-server RNG streams,
//! * [`faults`] — crash-loop containment and deployment fault injection
//!   for §VI,
//! * [`warmup`](classify_timeline) — PELT changepoint segmentation and
//!   Barrett-style warmup classification (warmup / slowdown / flat /
//!   cyclic / no-steady-state) over per-server timelines, rolled up into
//!   a fleet [`WarmupReport`] with bootstrap confidence intervals.

pub mod engine;

mod deploy;
mod distribution;
mod export;
mod faults;
mod metrics;
mod model;
mod server;
mod steady;
mod warmup;

pub use deploy::{
    run_deployment, run_deployment_with_prior, DeployParams, DeployReport, FleetShape, ServerStat,
    ShardStats,
};
pub use distribution::{
    package_wire, simulate_cell_links, DistributionParams, DistributionReport, Fetch, FetchOutcome,
    PackageWire,
};
pub use export::{server_registry, timelines_to_trace, timelines_to_trace_capped};
pub use faults::{run_crashloop, CrashLoopParams, CrashLoopReport, FaultPlan};
pub use metrics::{capacity_loss, capacity_loss_from, Sample, Timeline};
pub use model::{build_app_model, AppModel, WarmupParams};
pub use server::reference::simulate_warmup_dense;
pub use server::{run_server, simulate_warmup, ServerConfig, ServerRun, ServerSim};
pub use steady::{measure_steady_state, SteadyConfig, SteadyOutcome, SteadyParams};
pub use warmup::{
    classify_timeline, pelt_changepoints, pelt_changepoints_reference, segment_series, ArmSummary,
    CiStat, ClassCounts, Segment, TimelineClass, WarmupAccumulator, WarmupAnalysisParams,
    WarmupClass, WarmupReport,
};
