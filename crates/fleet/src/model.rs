//! Static per-application facts the warmup simulation needs, measured once
//! from the real compilation pipeline (not assumed).

use std::collections::HashMap;

use bytecode::FuncId;
use jit::{translate_live, translate_optimized, translate_profiling, InlineParams, WeightSource};
use vm::{ExecObserver, Value, Vm};
use workload::{App, ProfileRun, RequestMix, RequestSampler};

/// Calibration constants for the warmup timeline.
///
/// Two presets reproduce the paper's two time scales: [`WarmupParams::fig1`]
/// (the 30-minute lifecycle of Figs. 1–2) and [`WarmupParams::fig4`] (the
/// 10-minute warmup comparison of Fig. 4). The calibrated values are
/// documented in DESIGN.md §2 — absolute times are fit to the paper's
/// curves, while every *difference* between configurations comes from
/// mechanism (compile work, parallelism, preloading).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmupParams {
    /// Simulated duration (ms).
    pub duration_ms: u64,
    /// Timeline sampling period (ms).
    pub sample_ms: u64,
    /// Cores per server (paper: 16-core Xeon D-1581).
    pub cores: u32,
    /// Offered load as a fraction of peak capacity.
    pub offered_fraction: f64,
    /// Cycles per millisecond of one core (1.8 GHz).
    pub cycles_per_ms: f64,
    /// Workload scale: each synthetic bytecode instruction stands for this
    /// many real ones (the synthetic app is ~10³ smaller than the site).
    pub work_scale: f64,
    /// Cycles per (scaled) bytecode instruction by execution mode.
    pub interp_cpi: f64,
    /// See `interp_cpi`.
    pub profiling_cpi: f64,
    /// See `interp_cpi`.
    pub live_cpi: f64,
    /// See `interp_cpi`.
    pub optimized_cpi: f64,
    /// Process initialization before serving, without Jump-Start
    /// (sequential warmup requests, §VII-A).
    pub init_ms_nojs: u64,
    /// Initialization with Jump-Start (parallel warmup requests).
    pub init_ms_js: u64,
    /// Package download + deserialize time.
    pub deserialize_ms: u64,
    /// Serving time before the retranslate-all event — point A (HHVM uses
    /// a request-count trigger; under steady load that is a fixed time).
    pub profile_serve_ms: u64,
    /// Calls before a function gets a profiling/live translation.
    pub promote_calls: u64,
    /// Background JIT worker threads while serving.
    pub jit_threads: u32,
    /// Compile throughput: emitted bytes per core-millisecond.
    pub compile_bytes_per_core_ms: f64,
    /// Relocation pause between points B and C (ms).
    pub relocation_ms: u64,
    /// Unit metadata load cost (ms per KB, lazy loading overhead folded
    /// into early requests).
    pub load_ms_per_kb: f64,
    /// Consumer early-serve threshold: the boot reports ready once this
    /// fraction of tier-profile heat mass is compiled hottest-first; the
    /// remainder compiles on background JIT threads while serving
    /// (`1.0` = classic Fig. 3c compile-all-before-serving).
    pub early_serve_frac: f64,
    /// Host degradation: per-request service time inflates by this many
    /// per-mille per minute of uptime (0 = healthy host). Models the
    /// slowly-sickening machines (thermal throttling, noisy neighbors,
    /// leaking sidecars) whose timelines must classify as `slowdown`
    /// rather than being averaged away.
    pub degrade_per_mille_per_min: u32,
}

impl WarmupParams {
    /// The 30-minute lifecycle scale of Figs. 1 and 2.
    pub fn fig1() -> Self {
        Self {
            duration_ms: 1_800_000,
            sample_ms: 10_000,
            cores: 16,
            offered_fraction: 1.0,
            cycles_per_ms: 1_800_000.0,
            work_scale: 220.0,
            interp_cpi: 40.0,
            profiling_cpi: 11.0,
            live_cpi: 5.0,
            optimized_cpi: 3.0,
            init_ms_nojs: 75_000,
            init_ms_js: 40_000,
            deserialize_ms: 12_000,
            profile_serve_ms: 380_000,
            promote_calls: 2,
            jit_threads: 3,
            compile_bytes_per_core_ms: 1.0,
            relocation_ms: 150_000,
            load_ms_per_kb: 0.25,
            early_serve_frac: 1.0,
            degrade_per_mille_per_min: 0,
        }
    }

    /// The 10-minute warmup-comparison scale of Fig. 4.
    pub fn fig4() -> Self {
        Self {
            duration_ms: 600_000,
            sample_ms: 5_000,
            profile_serve_ms: 200_000,
            relocation_ms: 60_000,
            init_ms_nojs: 60_000,
            init_ms_js: 30_000,
            deserialize_ms: 8_000,
            compile_bytes_per_core_ms: 1.0,
            ..Self::fig1()
        }
    }
}

impl WarmupParams {
    /// Sets the compile throughput so the retranslate-all batch (A→B)
    /// takes `window_ms` on the background JIT threads — the calibration
    /// hook that keeps the timeline faithful across app sizes.
    pub fn with_compile_window(mut self, model: &AppModel, window_ms: u64) -> Self {
        let core_ms = self.jit_threads as f64 * window_ms.max(1) as f64;
        self.compile_bytes_per_core_ms = (model.total_opt_bytes as f64 / core_ms).max(0.001);
        self
    }

    /// Sets the simulated duration (builder-style; new knobs grow here
    /// instead of widening struct literals at every call site).
    pub fn with_duration(mut self, ms: u64) -> Self {
        self.duration_ms = ms;
        self
    }

    /// Sets the timeline sampling period.
    pub fn with_sample_every(mut self, ms: u64) -> Self {
        self.sample_ms = ms.max(1);
        self
    }

    /// Sets offered load as a fraction of peak capacity.
    pub fn with_offered_fraction(mut self, frac: f64) -> Self {
        self.offered_fraction = frac;
        self
    }

    /// Sets the consumer early-serve threshold (`1.0` = compile all
    /// before serving).
    pub fn with_early_serve(mut self, frac: f64) -> Self {
        self.early_serve_frac = frac;
        self
    }

    /// Sets the host-degradation rate (service-time inflation in
    /// per-mille per minute of uptime; 0 = healthy).
    pub fn with_degrade(mut self, per_mille_per_min: u32) -> Self {
        self.degrade_per_mille_per_min = per_mille_per_min;
        self
    }
}

impl Default for WarmupParams {
    fn default() -> Self {
        Self::fig4()
    }
}

/// Per-function and per-endpoint facts measured from the real pipeline.
#[derive(Debug)]
pub struct AppModel {
    /// Average (unscaled) bytecode instructions per call, per function.
    pub avg_instrs: Vec<f64>,
    /// Optimized-translation bytes per function (0 = not profiled).
    pub opt_bytes: Vec<u64>,
    /// Profiling-translation bytes per function.
    pub prof_bytes: Vec<u64>,
    /// Live-translation bytes per function.
    pub live_bytes: Vec<u64>,
    /// Unit metadata bytes per function's unit (lazy-load cost).
    pub unit_bytes: Vec<u64>,
    /// Expected calls per request, per endpoint: `(func, calls)`.
    pub endpoint_calls: Vec<Vec<(FuncId, f64)>>,
    /// Functions with tier-1 profile data (the optimize-all set).
    pub profiled: Vec<FuncId>,
    /// Total optimized bytes across the optimize-all set.
    pub total_opt_bytes: u64,
}

impl AppModel {
    /// Peak (fully optimized) core-milliseconds per request, averaged over
    /// the mix.
    pub fn peak_request_core_ms(&self, app: &App, mix: &RequestMix, params: &WarmupParams) -> f64 {
        // Expectation over endpoints of optimized-mode service time.
        let mut total = 0.0;
        let mut weight = 0.0;
        let mut sampler = RequestSampler::new(99);
        let mut rng_hits = vec![0u32; self.endpoint_calls.len()];
        for _ in 0..2000 {
            let (f, _) = sampler.request(app, mix);
            if let Some(e) = app.endpoints.iter().position(|ep| ep.func == f) {
                rng_hits[e] += 1;
            }
        }
        for (e, &hits) in rng_hits.iter().enumerate() {
            if hits == 0 {
                continue;
            }
            let mut cycles = 0.0;
            for &(f, calls) in &self.endpoint_calls[e] {
                cycles +=
                    calls * self.avg_instrs[f.index()] * params.work_scale * params.optimized_cpi;
            }
            total += hits as f64 * (cycles / params.cycles_per_ms);
            weight += hits as f64;
        }
        total / weight.max(1.0)
    }
}

struct CallCounter {
    calls: HashMap<FuncId, u64>,
}

impl ExecObserver for CallCounter {
    fn on_func_enter(&mut self, func: FuncId, _args: &[Value]) {
        *self.calls.entry(func).or_insert(0) += 1;
    }
}

/// Measures the app model: translation sizes from the real translators,
/// per-endpoint call vectors from real interpretation.
pub fn build_app_model(app: &App, run: &ProfileRun) -> AppModel {
    let repo = &app.repo;
    let n = repo.funcs().len();
    let mut avg_instrs = vec![0f64; n];
    let mut opt_bytes = vec![0u64; n];
    let mut prof_bytes = vec![0u64; n];
    let mut live_bytes = vec![0u64; n];
    let mut unit_bytes = vec![0u64; n];

    for func in repo.funcs() {
        let i = func.id.index();
        unit_bytes[i] = vm::unit_bytes(repo, func.unit) as u64;
        let live = translate_live(repo, func.id, &run.ctx);
        live_bytes[i] = live.code_size() as u64;
        let prof = translate_profiling(repo, func.id, &run.ctx);
        prof_bytes[i] = prof.code_size() as u64;
        if let Some(fp) = run.tier.funcs.get(&func.id) {
            let cfg = bytecode::Cfg::build(func);
            avg_instrs[i] = fp.avg_instrs_per_call(&cfg).max(1.0);
            let opt = translate_optimized(
                repo,
                func.id,
                &run.tier,
                &run.ctx,
                WeightSource::Accurate,
                InlineParams::default(),
                &|_, _| None,
            );
            opt_bytes[i] = opt.code_size() as u64;
        } else {
            avg_instrs[i] = func.code.len() as f64 * 0.6;
        }
    }

    // Per-endpoint call vectors: interpret a few sampled arguments.
    let mut endpoint_calls = Vec::with_capacity(app.endpoints.len());
    let mut vm = Vm::new(repo);
    for ep in &app.endpoints {
        let mut counter = CallCounter {
            calls: HashMap::new(),
        };
        let trials: [i64; 3] = [1, 497, 910];
        for arg in trials {
            vm.call_observed(ep.func, &[Value::Int(arg)], &mut counter)
                .expect("endpoint executes");
            vm.take_output();
        }
        let mut v: Vec<(FuncId, f64)> = counter
            .calls
            .into_iter()
            .map(|(f, c)| (f, c as f64 / trials.len() as f64))
            .collect();
        v.sort_by_key(|&(f, _)| f);
        endpoint_calls.push(v);
    }

    let profiled: Vec<FuncId> = run.tier.functions_by_heat();
    let total_opt_bytes = profiled.iter().map(|f| opt_bytes[f.index()]).sum();

    AppModel {
        avg_instrs,
        opt_bytes,
        prof_bytes,
        live_bytes,
        unit_bytes,
        endpoint_calls,
        profiled,
        total_opt_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, AppParams};

    fn setup() -> (App, ProfileRun) {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let run = workload::profile_run(&app, &mix, 120, 5);
        (app, run)
    }

    #[test]
    fn model_measures_translation_sizes() {
        let (app, run) = setup();
        let model = build_app_model(&app, &run);
        assert!(model.total_opt_bytes > 0);
        assert!(!model.profiled.is_empty());
        // Profiling code is bigger than live code for profiled functions.
        let f = model.profiled[0].index();
        assert!(model.prof_bytes[f] > model.live_bytes[f]);
        assert!(model.opt_bytes[f] > 0);
    }

    #[test]
    fn endpoint_call_vectors_cover_callees() {
        let (app, run) = setup();
        let model = build_app_model(&app, &run);
        // Every endpoint calls at least itself plus some helpers.
        for (e, calls) in model.endpoint_calls.iter().enumerate() {
            assert!(
                calls.len() >= 2,
                "endpoint {e} should reach helpers, got {calls:?}"
            );
        }
    }

    #[test]
    fn peak_request_cost_is_positive_and_small() {
        let (app, run) = setup();
        let model = build_app_model(&app, &run);
        let mix = RequestMix::new(&app, 0, 0);
        let params = WarmupParams::fig4();
        let ms = model.peak_request_core_ms(&app, &mix, &params);
        assert!(ms > 0.0, "positive request cost");
        assert!(ms < 1000.0, "sane request cost, got {ms}");
    }

    #[test]
    fn presets_differ_in_scale() {
        assert!(WarmupParams::fig1().duration_ms > WarmupParams::fig4().duration_ms);
        assert!(WarmupParams::fig1().profile_serve_ms > WarmupParams::fig4().profile_serve_ms);
    }
}
