//! The continuous-deployment pipeline at paper scale: C1 → C2 (seeders) →
//! C3 (consumers), per §II-C and §IV-A.
//!
//! Two-level orchestration:
//!
//! 1. **Per-cell work, once.** For each (region, bucket) cell the C2
//!    seeders profile, validate and publish (with [`FaultPlan`] rolls for
//!    crashed or undersampled seeders), then the cell's consumer-side
//!    inputs are prepared a single time: the request mix, the measured
//!    [`AppModel`], the peak request cost, and every published package
//!    decoded once. All of it is shared read-only with every server in
//!    the cell — 2000 consumers cost one deserialization, not 2000.
//! 2. **Fan-out over shards.** Every server (Jump-Start consumers and
//!    no-Jump-Start baselines) becomes a [`Slot`] whose randomized
//!    decisions — restart stagger, boot-time jitter, degraded-host roll,
//!    package pick — are drawn up front from a per-server RNG stream
//!    keyed only by the deployment seed and the server's global id.
//!    Shards then execute their slice of slots on the event core
//!    ([`crate::engine`]), multiplexing thousands of
//!    [`ServerTask`](crate::server)s on one shard-local event queue.
//!    Because shards consume no randomness and share no mutable state,
//!    the report is bit-identical for any shard count (proved by
//!    `tests/event_equivalence.rs`).
//!
//! Memory stays flat at scale: full telemetry registries and Chrome-trace
//! tracks exist only for each cell's representative servers; everyone
//! else is carried as a compact [`ServerStat`] that still feeds the
//! fleet-wide percentiles via [`telemetry::aggregate_values`].

use jit::JitOptions;
use jumpstart::chunk::ChunkPool;
use jumpstart::{
    build_package, JumpStartOptions, PackageStore, ProfilePackage, SeederInputs, Validator,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::{App, RequestMix};

use crate::distribution::{
    package_wire, simulate_cell_links, DistributionParams, DistributionReport, Fetch, PackageWire,
};
use crate::engine::{EventQueue, MS};
use crate::export::{server_registry, timelines_to_trace_capped};
use crate::faults::FaultPlan;
use crate::metrics::Timeline;
use crate::model::{build_app_model, AppModel, WarmupParams};
use crate::server::{ServerConfig, ServerTask};
use crate::warmup::{WarmupAccumulator, WarmupAnalysisParams, WarmupClass, WarmupReport};

/// Most servers a single Chrome trace will carry per group; beyond this
/// the export drops tracks (recorded in the trace's `dropped` count).
const MAX_TRACE_TRACKS: usize = 64;
/// Most samples per Chrome-trace counter series; longer timelines are
/// thinned with an even stride.
const MAX_TRACE_SAMPLES: usize = 2_000;

/// How many servers of each kind a deployment simulates per (region,
/// bucket) cell, and how the work is spread over OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetShape {
    /// Jump-Start consumers per cell.
    pub servers_per_cell: u32,
    /// No-Jump-Start baseline servers per cell (the control group the
    /// capacity-loss reduction is measured against).
    pub baselines_per_cell: u32,
    /// Servers per cell (of each kind) that keep a full timeline, metrics
    /// registry and Chrome-trace track; the rest are compact stats only.
    pub representatives_per_cell: u32,
    /// OS threads the fleet is sharded across. Results are bit-identical
    /// for any value; this only changes wall time.
    pub shards: u32,
    /// Restarts are staggered uniformly over this window (ms of fleet
    /// time), like a real rolling push.
    pub restart_stagger_ms: u64,
    /// Per-server boot-time jitter: init/deserialize costs are scaled by
    /// a factor drawn uniformly from `1000 ± jitter` per-mille.
    pub jitter_per_mille: u16,
}

impl Default for FleetShape {
    fn default() -> Self {
        Self {
            servers_per_cell: 1,
            baselines_per_cell: 1,
            representatives_per_cell: 1,
            shards: 1,
            restart_stagger_ms: 0,
            jitter_per_mille: 0,
        }
    }
}

impl FleetShape {
    /// Sets consumers and baselines per cell (builder-style).
    pub fn with_servers(mut self, consumers: u32, baselines: u32) -> Self {
        self.servers_per_cell = consumers;
        self.baselines_per_cell = baselines;
        self
    }

    /// Sets how many servers per cell keep full telemetry.
    pub fn with_representatives(mut self, n: u32) -> Self {
        self.representatives_per_cell = n;
        self
    }

    /// Sets the shard (thread) count.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the rolling-restart stagger window.
    pub fn with_stagger(mut self, window_ms: u64) -> Self {
        self.restart_stagger_ms = window_ms;
        self
    }

    /// Sets the per-server boot-time jitter.
    pub fn with_jitter(mut self, per_mille: u16) -> Self {
        self.jitter_per_mille = per_mille.min(999);
        self
    }
}

/// Deployment parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeployParams {
    /// Data-center regions.
    pub regions: u32,
    /// Semantic buckets per region.
    pub buckets: u32,
    /// Seeders per (region, bucket) cell (§VI-A.2 recommends several).
    pub seeders_per_cell: u32,
    /// Requests each seeder profiles during C2.
    pub seeder_requests: usize,
    /// Warmup calibration for the C3 consumers.
    pub warmup: WarmupParams,
    /// Jump-Start options.
    pub js_opts: JumpStartOptions,
    /// JIT options.
    pub jit_opts: JitOptions,
    /// Fleet size and sharding.
    pub fleet: FleetShape,
    /// Injected failures (crashed seeders, drained cells, slow hosts).
    pub faults: FaultPlan,
    /// Package distribution model (off by default: downloads are free,
    /// matching the pre-chunk-store calibration).
    pub distribution: DistributionParams,
    /// Warmup-classification tuning (segmentation penalty, steady band,
    /// bootstrap CI seeding).
    pub analysis: WarmupAnalysisParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeployParams {
    fn default() -> Self {
        Self {
            regions: 2,
            buckets: 2,
            seeders_per_cell: 2,
            seeder_requests: 150,
            warmup: WarmupParams::fig4(),
            js_opts: JumpStartOptions::default(),
            jit_opts: JitOptions::default(),
            fleet: FleetShape::default(),
            faults: FaultPlan::default(),
            distribution: DistributionParams::default(),
            analysis: WarmupAnalysisParams::default(),
            seed: 1,
        }
    }
}

impl DeployParams {
    /// Sets the (region, bucket) grid (builder-style).
    pub fn with_cells(mut self, regions: u32, buckets: u32) -> Self {
        self.regions = regions;
        self.buckets = buckets;
        self
    }

    /// Sets C2 seeder count and profiling depth per cell.
    pub fn with_seeders(mut self, per_cell: u32, requests: usize) -> Self {
        self.seeders_per_cell = per_cell;
        self.seeder_requests = requests;
        self
    }

    /// Sets the consumer warmup calibration.
    pub fn with_warmup(mut self, warmup: WarmupParams) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the Jump-Start (validation) options.
    pub fn with_js_opts(mut self, js_opts: JumpStartOptions) -> Self {
        self.js_opts = js_opts;
        self
    }

    /// Sets the fleet shape.
    pub fn with_fleet(mut self, fleet: FleetShape) -> Self {
        self.fleet = fleet;
        self
    }

    /// Sets the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the package-distribution model.
    pub fn with_distribution(mut self, distribution: DistributionParams) -> Self {
        self.distribution = distribution;
        self
    }

    /// Sets the warmup-classification tuning.
    pub fn with_analysis(mut self, analysis: WarmupAnalysisParams) -> Self {
        self.analysis = analysis;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn cells(&self) -> usize {
        self.regions as usize * self.buckets as usize
    }
}

/// Compact per-server outcome — what every server contributes to the
/// fleet percentiles, whether or not it kept a full registry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerStat {
    /// Global server id (stable across shard counts).
    pub gid: u32,
    /// Data-center region.
    pub region: u32,
    /// Semantic bucket.
    pub bucket: u32,
    /// Whether the server booted with a Jump-Start package.
    pub jumpstart: bool,
    /// Whether the fault plan placed it on a degraded host.
    pub slow_host: bool,
    /// Whether the fault plan placed it on a *degrading* host (service
    /// time inflating with uptime).
    pub degrading: bool,
    /// Warmup class assigned by the changepoint classifier.
    pub class: WarmupClass,
    /// Time-to-steady-state (ms from restart; `Warmup`/`Flat` only).
    pub steady_ms: Option<u64>,
    /// Boot time (ms from its own restart to serving).
    pub boot_ms: u64,
    /// First time normalized RPS reached 0.9 (ms), if ever.
    pub ready_ms: Option<u64>,
    /// Capacity loss over its simulated duration.
    pub capacity_loss: f64,
    /// Requests served over the simulated duration.
    pub requests: f64,
    /// Steps the event core actually computed for this server.
    pub steps_executed: u64,
    /// Steps the dense reference stepper would have computed.
    pub steps_dense: u64,
    /// Package bytes this server pulled over its cell link (0 when the
    /// distribution model is off or the server booted without a package).
    pub bytes_on_wire: u64,
    /// Package download time including link queueing (ms; 0 when the
    /// distribution model is off).
    pub download_ms: u64,
}

/// Event-core accounting for one deployment run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Shards (OS threads) the fleet ran on.
    pub shards: u32,
    /// Total servers simulated (consumers + baselines).
    pub servers: usize,
    /// Events processed across all shard queues.
    pub events: u64,
    /// Steps actually computed (≤ events; boot windows are closed-form).
    pub steps_executed: u64,
    /// Steps a dense per-second stepper would have computed.
    pub steps_dense: u64,
    /// Requests served across the fleet.
    pub requests: f64,
}

/// Outcome of one push.
#[derive(Debug)]
pub struct DeployReport {
    /// Packages published after validation.
    pub published: usize,
    /// Seeder packages rejected by validation.
    pub validation_failures: usize,
    /// Seeders that crashed before publishing (fault injection).
    pub seeder_crashes: usize,
    /// Representative consumer warmup timelines (Jump-Start).
    pub js_timelines: Vec<Timeline>,
    /// Representative baseline timelines (no Jump-Start).
    pub nojs_timelines: Vec<Timeline>,
    /// Full metrics registry per representative Jump-Start consumer:
    /// `server.boot_ms`, `server.ready_ms`, `server.capacity_loss`.
    pub server_registries: Vec<telemetry::Registry>,
    /// Compact outcome for every server in the fleet, in gid order.
    pub stats: Vec<ServerStat>,
    /// Event-core accounting.
    pub sim: ShardStats,
    /// Distribution-model accounting (all-zero when the model is off).
    pub distribution: DistributionReport,
    /// Changepoint-based warmup classification of every server (per-class
    /// fractions per arm, time-to-steady-state percentiles with bootstrap
    /// CIs, and the median fleet warmup curve).
    pub warmup: WarmupReport,
}

impl DeployReport {
    /// Mean capacity loss over `window_ms` with Jump-Start, across the
    /// whole fleet (not just representatives).
    pub fn mean_loss_js(&self, window_ms: u64) -> f64 {
        self.mean_loss(window_ms, true)
    }

    /// Mean capacity loss without Jump-Start.
    pub fn mean_loss_nojs(&self, window_ms: u64) -> f64 {
        self.mean_loss(window_ms, false)
    }

    fn mean_loss(&self, window_ms: u64, jumpstart: bool) -> f64 {
        // Representatives carry full timelines, so arbitrary windows are
        // exact for them; everyone else's stat is over the full duration.
        // Use timelines when the window is custom, stats otherwise.
        let tls = if jumpstart {
            &self.js_timelines
        } else {
            &self.nojs_timelines
        };
        if !tls.is_empty() {
            return mean(tls.iter().map(|t| t.capacity_loss_over(window_ms)));
        }
        mean(
            self.stats
                .iter()
                .filter(|s| s.jumpstart == jumpstart)
                .map(|s| s.capacity_loss),
        )
    }

    /// The headline metric: relative reduction in capacity loss (the paper
    /// reports 54.9% over the first 10 minutes).
    pub fn capacity_loss_reduction(&self, window_ms: u64) -> f64 {
        let nojs = self.mean_loss_nojs(window_ms);
        if nojs == 0.0 {
            0.0
        } else {
            (nojs - self.mean_loss_js(window_ms)) / nojs * 100.0
        }
    }

    /// Folds every Jump-Start consumer — not just the representatives —
    /// into fleet-wide percentiles (p50/p95/p99 of boot time, ready time,
    /// capacity loss) from the compact stats.
    pub fn fleet_aggregate(&self) -> telemetry::FleetAggregate {
        let js: Vec<&ServerStat> = self.stats.iter().filter(|s| s.jumpstart).collect();
        let boot: Vec<f64> = js.iter().map(|s| s.boot_ms as f64).collect();
        let ready: Vec<f64> = js
            .iter()
            .filter_map(|s| s.ready_ms.map(|r| r as f64))
            .collect();
        let loss: Vec<f64> = js.iter().map(|s| s.capacity_loss).collect();
        let requests: Vec<f64> = js.iter().map(|s| s.requests).collect();
        let steady: Vec<f64> = js
            .iter()
            .filter_map(|s| s.steady_ms.map(|t| t as f64))
            .collect();
        let mut series = vec![
            ("server.boot_ms", boot),
            ("server.ready_ms", ready),
            ("server.capacity_loss", loss),
            ("server.requests", requests),
            ("server.steady_ms", steady),
        ];
        if self.distribution.enabled {
            series.push((
                "server.bytes_on_wire",
                js.iter().map(|s| s.bytes_on_wire as f64).collect(),
            ));
            series.push((
                "server.download_ms",
                js.iter().map(|s| s.download_ms as f64).collect(),
            ));
        }
        telemetry::aggregate_values(js.len(), &series)
    }

    /// A deterministic fingerprint of the run: every per-server outcome
    /// plus the seeding counters, CRC'd bit-exactly. Identical across
    /// shard counts and hosts; `jsfleet --check` pins it in CI.
    pub fn digest(&self) -> u32 {
        let mut buf = Vec::with_capacity(24 + self.stats.len() * 56);
        for n in [
            self.published as u64,
            self.validation_failures as u64,
            self.seeder_crashes as u64,
        ] {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        for s in &self.stats {
            buf.extend_from_slice(&s.gid.to_le_bytes());
            buf.push(s.jumpstart as u8);
            buf.push(s.slow_host as u8);
            buf.push(s.degrading as u8);
            buf.push(s.class.code());
            buf.extend_from_slice(&s.steady_ms.unwrap_or(u64::MAX).to_le_bytes());
            buf.extend_from_slice(&s.boot_ms.to_le_bytes());
            buf.extend_from_slice(&s.ready_ms.unwrap_or(u64::MAX).to_le_bytes());
            buf.extend_from_slice(&s.capacity_loss.to_bits().to_le_bytes());
            buf.extend_from_slice(&s.requests.to_bits().to_le_bytes());
            buf.extend_from_slice(&s.steps_executed.to_le_bytes());
            buf.extend_from_slice(&s.bytes_on_wire.to_le_bytes());
            buf.extend_from_slice(&s.download_ms.to_le_bytes());
        }
        jumpstart::crc32(&buf)
    }

    /// Renders the representatives as a Chrome trace: one process per
    /// server (Jump-Start consumers first, then the no-Jump-Start
    /// baselines), lifecycle points as instants, RPS and code-size curves
    /// as counters — capped and downsampled so paper-scale fleets stay
    /// loadable in Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut trace = timelines_to_trace_capped(
            &self.js_timelines,
            "jumpstart",
            MAX_TRACE_TRACKS,
            MAX_TRACE_SAMPLES,
        );
        let baseline = timelines_to_trace_capped(
            &self.nojs_timelines,
            "baseline",
            MAX_TRACE_TRACKS,
            MAX_TRACE_SAMPLES,
        );
        let offset = trace.tracks.len() as u64;
        for mut t in baseline.tracks {
            t.id += offset;
            t.pid += offset as u32;
            trace.tracks.push(t);
        }
        trace.dropped += baseline.dropped;
        trace.to_chrome_json()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// One cell's read-only consumer inputs, prepared once and shared by
/// every server in the cell.
struct CellData {
    region: u32,
    bucket: u32,
    mix: RequestMix,
    model: AppModel,
    /// Per-cell peak request cost: identical for every server in the cell
    /// (jitter and host faults touch boot and compile costs, never the
    /// optimized-mode service time), so it is computed once.
    peak_ms_per_req: f64,
    /// The cell's published packages, deserialized once.
    packages: Vec<ProfilePackage>,
    /// Per-package wire pricing against the cell's previous-release chunk
    /// cache (parallel to `packages`; zeros when distribution is off).
    wire: Vec<PackageWire>,
}

/// One server's precomputed plan. All randomness is consumed here,
/// sequentially in gid order, before any shard thread exists.
struct Slot {
    cell: usize,
    jumpstart: bool,
    representative: bool,
    /// Index into the cell's decoded packages (§VI-A.2 randomized pick).
    pkg: Option<usize>,
    params: WarmupParams,
    slow_host: bool,
    degrading: bool,
    stagger_ms: u64,
    /// Combined jitter × slow-host scaling already applied to this slot's
    /// I/O costs (per-mille) — the distribution model re-applies it to
    /// the host-bound decode share of its deserialize override.
    io_factor_pm: u64,
    /// Filled by the distribution model: bytes pulled over the cell link.
    bytes_on_wire: u64,
    /// Filled by the distribution model: download time incl. queueing.
    download_ms: u64,
}

fn scale_ms(ms: u64, pct: u64) -> u64 {
    ms * pct / 100
}

fn build_slot(gid: u32, cell: usize, jumpstart: bool, data: &CellData, p: &DeployParams) -> Slot {
    // A splitmix-style spread keeps neighboring gids' streams uncorrelated.
    let mut rng =
        SmallRng::seed_from_u64(p.seed ^ (gid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let stagger_ms = if p.fleet.restart_stagger_ms > 0 {
        rng.gen_range(0..p.fleet.restart_stagger_ms)
    } else {
        0
    };
    let mut params = p.warmup;
    let mut io_factor_pm: u64 = 1000;
    if p.fleet.jitter_per_mille > 0 {
        let j = p.fleet.jitter_per_mille as u64;
        let factor_pm = 1000 - j + rng.gen_range(0..2 * j + 1);
        params.init_ms_nojs = params.init_ms_nojs * factor_pm / 1000;
        params.init_ms_js = params.init_ms_js * factor_pm / 1000;
        params.deserialize_ms = params.deserialize_ms * factor_pm / 1000;
        io_factor_pm = factor_pm;
    }
    let slow_host = FaultPlan::roll(&mut rng, p.faults.slow_consumer_per_mille);
    if slow_host {
        let pct = p.faults.slow_factor_pct.max(100) as u64;
        params.init_ms_nojs = scale_ms(params.init_ms_nojs, pct);
        params.init_ms_js = scale_ms(params.init_ms_js, pct);
        params.deserialize_ms = scale_ms(params.deserialize_ms, pct);
        params.compile_bytes_per_core_ms = params.compile_bytes_per_core_ms * 100.0 / pct as f64;
        io_factor_pm = io_factor_pm * pct / 100;
    }
    let pkg = if jumpstart && !data.packages.is_empty() {
        Some(rng.gen_range(0..data.packages.len()))
    } else {
        None
    };
    // The degrading roll is the stream's LAST draw: plans with a zero
    // rate replay byte-identical RNG streams from before the fault
    // existed, so historical digests stay pinned.
    let degrading = FaultPlan::roll(&mut rng, p.faults.degrading_per_mille);
    if degrading {
        params.degrade_per_mille_per_min = p.faults.degrade_per_mille_per_min;
    }
    Slot {
        cell,
        jumpstart,
        representative: false, // assigned by the caller per cell
        pkg,
        params,
        slow_host,
        degrading,
        stagger_ms,
        io_factor_pm,
        bytes_on_wire: 0,
        download_ms: 0,
    }
}

/// Counters from seeding one app release into a store.
#[derive(Clone, Copy, Debug, Default)]
struct SeedOutcome {
    published: usize,
    validation_failures: usize,
    seeder_crashes: usize,
    /// Payload bytes the seeders pushed at the store (with repetition).
    publish_bytes_total: u64,
    /// Payload bytes the store's chunk pools actually retained.
    publish_bytes_new: u64,
}

/// C2: every cell's seeders profile their traffic, validate, and publish
/// chunked into `store`. The per-seeder RNG stream is keyed only by the
/// deployment seed and (region, bucket, seeder), so seeding the previous
/// release with the same params replays the same seeder fleet against the
/// old code — which is exactly the chunk cache a consumer holds.
fn seed_store(app: &App, params: &DeployParams, store: &PackageStore) -> SeedOutcome {
    let _seed_span = telemetry::span!("c2-seeding", "cells" => params.cells() as u64);
    let validator = Validator::new(params.js_opts, params.jit_opts);
    let mut out = SeedOutcome::default();
    for region in 0..params.regions {
        for bucket in 0..params.buckets {
            let mix = RequestMix::new(app, region as usize, bucket as usize);
            for s in 0..params.seeders_per_cell {
                let seed = params.seed ^ (region as u64) << 32 ^ (bucket as u64) << 16 ^ s as u64;
                let mut frng = SmallRng::seed_from_u64(seed ^ 0xfa17);
                if FaultPlan::roll(&mut frng, params.faults.seeder_crash_per_mille) {
                    // Died mid-profile: nothing reaches validation.
                    out.seeder_crashes += 1;
                    continue;
                }
                let requests = if FaultPlan::roll(&mut frng, params.faults.undersample_per_mille) {
                    // Drained cell (§VI-B): almost no traffic to profile.
                    params.seeder_requests.min(2)
                } else {
                    params.seeder_requests
                };
                let run = workload::profile_run(app, &mix, requests, seed);
                let pkg = build_package(
                    SeederInputs {
                        repo: &app.repo,
                        tier: run.tier,
                        ctx: run.ctx,
                        unit_order: run.unit_order,
                        requests: run.requests,
                        region,
                        bucket,
                        seeder_id: seed,
                        now_ms: 0,
                    },
                    &params.js_opts,
                    &params.jit_opts,
                );
                match validator.validate_package(&app.repo, &pkg, 0) {
                    Ok(_) => {
                        let (_, receipt) = store.publish_chunked(&pkg, app.repo.funcs().len());
                        out.publish_bytes_total += receipt.bytes_total;
                        out.publish_bytes_new += receipt.bytes_new;
                        out.published += 1;
                    }
                    Err(_) => out.validation_failures += 1,
                }
            }
        }
    }
    out
}

/// Runs one deployment: C2 seeders profile their cell's traffic, validate
/// and publish; C3 consumers in each cell boot with randomized packages
/// (vs. the no-Jump-Start baselines on identical traffic), fanned out over
/// shard threads on the event core.
pub fn run_deployment(app: &App, params: &DeployParams) -> DeployReport {
    run_deployment_with_prior(app, None, params)
}

/// [`run_deployment`], with consumers' chunk caches warmed by `prior` —
/// the release the fleet was running before this push. The prior release
/// is seeded with the same deterministic seeder streams into a shadow
/// store, and each cell's consumer cache is that store's chunk pool; the
/// distribution model then prices every fetch as a delta against it.
pub fn run_deployment_with_prior(
    app: &App,
    prior: Option<&App>,
    params: &DeployParams,
) -> DeployReport {
    let _deploy_span = telemetry::span!(
        "deployment",
        "regions" => params.regions,
        "buckets" => params.buckets,
        "shards" => params.fleet.shards,
    );
    let store = PackageStore::new();
    let seeded = seed_store(app, params, &store);

    // The previous release's chunks, as a consumer cache per cell.
    let prior_store = prior.map(|prior_app| {
        let shadow = PackageStore::new();
        seed_store(prior_app, params, &shadow);
        shadow
    });

    // --- Per-cell consumer inputs, prepared once ---
    let mut cells: Vec<CellData> = Vec::with_capacity(params.cells());
    for region in 0..params.regions {
        for bucket in 0..params.buckets {
            let mix = RequestMix::new(app, region as usize, bucket as usize);
            // The consumer's model is measured on its own cell's traffic.
            let truth =
                workload::profile_run(app, &mix, params.seeder_requests, params.seed ^ 0xdead);
            let model = build_app_model(app, &truth);
            let peak_ms_per_req = model.peak_request_core_ms(app, &mix, &params.warmup);
            let stored = store.cell_packages(region, bucket);
            // Zero-copy: section tables alias the stored buffers.
            let packages: Vec<ProfilePackage> = stored
                .iter()
                .map(|p| ProfilePackage::deserialize_shared(&p.bytes).expect("validated"))
                .collect();
            let wire = if params.distribution.enabled {
                let cache = prior_store
                    .as_ref()
                    .map_or_else(ChunkPool::new, |s| s.cell_pool(region, bucket));
                stored
                    .iter()
                    .map(|p| {
                        package_wire(
                            p.manifest.as_deref(),
                            p.bytes.len() as u64,
                            &cache,
                            params.warmup.early_serve_frac,
                            &params.distribution,
                        )
                    })
                    .collect()
            } else {
                vec![PackageWire::default(); stored.len()]
            };
            cells.push(CellData {
                region,
                bucket,
                mix,
                model,
                peak_ms_per_req,
                packages,
                wire,
            });
        }
    }
    let (published, validation_failures, seeder_crashes) = (
        seeded.published,
        seeded.validation_failures,
        seeded.seeder_crashes,
    );

    // --- C3: every server's randomized plan, drawn sequentially ---
    let mut slots: Vec<Slot> = Vec::new();
    for (c, data) in cells.iter().enumerate() {
        for k in 0..params.fleet.servers_per_cell {
            let mut slot = build_slot(slots.len() as u32, c, true, data, params);
            slot.representative = k < params.fleet.representatives_per_cell;
            slots.push(slot);
        }
        for k in 0..params.fleet.baselines_per_cell {
            let mut slot = build_slot(slots.len() as u32, c, false, data, params);
            slot.representative = k < params.fleet.representatives_per_cell;
            slots.push(slot);
        }
    }

    // --- Distribution: price and schedule every package fetch through
    // its cell's link, pre-fan-out so the plan stays shard-invariant ---
    let dist = &params.distribution;
    let mut distribution = DistributionReport {
        enabled: dist.enabled,
        chunked: dist.enabled && dist.chunked,
        publish_bytes_total: seeded.publish_bytes_total,
        publish_bytes_new: seeded.publish_bytes_new,
        ..Default::default()
    };
    if dist.enabled {
        let fetchers: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pkg.is_some())
            .map(|(i, _)| i)
            .collect();
        let fetches: Vec<Fetch> = fetchers
            .iter()
            .map(|&i| {
                let s = &slots[i];
                Fetch {
                    cell: s.cell,
                    start_ms: s.stagger_ms,
                    bytes: cells[s.cell].wire[s.pkg.expect("fetcher")].bytes_on_wire,
                }
            })
            .collect();
        let outcomes = simulate_cell_links(&fetches, cells.len(), dist);
        let mut download_sum = 0u64;
        for (k, &i) in fetchers.iter().enumerate() {
            let w = cells[slots[i].cell].wire[slots[i].pkg.expect("fetcher")];
            let o = outcomes[k];
            let decode_bytes = (w.early_decode_frac * w.bytes_full as f64) as u64;
            let decode_ms =
                (dist.decode_ms_per_mb * decode_bytes as f64 / (1024.0 * 1024.0)) as u64;
            let slot = &mut slots[i];
            // The download rides the shared link as-is; only the
            // host-bound decode share is scaled by this host's I/O factor.
            slot.params.deserialize_ms = o.download_ms + decode_ms * slot.io_factor_pm / 1000;
            slot.bytes_on_wire = w.bytes_on_wire;
            slot.download_ms = o.download_ms;
            distribution.bytes_full += w.bytes_full;
            distribution.bytes_on_wire += w.bytes_on_wire;
            distribution.manifest_bytes += w.manifest_bytes;
            distribution.chunks_sent += w.chunks_sent;
            distribution.chunks_cached += w.chunks_cached;
            download_sum += o.download_ms;
            distribution.max_download_ms = distribution.max_download_ms.max(o.download_ms);
        }
        if !fetchers.is_empty() {
            distribution.mean_download_ms = download_sum as f64 / fetchers.len() as f64;
        }
    }

    // --- Fan-out: shards run disjoint slot slices on the event core ---
    let shards = params.fleet.shards.max(1) as usize;
    let _fan_span = telemetry::span!(
        "c3-fanout",
        "servers" => slots.len() as u64,
        "shards" => shards as u64,
    );
    let slots_ref = &slots;
    let cells_ref = &cells;
    let mut shard_results: Vec<(Vec<(usize, crate::server::ServerRun)>, u64)> =
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    scope.spawn(move |_| {
                        let local: Vec<usize> = (shard..slots_ref.len()).step_by(shards).collect();
                        let mut tasks: Vec<ServerTask<'_>> = local
                            .iter()
                            .map(|&i| {
                                let slot = &slots_ref[i];
                                let data = &cells_ref[slot.cell];
                                let config = ServerConfig {
                                    params: slot.params,
                                    jumpstart: slot.pkg.map(|p| &data.packages[p]),
                                };
                                ServerTask::new(
                                    app,
                                    &data.model,
                                    &data.mix,
                                    &config,
                                    Some(data.peak_ms_per_req),
                                )
                            })
                            .collect();
                        let mut queue: EventQueue<usize> = EventQueue::new();
                        for (k, task) in tasks.iter_mut().enumerate() {
                            if let Some(first) = task.start() {
                                let at = slots_ref[local[k]].stagger_ms + first;
                                queue.schedule(at * MS, k);
                            }
                        }
                        while let Some((at, k)) = queue.pop() {
                            let now = at / MS - slots_ref[local[k]].stagger_ms;
                            if let Some(next) = tasks[k].on_step(now) {
                                let at = slots_ref[local[k]].stagger_ms + next;
                                queue.schedule(at * MS, k);
                            }
                        }
                        let events = queue.processed();
                        let runs: Vec<(usize, crate::server::ServerRun)> = local
                            .into_iter()
                            .zip(tasks)
                            .map(|(i, t)| (i, t.into_run()))
                            .collect();
                        (runs, events)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread"))
                .collect()
        })
        .expect("shard scope");

    // --- Merge by gid: shard count leaves no trace in the report ---
    let mut merged: Vec<(usize, crate::server::ServerRun)> = Vec::with_capacity(slots.len());
    let mut events = 0u64;
    for (runs, shard_events) in shard_results.drain(..) {
        events += shard_events;
        merged.extend(runs);
    }
    merged.sort_by_key(|(i, _)| *i);

    let mut js_timelines = Vec::new();
    let mut nojs_timelines = Vec::new();
    let mut server_registries = Vec::new();
    let mut stats = Vec::with_capacity(merged.len());
    let mut sim = ShardStats {
        shards: shards as u32,
        servers: merged.len(),
        events,
        ..Default::default()
    };
    // Classification runs here, post-merge in gid order, because this is
    // the one place every server's full timeline exists (representatives
    // keep theirs; everyone else's is dropped right after). Feeding the
    // accumulator in gid order makes the WarmupReport — median curve
    // included — byte-identical for any shard count.
    let mut warmup_acc = WarmupAccumulator::new(
        params.analysis,
        params.warmup.sample_ms,
        params.warmup.duration_ms,
    );
    for (i, run) in merged {
        let slot = &slots[i];
        let data = &cells[slot.cell];
        let verdict = warmup_acc.add(&run.timeline, slot.jumpstart);
        stats.push(ServerStat {
            gid: i as u32,
            region: data.region,
            bucket: data.bucket,
            jumpstart: slot.jumpstart,
            slow_host: slot.slow_host,
            degrading: slot.degrading,
            class: verdict.class,
            steady_ms: verdict.steady_ms,
            boot_ms: run.timeline.serve_start_ms,
            ready_ms: run.timeline.time_to_rps(0.9),
            capacity_loss: run.timeline.capacity_loss_over(slot.params.duration_ms),
            requests: run.requests,
            steps_executed: run.steps_executed,
            steps_dense: run.steps_dense,
            bytes_on_wire: slot.bytes_on_wire,
            download_ms: slot.download_ms,
        });
        sim.steps_executed += run.steps_executed;
        sim.steps_dense += run.steps_dense;
        sim.requests += run.requests;
        if slot.representative {
            if slot.jumpstart {
                server_registries.push(server_registry(
                    &run.timeline,
                    slot.params.duration_ms,
                    Some(&verdict),
                ));
                js_timelines.push(run.timeline);
            } else {
                nojs_timelines.push(run.timeline);
            }
        }
    }
    let warmup = warmup_acc.finish();

    DeployReport {
        published,
        validation_failures,
        seeder_crashes,
        js_timelines,
        nojs_timelines,
        server_registries,
        stats,
        sim,
        distribution,
        warmup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, AppParams};

    fn quick_warmup() -> WarmupParams {
        WarmupParams {
            duration_ms: 300_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 60_000,
            relocation_ms: 20_000,
            ..WarmupParams::fig4()
        }
    }

    fn lenient_js_opts() -> JumpStartOptions {
        JumpStartOptions {
            min_funcs_profiled: 5,
            min_counter_mass: 100,
            min_requests: 10,
            ..Default::default()
        }
    }

    #[test]
    fn deployment_publishes_and_improves_warmup() {
        let app = generate(&AppParams::tiny());
        let params = DeployParams {
            regions: 1,
            buckets: 2,
            seeders_per_cell: 1,
            seeder_requests: 120,
            warmup: quick_warmup(),
            js_opts: lenient_js_opts(),
            ..Default::default()
        };
        let report = run_deployment(&app, &params);
        assert_eq!(report.published, 2);
        assert_eq!(report.validation_failures, 0);
        assert_eq!(report.seeder_crashes, 0);
        let reduction = report.capacity_loss_reduction(300_000);
        assert!(
            reduction > 20.0,
            "Jump-Start should substantially reduce capacity loss, got {reduction:.1}%"
        );
    }

    #[test]
    fn eight_server_fleet_exports_percentiles_and_chrome_trace() {
        let app = generate(&AppParams::tiny());
        let params = DeployParams {
            regions: 2,
            buckets: 4,
            seeders_per_cell: 1,
            seeder_requests: 120,
            warmup: WarmupParams {
                duration_ms: 120_000,
                profile_serve_ms: 30_000,
                relocation_ms: 10_000,
                ..quick_warmup()
            },
            js_opts: lenient_js_opts(),
            ..Default::default()
        };
        let report = run_deployment(&app, &params);
        assert_eq!(report.server_registries.len(), 8);

        // Fleet percentiles over all 8 consumers.
        let agg = report.fleet_aggregate();
        assert_eq!(agg.servers, 8);
        let boot = agg.stat("server.boot_ms").expect("boot times aggregated");
        assert_eq!(boot.n, 8);
        assert!(boot.min > 0.0);
        assert!(boot.p50 <= boot.p95 && boot.p95 <= boot.p99);
        let loss = agg.stat("server.capacity_loss").expect("loss aggregated");
        assert!(loss.max <= 1.0 && loss.min >= 0.0);
        // The flat export carries the stats.
        assert!(agg.to_json().contains("server.boot_ms"));

        // Chrome export: 16 processes (8 JS + 8 baseline), schema-clean.
        let json = report.to_chrome_trace();
        let summary = telemetry::validate_chrome(&json).expect("valid Chrome trace");
        assert_eq!(summary.tracks, 16);
        assert!(json.contains("jumpstart server 7"));
        assert!(json.contains("baseline server 7"));
        // Baselines walk the full lifecycle: A/B/C instants present.
        assert!(json.contains("point-C"));
    }

    #[test]
    fn undersampled_seeders_fail_validation() {
        let app = generate(&AppParams::tiny());
        let params = DeployParams {
            regions: 1,
            buckets: 1,
            seeders_per_cell: 1,
            seeder_requests: 3, // a drained data center (§VI-B)
            js_opts: JumpStartOptions {
                min_requests: 50,
                ..Default::default()
            },
            warmup: WarmupParams {
                duration_ms: 100_000,
                ..WarmupParams::fig4()
            },
            ..Default::default()
        };
        let report = run_deployment(&app, &params);
        assert_eq!(report.published, 0);
        assert_eq!(report.validation_failures, 1);
    }

    #[test]
    fn chunk_delta_distribution_ships_fewer_bytes_than_full_packages() {
        let app_params = AppParams::tiny();
        let (prior, _) =
            workload::generate_release(&app_params, &workload::ChurnParams { seed: 7, rate: 0.0 });
        let (app, churn) =
            workload::generate_release(&app_params, &workload::ChurnParams { seed: 7, rate: 0.1 });
        assert!(churn.total_edits() > 0, "release must churn");
        let base = DeployParams {
            regions: 1,
            buckets: 2,
            seeders_per_cell: 2,
            seeder_requests: 120,
            warmup: WarmupParams {
                early_serve_frac: 0.25,
                ..quick_warmup()
            },
            js_opts: lenient_js_opts(),
            fleet: FleetShape::default()
                .with_servers(6, 1)
                .with_stagger(10_000),
            ..Default::default()
        };
        let full = run_deployment_with_prior(
            &app,
            Some(&prior),
            &base.with_distribution(DistributionParams::full().with_link_mbps(100)),
        );
        let delta = run_deployment_with_prior(
            &app,
            Some(&prior),
            &base.with_distribution(DistributionParams::chunked().with_link_mbps(100)),
        );

        // Full sends ship the whole sealed package; deltas reuse the
        // chunks the previous release already put in the consumer cache.
        assert_eq!(
            full.distribution.bytes_on_wire,
            full.distribution.bytes_full
        );
        assert!(delta.distribution.chunks_cached > 0);
        assert!(
            delta.distribution.bytes_on_wire < full.distribution.bytes_on_wire,
            "delta wire {} must beat full wire {}",
            delta.distribution.bytes_on_wire,
            full.distribution.bytes_on_wire,
        );
        assert!(delta.distribution.wire_ratio() < 1.0);
        assert!(delta.distribution.store_dedup_ratio() > 0.0);

        // Every consumer fetch is priced and scheduled.
        for s in delta.stats.iter().filter(|s| s.jumpstart) {
            assert!(s.bytes_on_wire > 0);
            assert!(s.download_ms > 0);
        }
        for s in delta.stats.iter().filter(|s| !s.jumpstart) {
            assert_eq!(s.bytes_on_wire, 0);
        }
        assert!(delta.distribution.mean_download_ms > 0.0);
        assert!(delta.distribution.max_download_ms as f64 >= delta.distribution.mean_download_ms);
        // Downloads feed the fleet percentiles.
        let agg = delta.fleet_aggregate();
        assert!(agg.stat("server.download_ms").is_some());

        // The distribution plan is computed pre-fan-out: shard count
        // still leaves no trace in the report.
        let sharded = run_deployment_with_prior(
            &app,
            Some(&prior),
            &base
                .with_distribution(DistributionParams::chunked().with_link_mbps(100))
                .with_fleet(
                    FleetShape::default()
                        .with_servers(6, 1)
                        .with_stagger(10_000)
                        .with_shards(3),
                ),
        );
        assert_eq!(delta.digest(), sharded.digest());
    }

    #[test]
    fn scaled_fleet_keeps_compact_stats_and_bounded_registries() {
        let app = generate(&AppParams::tiny());
        let params = DeployParams {
            regions: 1,
            buckets: 2,
            seeders_per_cell: 2,
            seeder_requests: 120,
            warmup: quick_warmup(),
            js_opts: lenient_js_opts(),
            fleet: FleetShape::default()
                .with_servers(12, 3)
                .with_representatives(2)
                .with_stagger(30_000)
                .with_jitter(100),
            ..Default::default()
        };
        let report = run_deployment(&app, &params);
        // Every server is in stats; only representatives carry registries.
        assert_eq!(report.stats.len(), 2 * (12 + 3));
        assert_eq!(report.server_registries.len(), 2 * 2);
        assert_eq!(report.js_timelines.len(), 4);
        assert_eq!(report.nojs_timelines.len(), 4);
        assert_eq!(report.sim.servers, 30);
        assert!(report.sim.events > 0);
        // The event core did far less work than dense stepping.
        assert!(report.sim.steps_executed < report.sim.steps_dense / 2);
        // Jitter spreads boot times across consumers of one cell.
        let agg = report.fleet_aggregate();
        assert_eq!(agg.servers, 24);
        let boot = agg.stat("server.boot_ms").unwrap();
        assert!(boot.max > boot.min, "jitter should spread boot times");
        // gids are stable and dense.
        for (i, s) in report.stats.iter().enumerate() {
            assert_eq!(s.gid as usize, i);
        }
        // The digest is reproducible.
        assert_eq!(report.digest(), run_deployment(&app, &params).digest());
    }
}
