//! The continuous-deployment pipeline: C1 → C2 (seeders) → C3 (consumers),
//! per §II-C and §IV-A.

use jit::JitOptions;
use jumpstart::{build_package, JumpStartOptions, PackageStore, SeederInputs, Validator};
use workload::{App, RequestMix};

use crate::export::{server_registry, timelines_to_trace};
use crate::metrics::Timeline;
use crate::model::{build_app_model, WarmupParams};
use crate::server::{simulate_warmup, ServerConfig};

/// Deployment parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeployParams {
    /// Data-center regions.
    pub regions: u32,
    /// Semantic buckets per region.
    pub buckets: u32,
    /// Seeders per (region, bucket) cell (§VI-A.2 recommends several).
    pub seeders_per_cell: u32,
    /// Requests each seeder profiles during C2.
    pub seeder_requests: usize,
    /// Warmup calibration for the C3 consumers.
    pub warmup: WarmupParams,
    /// Jump-Start options.
    pub js_opts: JumpStartOptions,
    /// JIT options.
    pub jit_opts: JitOptions,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeployParams {
    fn default() -> Self {
        Self {
            regions: 2,
            buckets: 2,
            seeders_per_cell: 2,
            seeder_requests: 150,
            warmup: WarmupParams::fig4(),
            js_opts: JumpStartOptions::default(),
            jit_opts: JitOptions::default(),
            seed: 1,
        }
    }
}

/// Outcome of one push.
#[derive(Debug)]
pub struct DeployReport {
    /// Packages published after validation.
    pub published: usize,
    /// Seeder packages rejected by validation.
    pub validation_failures: usize,
    /// Representative consumer warmup timeline per cell (Jump-Start).
    pub js_timelines: Vec<Timeline>,
    /// The same cells booted without Jump-Start.
    pub nojs_timelines: Vec<Timeline>,
    /// Per-server metrics registry (one per Jump-Start consumer):
    /// `server.boot_ms`, `server.ready_ms`, `server.capacity_loss`.
    pub server_registries: Vec<telemetry::Registry>,
}

impl DeployReport {
    /// Mean capacity loss over `window_ms` with Jump-Start.
    pub fn mean_loss_js(&self, window_ms: u64) -> f64 {
        mean(
            self.js_timelines
                .iter()
                .map(|t| t.capacity_loss_over(window_ms)),
        )
    }

    /// Mean capacity loss without Jump-Start.
    pub fn mean_loss_nojs(&self, window_ms: u64) -> f64 {
        mean(
            self.nojs_timelines
                .iter()
                .map(|t| t.capacity_loss_over(window_ms)),
        )
    }

    /// The headline metric: relative reduction in capacity loss (the paper
    /// reports 54.9% over the first 10 minutes).
    pub fn capacity_loss_reduction(&self, window_ms: u64) -> f64 {
        let nojs = self.mean_loss_nojs(window_ms);
        if nojs == 0.0 {
            0.0
        } else {
            (nojs - self.mean_loss_js(window_ms)) / nojs * 100.0
        }
    }

    /// Folds every consumer's registry into fleet-wide percentiles
    /// (p50/p95/p99 of boot time, ready time, capacity loss).
    pub fn fleet_aggregate(&self) -> telemetry::FleetAggregate {
        let snaps: Vec<telemetry::Snapshot> = self
            .server_registries
            .iter()
            .map(telemetry::Registry::snapshot)
            .collect();
        telemetry::aggregate(&snaps)
    }

    /// Renders the deployment as a Chrome trace: one process per server
    /// (Jump-Start consumers first, then the no-Jump-Start baselines),
    /// lifecycle points as instants, RPS and code-size curves as
    /// counters. Loadable in Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut trace = timelines_to_trace(&self.js_timelines, "jumpstart");
        let baseline = timelines_to_trace(&self.nojs_timelines, "baseline");
        let offset = trace.tracks.len() as u64;
        for mut t in baseline.tracks {
            t.id += offset;
            t.pid += offset as u32;
            trace.tracks.push(t);
        }
        trace.to_chrome_json()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs one deployment: C2 seeders profile their cell's traffic, validate
/// and publish; C3 consumers in each cell boot with a package (vs. the
/// no-Jump-Start baseline on identical traffic).
pub fn run_deployment(app: &App, params: &DeployParams) -> DeployReport {
    let _deploy_span = telemetry::span!(
        "deployment",
        "regions" => params.regions,
        "buckets" => params.buckets,
    );
    let store = PackageStore::new();
    let validator = Validator::new(params.js_opts, params.jit_opts);
    let mut published = 0;
    let mut validation_failures = 0;

    // --- C2: seeders ---
    for region in 0..params.regions {
        for bucket in 0..params.buckets {
            let mix = RequestMix::new(app, region as usize, bucket as usize);
            for s in 0..params.seeders_per_cell {
                let seed = params.seed ^ (region as u64) << 32 ^ (bucket as u64) << 16 ^ s as u64;
                let run = workload::profile_run(app, &mix, params.seeder_requests, seed);
                let pkg = build_package(
                    SeederInputs {
                        repo: &app.repo,
                        tier: run.tier,
                        ctx: run.ctx,
                        unit_order: run.unit_order,
                        requests: run.requests,
                        region,
                        bucket,
                        seeder_id: seed,
                        now_ms: 0,
                    },
                    &params.js_opts,
                    &params.jit_opts,
                );
                match validator.validate_package(&app.repo, &pkg, 0) {
                    Ok(_) => {
                        store.publish(pkg.meta, pkg.serialize());
                        published += 1;
                    }
                    Err(_) => validation_failures += 1,
                }
            }
        }
    }

    // --- C3: consumers, one representative server per cell ---
    let mut js_timelines = Vec::new();
    let mut nojs_timelines = Vec::new();
    let mut server_registries = Vec::new();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(params.seed);
    for region in 0..params.regions {
        for bucket in 0..params.buckets {
            let mix = RequestMix::new(app, region as usize, bucket as usize);
            // The consumer's model is measured on its own cell's traffic.
            let truth =
                workload::profile_run(app, &mix, params.seeder_requests, params.seed ^ 0xdead);
            let model = build_app_model(app, &truth);
            let picked = store.pick_random(region, bucket, &mut rng);
            let pkg = picked.as_ref().map(|p| {
                // Zero-copy: section tables alias the stored buffer.
                jumpstart::ProfilePackage::deserialize_shared(&p.bytes).expect("validated")
            });
            let js_tl = simulate_warmup(
                app,
                &model,
                &mix,
                &ServerConfig {
                    params: params.warmup,
                    jumpstart: pkg.as_ref(),
                },
            );
            server_registries.push(server_registry(&js_tl, params.warmup.duration_ms));
            js_timelines.push(js_tl);
            nojs_timelines.push(simulate_warmup(
                app,
                &model,
                &mix,
                &ServerConfig {
                    params: params.warmup,
                    jumpstart: None,
                },
            ));
        }
    }

    DeployReport {
        published,
        validation_failures,
        js_timelines,
        nojs_timelines,
        server_registries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, AppParams};

    #[test]
    fn deployment_publishes_and_improves_warmup() {
        let app = generate(&AppParams::tiny());
        let params = DeployParams {
            regions: 1,
            buckets: 2,
            seeders_per_cell: 1,
            seeder_requests: 120,
            warmup: WarmupParams {
                duration_ms: 300_000,
                sample_ms: 5_000,
                init_ms_nojs: 20_000,
                init_ms_js: 8_000,
                deserialize_ms: 2_000,
                profile_serve_ms: 60_000,
                relocation_ms: 20_000,
                ..WarmupParams::fig4()
            },
            js_opts: JumpStartOptions {
                min_funcs_profiled: 5,
                min_counter_mass: 100,
                min_requests: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_deployment(&app, &params);
        assert_eq!(report.published, 2);
        assert_eq!(report.validation_failures, 0);
        let reduction = report.capacity_loss_reduction(300_000);
        assert!(
            reduction > 20.0,
            "Jump-Start should substantially reduce capacity loss, got {reduction:.1}%"
        );
    }

    #[test]
    fn eight_server_fleet_exports_percentiles_and_chrome_trace() {
        let app = generate(&AppParams::tiny());
        let params = DeployParams {
            regions: 2,
            buckets: 4,
            seeders_per_cell: 1,
            seeder_requests: 120,
            warmup: WarmupParams {
                duration_ms: 120_000,
                sample_ms: 5_000,
                init_ms_nojs: 20_000,
                init_ms_js: 8_000,
                deserialize_ms: 2_000,
                profile_serve_ms: 30_000,
                relocation_ms: 10_000,
                ..WarmupParams::fig4()
            },
            js_opts: JumpStartOptions {
                min_funcs_profiled: 5,
                min_counter_mass: 100,
                min_requests: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_deployment(&app, &params);
        assert_eq!(report.server_registries.len(), 8);

        // Fleet percentiles over all 8 consumers.
        let agg = report.fleet_aggregate();
        assert_eq!(agg.servers, 8);
        let boot = agg.stat("server.boot_ms").expect("boot times aggregated");
        assert_eq!(boot.n, 8);
        assert!(boot.min > 0.0);
        assert!(boot.p50 <= boot.p95 && boot.p95 <= boot.p99);
        let loss = agg.stat("server.capacity_loss").expect("loss aggregated");
        assert!(loss.max <= 1.0 && loss.min >= 0.0);
        // The flat export carries the stats.
        assert!(agg.to_json().contains("server.boot_ms"));

        // Chrome export: 16 processes (8 JS + 8 baseline), schema-clean.
        let json = report.to_chrome_trace();
        let summary = telemetry::validate_chrome(&json).expect("valid Chrome trace");
        assert_eq!(summary.tracks, 16);
        assert!(json.contains("jumpstart server 7"));
        assert!(json.contains("baseline server 7"));
        // Baselines walk the full lifecycle: A/B/C instants present.
        assert!(json.contains("point-C"));
    }

    #[test]
    fn undersampled_seeders_fail_validation() {
        let app = generate(&AppParams::tiny());
        let params = DeployParams {
            regions: 1,
            buckets: 1,
            seeders_per_cell: 1,
            seeder_requests: 3, // a drained data center (§VI-B)
            js_opts: JumpStartOptions {
                min_requests: 50,
                ..Default::default()
            },
            warmup: WarmupParams {
                duration_ms: 100_000,
                ..WarmupParams::fig4()
            },
            ..Default::default()
        };
        let report = run_deployment(&app, &params);
        assert_eq!(report.published, 0);
        assert_eq!(report.validation_failures, 1);
    }
}
