//! Steady-state measurement lab (Figs. 5 and 6).
//!
//! Builds a Jump-Start package from a ground-truth profiling run, boots a
//! consumer under a chosen configuration, then replays production traffic
//! through the micro-architecture model and reports throughput (CPI) and
//! the Fig. 5 miss metrics. Configurations differ only in the §V knobs, so
//! every delta is attributable to one mechanism.

use jit::{Executor, ExecutorConfig, JitOptions};
use jumpstart::{
    build_package, consume, BootStats, FuncSort, JumpStartOptions, PropReorder, SeederInputs,
};
use uarch::MissReport;
use workload::{App, ProfileRun, RequestMix, RequestSampler};

/// A named steady-state configuration (one bar of Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SteadyConfig {
    /// Display name.
    pub name: &'static str,
    /// Jump-Start knobs.
    pub js: JumpStartOptions,
    /// Whether this models the *no-Jump-Start* server: same optimized
    /// code eventually, but first-touch metadata order instead of the
    /// package's hot-first preload.
    pub no_jumpstart: bool,
}

impl SteadyConfig {
    /// Full Jump-Start (all §V optimizations) — Fig. 5's "Jump-Start".
    pub fn jumpstart_full() -> Self {
        Self {
            name: "jumpstart",
            js: JumpStartOptions::default(),
            no_jumpstart: false,
        }
    }

    /// Jump-Start without the §V optimizations — Fig. 6's baseline.
    pub fn jumpstart_no_opts() -> Self {
        Self {
            name: "jumpstart-no-opts",
            js: JumpStartOptions::without_optimizations(),
            no_jumpstart: false,
        }
    }

    /// No Jump-Start at all — Fig. 5's baseline / Fig. 6's first bar.
    pub fn no_jumpstart() -> Self {
        Self {
            name: "no-jumpstart",
            js: JumpStartOptions::without_optimizations(),
            no_jumpstart: true,
        }
    }

    /// Baseline plus accurate basic-block layout only (Fig. 6 bar 2).
    pub fn bb_layout_only() -> Self {
        Self {
            name: "bb-layout",
            js: JumpStartOptions {
                accurate_bb_weights: true,
                ..JumpStartOptions::without_optimizations()
            },
            no_jumpstart: false,
        }
    }

    /// Baseline plus inlining-aware function sorting only (Fig. 6 bar 3).
    pub fn func_layout_only() -> Self {
        Self {
            name: "func-layout",
            js: JumpStartOptions {
                func_sort: FuncSort::C3InliningAware,
                ..JumpStartOptions::without_optimizations()
            },
            no_jumpstart: false,
        }
    }

    /// Baseline plus property reordering only (Fig. 6 bar 4).
    pub fn prop_reorder_only() -> Self {
        Self {
            name: "prop-reorder",
            js: JumpStartOptions {
                prop_reorder: PropReorder::Hotness,
                ..JumpStartOptions::without_optimizations()
            },
            no_jumpstart: false,
        }
    }
}

/// Steady-state measurement knobs.
#[derive(Clone, Copy, Debug)]
pub struct SteadyParams {
    /// Requests replayed before counters reset (cache/predictor warmup).
    pub warm_requests: usize,
    /// Requests measured.
    pub measure_requests: usize,
    /// Worker threads for the consumer compile.
    pub threads: usize,
    /// Replay RNG seed.
    pub seed: u64,
    /// JIT options shared by all configurations.
    pub jit: JitOptions,
}

impl Default for SteadyParams {
    fn default() -> Self {
        Self {
            warm_requests: 300,
            measure_requests: 1500,
            threads: 4,
            seed: 0xface,
            jit: JitOptions::default(),
        }
    }
}

/// One configuration's measurement.
#[derive(Clone, Debug)]
pub struct SteadyOutcome {
    /// Configuration name.
    pub name: &'static str,
    /// Micro-architectural report over the measured window.
    pub report: MissReport,
    /// Functions compiled to optimized code.
    pub compiled_funcs: usize,
    /// Optimized code bytes emitted.
    pub code_bytes: u64,
    /// Optimized hot-part code bytes (excludes stubs and huge-page
    /// padding, so totals are conserved across layout configs).
    pub hot_bytes: u64,
    /// Optimized cold-part code bytes.
    pub cold_bytes: u64,
    /// Boot-phase timeline of the consumer compile (decode, lint,
    /// translate/steal/stall per worker, emit, early-serve crossing).
    pub boot: BootStats,
}

/// Measures one steady-state configuration.
///
/// # Panics
///
/// Panics if the package fails to consume (healthy inputs only).
pub fn measure_steady_state(
    app: &App,
    mix: &RequestMix,
    truth: &ProfileRun,
    config: &SteadyConfig,
    params: &SteadyParams,
) -> SteadyOutcome {
    // Seeder side: package from the ground-truth run under this config.
    let pkg = build_package(
        SeederInputs {
            repo: &app.repo,
            tier: truth.tier.clone(),
            ctx: truth.ctx.clone(),
            unit_order: truth.unit_order.clone(),
            requests: truth.requests,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        &config.js,
        &params.jit,
    );
    // Consumer side: compile everything under the config's knobs.
    let outcome = consume(&app.repo, &pkg, params.jit, &config.js, params.threads)
        .expect("healthy package consumes");

    // Replay traffic through the core model.
    let mut executor = Executor::new(
        &app.repo,
        &outcome.engine.code_cache,
        &truth.tier,
        &truth.ctx,
        ExecutorConfig {
            seed: params.seed,
            ..Default::default()
        },
    );
    if config.no_jumpstart || !config.js.preload_units {
        // First-touch order: what the server's own lazy loading produced.
        executor.set_unit_order(&truth.unit_order);
    } else {
        executor.set_unit_order(&pkg.preload.unit_order);
    }

    let mut sampler = RequestSampler::new(params.seed ^ 0x1234);
    for _ in 0..params.warm_requests {
        let (f, _) = sampler.request(app, mix);
        executor.run_call(f);
    }
    executor.reset_stats();
    for _ in 0..params.measure_requests {
        let (f, _) = sampler.request(app, mix);
        executor.run_call(f);
    }
    let sizes = outcome.engine.sizes();
    let hot_bytes = sizes.optimized_hot;
    let cold_bytes = sizes.optimized_cold;
    SteadyOutcome {
        name: config.name,
        report: executor.report(),
        compiled_funcs: outcome.compiled_funcs,
        code_bytes: outcome.compile_bytes,
        hot_bytes,
        cold_bytes,
        boot: outcome.boot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, profile_run, AppParams};

    fn lab() -> (App, RequestMix, ProfileRun) {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let truth = profile_run(&app, &mix, 250, 21);
        (app, mix, truth)
    }

    fn quick() -> SteadyParams {
        SteadyParams {
            warm_requests: 100,
            measure_requests: 400,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn jumpstart_beats_no_jumpstart_in_steady_state() {
        // The tiny app's code fits in L1I, so the win comes from the data
        // side (property reordering): D-cache misses must drop clearly.
        // The full-size comparison lives in the figures/bench harness.
        let (app, mix, truth) = lab();
        let params = quick();
        let js = measure_steady_state(&app, &mix, &truth, &SteadyConfig::jumpstart_full(), &params);
        let nojs = measure_steady_state(&app, &mix, &truth, &SteadyConfig::no_jumpstart(), &params);
        assert!(
            (js.report.dcache.misses as f64) < 0.9 * nojs.report.dcache.misses as f64,
            "Jump-Start should cut D-cache misses: {} vs {}",
            js.report.dcache.misses,
            nojs.report.dcache.misses
        );
        assert!(js.compiled_funcs > 5);
    }

    #[test]
    fn bb_layout_changes_hot_cold_split() {
        // At tiny-app scale I-cache misses are single digits, so assert the
        // structural effect instead: accurate weights identify more cold
        // code (never-taken inlined arms) than tier-derived estimates.
        let (app, mix, truth) = lab();
        let params = quick();
        let base = measure_steady_state(
            &app,
            &mix,
            &truth,
            &SteadyConfig::jumpstart_no_opts(),
            &params,
        );
        let bb = measure_steady_state(&app, &mix, &truth, &SteadyConfig::bb_layout_only(), &params);
        assert_eq!(
            base.hot_bytes + base.cold_bytes,
            bb.hot_bytes + bb.cold_bytes
        );
        assert!(
            bb.cold_bytes >= base.cold_bytes,
            "accurate weights should move code cold: {} vs {}",
            bb.cold_bytes,
            base.cold_bytes
        );
        // And the runs still produce valid, nonzero measurements.
        assert!(bb.report.instructions > 10_000);
        assert!(base.report.instructions > 10_000);
    }

    #[test]
    fn prop_reorder_reduces_dcache_misses() {
        let (app, mix, truth) = lab();
        let params = quick();
        let base = measure_steady_state(
            &app,
            &mix,
            &truth,
            &SteadyConfig::jumpstart_no_opts(),
            &params,
        );
        let pr = measure_steady_state(
            &app,
            &mix,
            &truth,
            &SteadyConfig::prop_reorder_only(),
            &params,
        );
        let red = pr.report.reduction_vs(&base.report);
        assert!(red[3] > -2.0, "dcache reduction {red:?} should not regress");
    }

    #[test]
    fn measurements_are_deterministic() {
        let (app, mix, truth) = lab();
        let params = quick();
        let a = measure_steady_state(&app, &mix, &truth, &SteadyConfig::jumpstart_full(), &params);
        let b = measure_steady_state(&app, &mix, &truth, &SteadyConfig::jumpstart_full(), &params);
        assert_eq!(a.report.cycles, b.report.cycles);
        assert_eq!(a.code_bytes, b.code_bytes);
    }
}
