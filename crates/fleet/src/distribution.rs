//! Package distribution over cell links: who sends how many bytes to
//! whom, and when each consumer's download completes.
//!
//! The baseline distribution path re-sends the full sealed package to
//! every consumer on every push. With the content-addressed chunk store
//! a push ships the manifest plus only the chunks a consumer's cache
//! (warmed by the previous release it was just running) does not already
//! hold — and a lazy boot decodes only the hot closure's bytes before
//! serve-start.
//!
//! The model here prices that per cell: every Jump-Start consumer's
//! fetch goes through its cell's ingress link, a FIFO queue with a fixed
//! byte rate, driven by the deployment's [`EventQueue`] on the
//! orchestrator thread *before* fan-out — so the computed download times
//! are part of every server's precomputed plan and the deployment report
//! stays bit-identical for any shard count.

use jumpstart::chunk::{delta_against, ChunkPool, Manifest};

use crate::engine::{EventQueue, MS};

/// Bandwidth/latency model for package distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributionParams {
    /// Model distribution at all. Off = downloads are free and instant
    /// (the pre-chunk-store behavior, kept as the default so existing
    /// calibrations are untouched).
    pub enabled: bool,
    /// Ship chunk deltas against the consumer's previous-release cache
    /// and decode lazily; off = ship the full sealed package.
    pub chunked: bool,
    /// Cell ingress link budget, bytes per millisecond of fleet time
    /// (125_000 ≈ 1 Gbps).
    pub link_bytes_per_ms: u64,
    /// Fixed per-fetch latency (store lookup + RTT), ms.
    pub base_latency_ms: u64,
    /// Consumer-side decode cost, milliseconds per megabyte of chunk
    /// bytes decoded before serve-start.
    pub decode_ms_per_mb: f64,
}

impl Default for DistributionParams {
    fn default() -> Self {
        Self {
            enabled: false,
            chunked: true,
            link_bytes_per_ms: 125_000,
            base_latency_ms: 5,
            decode_ms_per_mb: 50.0,
        }
    }
}

impl DistributionParams {
    /// Enables the model with chunk-delta distribution (builder-style).
    pub fn chunked() -> Self {
        Self {
            enabled: true,
            chunked: true,
            ..Default::default()
        }
    }

    /// Enables the model with full-package distribution (the baseline
    /// the chunk store is measured against).
    pub fn full() -> Self {
        Self {
            enabled: true,
            chunked: false,
            ..Default::default()
        }
    }

    /// Sets the cell ingress link budget in megabits per second.
    pub fn with_link_mbps(mut self, mbps: u64) -> Self {
        self.link_bytes_per_ms = (mbps * 125).max(1);
        self
    }

    /// Sets the fixed per-fetch latency.
    pub fn with_latency_ms(mut self, ms: u64) -> Self {
        self.base_latency_ms = ms;
        self
    }

    /// Sets the consumer-side decode cost (ms per MB decoded pre-serve).
    pub fn with_decode_ms_per_mb(mut self, ms: f64) -> Self {
        self.decode_ms_per_mb = ms;
        self
    }
}

/// One consumer's planned fetch, fed to [`simulate_cell_links`].
#[derive(Clone, Copy, Debug)]
pub struct Fetch {
    /// Cell index (each cell has its own ingress link).
    pub cell: usize,
    /// When the server starts fetching (its staggered restart), ms.
    pub start_ms: u64,
    /// Bytes this fetch puts on the cell's wire.
    pub bytes: u64,
}

/// What one fetch cost, in submission order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Milliseconds from fetch start to last byte (queueing + transfer +
    /// base latency).
    pub download_ms: u64,
    /// Milliseconds the fetch sat behind earlier transfers on the link.
    pub queue_ms: u64,
}

/// Serializes every fetch through its cell's FIFO ingress link on the
/// event engine. Returns one outcome per fetch, in input order.
///
/// Transfers are serviced in arrival order (ties broken by submission
/// order — the engine's deterministic tie-break), each occupying the
/// link for `ceil(bytes / link_bytes_per_ms)` ms.
pub fn simulate_cell_links(
    fetches: &[Fetch],
    cells: usize,
    params: &DistributionParams,
) -> Vec<FetchOutcome> {
    let mut queue: EventQueue<usize> = EventQueue::new();
    for (i, f) in fetches.iter().enumerate() {
        debug_assert!(f.cell < cells);
        queue.schedule(f.start_ms * MS, i);
    }
    let mut link_free_ms = vec![0u64; cells];
    let mut out = vec![FetchOutcome::default(); fetches.len()];
    while let Some((at, i)) = queue.pop() {
        let f = &fetches[i];
        let arrival_ms = at / MS;
        let start = arrival_ms.max(link_free_ms[f.cell]);
        let transfer = f.bytes.div_ceil(params.link_bytes_per_ms.max(1));
        link_free_ms[f.cell] = start + transfer;
        out[i] = FetchOutcome {
            download_ms: (start - arrival_ms) + transfer + params.base_latency_ms,
            queue_ms: start - arrival_ms,
        };
    }
    out
}

/// What a push would send to a consumer holding `cache`, and how many of
/// the payload's bytes a lazy boot decodes before serve-start.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PackageWire {
    /// Bytes on the wire for this consumer.
    pub bytes_on_wire: u64,
    /// Bytes the full-package baseline would send.
    pub bytes_full: u64,
    /// Manifest portion of the wire bytes (0 for full-package sends).
    pub manifest_bytes: u64,
    /// Chunks shipped (cache misses).
    pub chunks_sent: u64,
    /// Chunks served from the consumer's cache.
    pub chunks_cached: u64,
    /// Fraction of payload bytes decoded before serve-start (head + tail
    /// + the hot closure at `early_serve_frac`; 1.0 for monolithic).
    pub early_decode_frac: f64,
}

/// Prices one package fetch for a consumer whose chunk cache holds the
/// previous release (`cache`), under `early_serve_frac` lazy decode.
pub fn package_wire(
    man: Option<&Manifest>,
    full_bytes: u64,
    cache: &ChunkPool,
    early_serve_frac: f64,
    params: &DistributionParams,
) -> PackageWire {
    let Some(man) = man.filter(|_| params.chunked) else {
        return PackageWire {
            bytes_on_wire: full_bytes,
            bytes_full: full_bytes,
            early_decode_frac: 1.0,
            ..Default::default()
        };
    };
    let d = delta_against(man, cache);
    PackageWire {
        bytes_on_wire: d.wire_bytes(),
        bytes_full: full_bytes,
        manifest_bytes: d.manifest_bytes,
        chunks_sent: d.chunks_sent as u64,
        chunks_cached: d.chunks_reused as u64,
        early_decode_frac: man.early_decode_frac(early_serve_frac),
    }
}

/// Fleet-wide distribution accounting for one push.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DistributionReport {
    /// Whether the model ran (off = every other field is zero).
    pub enabled: bool,
    /// Whether deltas + lazy decode were used (vs full packages).
    pub chunked: bool,
    /// Bytes the full-package baseline would have sent to consumers.
    pub bytes_full: u64,
    /// Bytes actually sent to consumers.
    pub bytes_on_wire: u64,
    /// Manifest portion of `bytes_on_wire`.
    pub manifest_bytes: u64,
    /// Chunk-cache misses across all consumer fetches.
    pub chunks_sent: u64,
    /// Chunk-cache hits across all consumer fetches.
    pub chunks_cached: u64,
    /// Seeder→store payload bytes published (with repetition).
    pub publish_bytes_total: u64,
    /// Seeder→store payload bytes actually retained by the store pools.
    pub publish_bytes_new: u64,
    /// Mean consumer download time, ms.
    pub mean_download_ms: f64,
    /// Slowest consumer download, ms.
    pub max_download_ms: u64,
}

impl DistributionReport {
    /// Consumer wire bytes as a fraction of the full-package baseline.
    pub fn wire_ratio(&self) -> f64 {
        if self.bytes_full == 0 {
            return 1.0;
        }
        self.bytes_on_wire as f64 / self.bytes_full as f64
    }

    /// Fraction of published bytes the store pools deduplicated away.
    pub fn store_dedup_ratio(&self) -> f64 {
        if self.publish_bytes_total == 0 {
            return 0.0;
        }
        1.0 - self.publish_bytes_new as f64 / self.publish_bytes_total as f64
    }

    /// Chunk-cache hit rate across consumer fetches.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.chunks_sent + self.chunks_cached;
        if total == 0 {
            return 0.0;
        }
        self.chunks_cached as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(link: u64) -> DistributionParams {
        DistributionParams {
            enabled: true,
            link_bytes_per_ms: link,
            base_latency_ms: 2,
            ..DistributionParams::chunked()
        }
    }

    #[test]
    fn fifo_link_serializes_concurrent_fetches() {
        // Two servers in cell 0 fetch 1000 bytes at t=0 over a
        // 100-bytes/ms link: the second queues behind the first.
        let fetches = [
            Fetch {
                cell: 0,
                start_ms: 0,
                bytes: 1000,
            },
            Fetch {
                cell: 0,
                start_ms: 0,
                bytes: 1000,
            },
            Fetch {
                cell: 1,
                start_ms: 0,
                bytes: 1000,
            },
        ];
        let out = simulate_cell_links(&fetches, 2, &p(100));
        assert_eq!(
            out[0],
            FetchOutcome {
                download_ms: 12,
                queue_ms: 0
            }
        );
        assert_eq!(
            out[1],
            FetchOutcome {
                download_ms: 22,
                queue_ms: 10
            }
        );
        // Cell 1 has its own link: no queueing.
        assert_eq!(
            out[2],
            FetchOutcome {
                download_ms: 12,
                queue_ms: 0
            }
        );
    }

    #[test]
    fn staggered_fetches_avoid_queueing() {
        let fetches = [
            Fetch {
                cell: 0,
                start_ms: 0,
                bytes: 500,
            },
            Fetch {
                cell: 0,
                start_ms: 100,
                bytes: 500,
            },
        ];
        let out = simulate_cell_links(&fetches, 1, &p(100));
        assert_eq!(out[0].queue_ms, 0);
        assert_eq!(out[1].queue_ms, 0, "the link drained before t=100");
    }

    #[test]
    fn link_sim_is_input_order_deterministic() {
        let fetches: Vec<Fetch> = (0..50)
            .map(|i| Fetch {
                cell: (i % 3) as usize,
                start_ms: (i * 7) % 40,
                bytes: 10_000 + i * 13,
            })
            .collect();
        let a = simulate_cell_links(&fetches, 3, &p(1_000));
        let b = simulate_cell_links(&fetches, 3, &p(1_000));
        assert_eq!(a, b);
    }

    #[test]
    fn full_package_wire_ignores_cache() {
        let w = package_wire(None, 5000, &ChunkPool::new(), 0.25, &p(100));
        assert_eq!(w.bytes_on_wire, 5000);
        assert_eq!(w.early_decode_frac, 1.0);
        assert_eq!(w.chunks_cached, 0);
    }
}
