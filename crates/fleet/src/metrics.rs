//! Warmup timelines and the capacity-loss metric.

/// One timeline sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Server uptime (ms since process start).
    pub t_ms: u64,
    /// Served requests per second, normalized to the warmed-up rate.
    pub rps_norm: f64,
    /// Average wall latency per request (ms).
    pub latency_ms: f64,
    /// Total JITed code bytes produced so far.
    pub code_bytes: u64,
}

/// A server warmup timeline plus lifecycle markers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    /// Periodic samples.
    pub samples: Vec<Sample>,
    /// When the server started accepting requests.
    pub serve_start_ms: u64,
    /// Point A: profiling stopped / retranslate-all began (no-Jump-Start).
    pub point_a_ms: Option<u64>,
    /// Point B: optimized compilation finished (relocation begins).
    pub point_b_ms: Option<u64>,
    /// Point C: relocation finished, optimized code live.
    pub point_c_ms: Option<u64>,
}

impl Timeline {
    /// Fraction of capacity lost over `[0, window_ms)` relative to a
    /// server that never restarted (Fig. 2's area above the curve).
    ///
    /// The restart gap is priced exactly: capacity is zero over
    /// `[0, serve_start_ms)`, and the first sample's rate is held back to
    /// `serve_start_ms` rather than linearly interpolated from zero at
    /// `t = 0` — the server was already serving at that rate when it
    /// opened, it did not ramp from the beginning of time.
    pub fn capacity_loss_over(&self, window_ms: u64) -> f64 {
        capacity_loss_from(&self.samples, self.serve_start_ms, window_ms)
    }

    /// The sample closest to `t_ms`.
    ///
    /// Samples are sorted by `t_ms` (both drivers append in time order),
    /// so this is a binary search rather than a scan — timelines at
    /// paper scale are probed thousands of times per report. Ties
    /// between two equidistant neighbors go to the *earlier* sample,
    /// matching the old linear `min_by_key` (first minimum wins).
    pub fn at(&self, t_ms: u64) -> Option<&Sample> {
        let idx = self.samples.partition_point(|s| s.t_ms < t_ms);
        let after = self.samples.get(idx);
        let before = idx.checked_sub(1).and_then(|i| self.samples.get(i));
        match (before, after) {
            (Some(b), Some(a)) if b.t_ms.abs_diff(t_ms) <= a.t_ms.abs_diff(t_ms) => Some(b),
            (_, Some(a)) => Some(a),
            (b, None) => b,
        }
    }

    /// First time normalized RPS reaches `level`, if ever.
    pub fn time_to_rps(&self, level: f64) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.rps_norm >= level)
            .map(|s| s.t_ms)
    }
}

/// Capacity loss over a window: `1 - mean(rps_norm)` using trapezoidal
/// integration over `[0, window_ms)`, with samples taken to describe a
/// server serving from `t = 0` (the first sample interpolates from zero).
pub fn capacity_loss(samples: &[Sample], window_ms: u64) -> f64 {
    capacity_loss_impl(samples, 0, 0.0, window_ms)
}

/// [`capacity_loss`] for a server that only started serving at
/// `serve_start_ms`: zero capacity over `[0, serve_start_ms)`, then the
/// first in-window sample's rate held constant back to the serve start.
/// Without this, a first sample at `t > 0` is read as a linear ramp from
/// zero at `t = 0`, overstating loss for any server whose samples begin
/// after the restart gap.
pub fn capacity_loss_from(samples: &[Sample], serve_start_ms: u64, window_ms: u64) -> f64 {
    if serve_start_ms >= window_ms {
        return 1.0;
    }
    let first_v = samples
        .iter()
        .find(|s| s.t_ms >= serve_start_ms)
        .map_or(0.0, |s| s.rps_norm.min(1.0));
    capacity_loss_impl(samples, serve_start_ms, first_v, window_ms)
}

fn capacity_loss_impl(samples: &[Sample], start_ms: u64, start_v: f64, window_ms: u64) -> f64 {
    if samples.is_empty() || window_ms == 0 {
        return 1.0;
    }
    let mut area = 0.0;
    let mut prev_t = start_ms;
    let mut prev_v = start_v;
    for s in samples {
        if s.t_ms < start_ms {
            continue;
        }
        if s.t_ms > window_ms {
            let span = window_ms - prev_t;
            area += span as f64 * (prev_v + s.rps_norm.min(1.0)) / 2.0;
            prev_t = window_ms;
            break;
        }
        let span = s.t_ms - prev_t;
        area += span as f64 * (prev_v + s.rps_norm.min(1.0)) / 2.0;
        prev_t = s.t_ms;
        prev_v = s.rps_norm.min(1.0);
    }
    if prev_t < window_ms {
        area += (window_ms - prev_t) as f64 * prev_v;
    }
    1.0 - (area / window_ms as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t_ms: u64, rps: f64) -> Sample {
        Sample {
            t_ms,
            rps_norm: rps,
            latency_ms: 1.0,
            code_bytes: 0,
        }
    }

    #[test]
    fn full_capacity_has_zero_loss() {
        let samples = vec![s(0, 1.0), s(500, 1.0), s(1000, 1.0)];
        assert!(capacity_loss(&samples, 1000) < 1e-9);
    }

    #[test]
    fn dead_server_loses_everything() {
        let samples = vec![s(0, 0.0), s(1000, 0.0)];
        assert!((capacity_loss(&samples, 1000) - 1.0).abs() < 1e-9);
        assert_eq!(capacity_loss(&[], 1000), 1.0);
    }

    #[test]
    fn linear_ramp_loses_half() {
        let samples: Vec<Sample> = (0..=10).map(|i| s(i * 100, i as f64 / 10.0)).collect();
        let loss = capacity_loss(&samples, 1000);
        assert!((loss - 0.5).abs() < 0.01, "got {loss}");
    }

    #[test]
    fn window_truncates() {
        // Full for 500ms then dead: loss over 1000ms = 0.5.
        let samples = vec![s(0, 1.0), s(500, 1.0), s(501, 0.0), s(1000, 0.0)];
        let loss = capacity_loss(&samples, 1000);
        assert!((loss - 0.5).abs() < 0.01, "got {loss}");
        // Over the first 500ms only: no loss.
        assert!(capacity_loss(&samples, 500) < 0.01);
    }

    #[test]
    fn serve_start_prices_restart_gap_exactly() {
        // One sample at full rate, taken at t = 1000, server open since
        // t = 200. Correct loss over [0, 1000): the 200ms gap = 0.2 —
        // NOT 0.5, which is what interpolating the first sample from
        // zero at t = 0 used to report.
        let samples = vec![s(1000, 1.0)];
        let loss = capacity_loss_from(&samples, 200, 1000);
        assert!((loss - 0.2).abs() < 1e-9, "got {loss}");

        let tl = Timeline {
            samples,
            serve_start_ms: 200,
            ..Default::default()
        };
        let loss = tl.capacity_loss_over(1000);
        assert!((loss - 0.2).abs() < 1e-9, "got {loss}");

        // With serve_start at 0 and a t=0 first sample, the two forms
        // agree (the hold-back is a no-op).
        let ramp: Vec<Sample> = (0..=10).map(|i| s(i * 100, i as f64 / 10.0)).collect();
        let a = capacity_loss(&ramp, 1000);
        let b = capacity_loss_from(&ramp, 0, 1000);
        assert!((a - b).abs() < 1e-9);

        // A gap covering the whole window is total loss.
        assert_eq!(capacity_loss_from(&[s(2000, 1.0)], 1500, 1000), 1.0);
    }

    #[test]
    fn at_binary_search_matches_linear_scan() {
        // The retired O(n) implementation, kept as the pinning oracle.
        fn at_linear(tl: &Timeline, t_ms: u64) -> Option<&Sample> {
            tl.samples.iter().min_by_key(|s| s.t_ms.abs_diff(t_ms))
        }
        // Irregular spacing, including an exact-midpoint tie (150 between
        // 100 and 200) where the linear scan's first minimum — the
        // earlier sample — must win.
        let tl = Timeline {
            samples: [0u64, 100, 200, 250, 1000, 1001]
                .iter()
                .map(|&t| s(t, t as f64))
                .collect(),
            ..Default::default()
        };
        for probe in [
            0, 1, 49, 50, 51, 100, 150, 151, 225, 226, 600, 1000, 1001, 9999,
        ] {
            assert_eq!(
                tl.at(probe).map(|x| x.t_ms),
                at_linear(&tl, probe).map(|x| x.t_ms),
                "probe {probe}"
            );
        }
        // Exact-midpoint tie resolves to the earlier sample.
        assert_eq!(tl.at(150).unwrap().t_ms, 100);
        assert_eq!(tl.at(225).unwrap().t_ms, 200);
        // Degenerate timelines.
        let empty = Timeline::default();
        assert!(empty.at(5).is_none());
        let one = Timeline {
            samples: vec![s(42, 1.0)],
            ..Default::default()
        };
        assert_eq!(one.at(0).unwrap().t_ms, 42);
        assert_eq!(one.at(100).unwrap().t_ms, 42);
    }

    #[test]
    fn timeline_helpers() {
        let tl = Timeline {
            samples: vec![s(0, 0.1), s(100, 0.5), s(200, 0.95)],
            serve_start_ms: 10,
            ..Default::default()
        };
        assert_eq!(tl.time_to_rps(0.9), Some(200));
        assert_eq!(tl.time_to_rps(0.99), None);
        assert_eq!(tl.at(120).unwrap().t_ms, 100);
    }
}
