//! The changepoint detector's correctness contract, as properties:
//!
//! 1. **Recovery.** On piecewise-constant series with well-separated
//!    levels and bounded noise, PELT must recover the true segment
//!    boundaries — every planted boundary found within a small index
//!    tolerance, and nothing spurious invented.
//! 2. **Exactness at zero noise.** A noiseless piecewise-constant series
//!    is segmented *exactly*: the changepoint set equals the planted one.
//! 3. **Determinism.** Segmentation is a pure function of its inputs —
//!    identical output across calls — and the pruned solver matches the
//!    unpruned reference on every input, planted or arbitrary. The
//!    pruning is a performance trick, never a behavior change.

use fleet::{
    classify_timeline, pelt_changepoints, pelt_changepoints_reference, segment_series, Sample,
    Timeline, WarmupAnalysisParams, WarmupClass,
};
use proptest::prelude::*;

/// A planted piecewise-constant series: alternating low/high levels so
/// consecutive segments are always separated by at least 0.6.
#[derive(Clone, Debug)]
struct Planted {
    xs: Vec<f64>,
    boundaries: Vec<usize>,
}

fn plant(lens: &[usize], lo: f64, hi: f64, noise: &[f64]) -> Planted {
    let mut xs = Vec::new();
    let mut boundaries = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        if i > 0 {
            boundaries.push(xs.len());
        }
        let level = if i % 2 == 0 { lo } else { hi };
        for _ in 0..len {
            let eps = noise.get(xs.len()).copied().unwrap_or(0.0);
            xs.push(level + eps);
        }
    }
    Planted { xs, boundaries }
}

fn arb_planted(noise_amp: f64) -> impl Strategy<Value = Planted> {
    (
        prop::collection::vec(8usize..=20, 2..=4),
        0.0..0.2f64,
        0.8..1.0f64,
    )
        .prop_flat_map(move |(lens, lo, hi)| {
            let total: usize = lens.iter().sum();
            // Unit noise scaled by the amplitude, so amp 0.0 still has a
            // nonempty strategy (float ranges must be half-open).
            prop::collection::vec(-1.0..1.0f64, total).prop_map(move |unit| {
                let noise: Vec<f64> = unit.iter().map(|e| e * noise_amp).collect();
                plant(&lens, lo, hi, &noise)
            })
        })
}

/// Every element of `a` is within `tol` of some element of `b`.
fn within(a: &[usize], b: &[usize], tol: usize) -> bool {
    a.iter().all(|&x| b.iter().any(|&y| x.abs_diff(y) <= tol))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn noisy_boundaries_recovered_within_tolerance(p in arb_planted(0.04)) {
        // Uniform test noise is heavier-tailed per-sample than the
        // robust (MAD-based, Gaussian-calibrated) σ estimate assumes, so
        // on these deliberately short segments the default penalty sits
        // near the split margin. A stiffer penalty removes the
        // borderline splits without touching detection: a planted 0.6
        // jump pays ~100x this penalty.
        let params = WarmupAnalysisParams::default().with_penalty_scale(8.0);
        let cps = pelt_changepoints(&p.xs, &params);
        // Every planted boundary is found, and every detection is real:
        // the recovered and planted sets match within two samples.
        prop_assert!(
            within(&p.boundaries, &cps, 2),
            "missed a planted boundary: planted {:?}, got {:?}",
            p.boundaries,
            cps
        );
        prop_assert!(
            within(&cps, &p.boundaries, 2),
            "spurious changepoint: planted {:?}, got {:?}",
            p.boundaries,
            cps
        );
    }

    #[test]
    fn zero_noise_is_segmented_exactly(p in arb_planted(0.0)) {
        let params = WarmupAnalysisParams::default();
        prop_assert_eq!(&pelt_changepoints(&p.xs, &params), &p.boundaries);
        // And the segment means are exactly the planted levels.
        for (i, seg) in segment_series(&p.xs, &params).iter().enumerate() {
            prop_assert!((seg.mean - p.xs[seg.start]).abs() < 1e-12, "segment {i} mean");
        }
    }

    #[test]
    fn segmentation_is_deterministic_and_pruning_is_lossless(p in arb_planted(0.04)) {
        let params = WarmupAnalysisParams::default();
        let a = pelt_changepoints(&p.xs, &params);
        let b = pelt_changepoints(&p.xs, &params);
        prop_assert_eq!(&a, &b, "two calls on identical input diverged");
        prop_assert_eq!(&a, &pelt_changepoints_reference(&p.xs, &params), "pruned vs reference");
    }

    #[test]
    fn pruning_matches_reference_on_arbitrary_series(
        xs in prop::collection::vec(0.0..10.0f64, 0..=60)
    ) {
        let params = WarmupAnalysisParams::default();
        prop_assert_eq!(
            pelt_changepoints(&xs, &params),
            pelt_changepoints_reference(&xs, &params)
        );
    }

    #[test]
    fn classification_is_deterministic(p in arb_planted(0.04)) {
        // A rising piecewise series read as a timeline classifies the
        // same way on every call, including bootstrap-dependent fields.
        let tl = Timeline {
            samples: p
                .xs
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    t_ms: (i as u64 + 1) * 5_000,
                    rps_norm: v.clamp(0.0, 1.0),
                    latency_ms: 2.0,
                    code_bytes: 0,
                })
                .collect(),
            ..Default::default()
        };
        let duration = tl.samples.last().map_or(0, |s| s.t_ms);
        let params = WarmupAnalysisParams::default();
        let a = classify_timeline(&tl, duration, &params);
        let b = classify_timeline(&tl, duration, &params);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn planted_slowdown_and_warmup_classify_as_such() {
    let params = WarmupAnalysisParams::default();
    let mk = |levels: &[(usize, f64)]| -> Timeline {
        let mut samples = Vec::new();
        for &(len, v) in levels {
            for _ in 0..len {
                samples.push(Sample {
                    t_ms: (samples.len() as u64 + 1) * 5_000,
                    rps_norm: v,
                    latency_ms: 2.0,
                    code_bytes: 0,
                });
            }
        }
        Timeline {
            samples,
            ..Default::default()
        }
    };
    let rising = mk(&[(10, 0.3), (10, 0.7), (20, 1.0)]);
    let duration = rising.samples.last().unwrap().t_ms;
    assert_eq!(
        classify_timeline(&rising, duration, &params).class,
        WarmupClass::Warmup
    );
    let falling = mk(&[(10, 1.0), (30, 0.5)]);
    let duration = falling.samples.last().unwrap().t_ms;
    assert_eq!(
        classify_timeline(&falling, duration, &params).class,
        WarmupClass::Slowdown
    );
}
