//! Fault injection through the deployment pipeline: every failure mode a
//! [`FaultPlan`] can inject must surface in the [`DeployReport`]
//! deterministically — same seed, same faults, same victims, any shard
//! count.

use fleet::{run_deployment, DeployParams, FaultPlan, FleetShape, WarmupClass, WarmupParams};
use jumpstart::JumpStartOptions;
use workload::{generate, AppParams};

fn base_params() -> DeployParams {
    DeployParams::default()
        .with_cells(1, 2)
        .with_seeders(2, 120)
        .with_warmup(WarmupParams {
            duration_ms: 200_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 60_000,
            relocation_ms: 20_000,
            ..WarmupParams::fig4()
        })
        .with_seed(0xfa)
}

fn lenient(mut p: DeployParams) -> DeployParams {
    p.js_opts = JumpStartOptions {
        min_funcs_profiled: 5,
        min_counter_mass: 100,
        min_requests: 10,
        ..Default::default()
    };
    p
}

#[test]
fn crashed_seeders_leave_consumers_without_packages() {
    let app = generate(&AppParams::tiny());
    let params = lenient(base_params())
        .with_faults(FaultPlan::default().with_seeder_crashes(1000))
        .with_fleet(FleetShape::default().with_servers(3, 1));
    let report = run_deployment(&app, &params);

    // Every seeder died before publishing; the counters say so.
    assert_eq!(report.seeder_crashes, 4, "2 cells x 2 seeders all crash");
    assert_eq!(report.published, 0);
    assert_eq!(report.validation_failures, 0);

    // §VI-A.3: consumers that find no package boot without Jump-Start,
    // so their boot time matches the baselines in the same cell.
    let baseline_boot = report
        .stats
        .iter()
        .find(|s| !s.jumpstart)
        .expect("baseline present")
        .boot_ms;
    for s in report.stats.iter().filter(|s| s.jumpstart) {
        assert_eq!(s.boot_ms, baseline_boot, "fallback boots like a baseline");
    }
    assert!((report.capacity_loss_reduction(200_000)).abs() < 1e-9);
}

#[test]
fn undersampled_seeders_are_rejected_by_validation() {
    let app = generate(&AppParams::tiny());
    let mut params = base_params().with_faults(FaultPlan::default().with_undersampling(1000));
    params.js_opts = JumpStartOptions {
        min_requests: 50,
        ..Default::default()
    };
    let report = run_deployment(&app, &params);

    // Every seeder profiled a drained cell; validation rejected them all.
    assert_eq!(report.validation_failures, 4);
    assert_eq!(report.published, 0);
    assert_eq!(report.seeder_crashes, 0);
}

#[test]
fn slow_hosts_are_flagged_and_boot_slower() {
    let app = generate(&AppParams::tiny());
    let healthy = run_deployment(
        &app,
        &lenient(base_params()).with_fleet(FleetShape::default().with_servers(4, 1)),
    );
    let degraded = run_deployment(
        &app,
        &lenient(base_params())
            .with_fleet(FleetShape::default().with_servers(4, 1))
            .with_faults(FaultPlan::default().with_slow_consumers(1000, 300)),
    );

    assert!(degraded.stats.iter().all(|s| s.slow_host));
    assert!(healthy.stats.iter().all(|s| !s.slow_host));
    // 3x slower init/deserialize shows up in every boot time.
    for (h, d) in healthy.stats.iter().zip(&degraded.stats) {
        assert!(
            d.boot_ms > h.boot_ms,
            "slow host gid {} must boot later: {} vs {}",
            d.gid,
            d.boot_ms,
            h.boot_ms
        );
    }
    // And in the fleet percentiles.
    let h_boot = healthy.fleet_aggregate();
    let d_boot = degraded.fleet_aggregate();
    assert!(
        d_boot.stat("server.boot_ms").unwrap().p50 > h_boot.stat("server.boot_ms").unwrap().p50
    );
}

#[test]
fn degrading_hosts_classify_as_slowdown_not_warmup() {
    let app = generate(&AppParams::tiny());
    let healthy = run_deployment(
        &app,
        &lenient(base_params()).with_fleet(FleetShape::default().with_servers(6, 1)),
    );
    let degrading = run_deployment(
        &app,
        &lenient(base_params())
            .with_fleet(FleetShape::default().with_servers(6, 1))
            .with_faults(FaultPlan::default().with_degrading(1000, 120)),
    );

    assert!(degrading.stats.iter().all(|s| s.degrading));
    assert!(healthy.stats.iter().all(|s| !s.degrading));

    // A degrading host gets monotonically worse — a fleet-mean curve
    // would average this away, but per-server classification must not:
    // nobody on a degrading host may read as settled-and-fine.
    for s in &degrading.stats {
        assert!(
            !matches!(s.class, WarmupClass::Warmup | WarmupClass::Flat),
            "gid {} on degrading host classified {:?}",
            s.gid,
            s.class
        );
    }
    // Healthy servers in the same deployment shape warm up normally.
    assert!(healthy
        .stats
        .iter()
        .any(|s| matches!(s.class, WarmupClass::Warmup)));

    // The report's per-arm class counts agree with the per-server view.
    let total = degrading.stats.len() as u32;
    let settled = degrading.warmup.js.counts.get(WarmupClass::Warmup)
        + degrading.warmup.js.counts.get(WarmupClass::Flat)
        + degrading.warmup.nojs.counts.get(WarmupClass::Warmup)
        + degrading.warmup.nojs.counts.get(WarmupClass::Flat);
    assert_eq!(settled, 0, "no degrading server may count as settled");
    assert_eq!(
        degrading.warmup.js.counts.total() + degrading.warmup.nojs.counts.total(),
        total
    );
}

#[test]
fn partial_fault_rates_pick_the_same_victims_every_run() {
    let app = generate(&AppParams::tiny());
    let params = lenient(base_params())
        .with_fleet(FleetShape::default().with_servers(10, 2).with_shards(3))
        .with_faults(
            FaultPlan::default()
                .with_seeder_crashes(500)
                .with_slow_consumers(400, 200),
        );
    let a = run_deployment(&app, &params);
    let b = run_deployment(&app, &params);

    assert_eq!(a.seeder_crashes, b.seeder_crashes);
    let slow_a: Vec<u32> = a
        .stats
        .iter()
        .filter(|s| s.slow_host)
        .map(|s| s.gid)
        .collect();
    let slow_b: Vec<u32> = b
        .stats
        .iter()
        .filter(|s| s.slow_host)
        .map(|s| s.gid)
        .collect();
    assert_eq!(slow_a, slow_b, "fault placement is seed-determined");
    assert!(
        !slow_a.is_empty() && slow_a.len() < a.stats.len(),
        "rate 400/1000 hits some, not all"
    );
    assert_eq!(a.digest(), b.digest());
}
