//! The event core's correctness contract, stated as properties:
//!
//! 1. **Oracle equivalence.** For any calibration, the event-driven
//!    driver ([`fleet::run_server`]) must produce a [`fleet::Timeline`]
//!    *bit-identical* to the dense per-second reference stepper
//!    ([`fleet::simulate_warmup_dense`]) — not within an epsilon. Both
//!    drivers share every floating-point operation (the `ServerSim` state
//!    machine); the event core is only allowed to skip steps it can prove
//!    would not change state, so any divergence is a bug in that proof.
//! 2. **Shard invariance.** A deployment's report is a pure function of
//!    its parameters: running the same fleet on 1 thread or 4 must give
//!    byte-identical per-server stats, aggregates and digest, because all
//!    randomness is drawn from per-server streams before the fan-out.

use std::sync::OnceLock;

use fleet::{
    build_app_model, run_deployment, run_server, simulate_warmup_dense, AppModel, DeployParams,
    FaultPlan, FleetShape, ServerConfig, WarmupParams,
};
use jit::JitOptions;
use jumpstart::{build_package, JumpStartOptions, ProfilePackage, SeederInputs};
use proptest::prelude::*;
use workload::{generate, App, AppParams, RequestMix};

struct Fixture {
    app: App,
    model: AppModel,
    pkg: ProfilePackage,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let app = generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let run = workload::profile_run(&app, &mix, 150, 11);
        let model = build_app_model(&app, &run);
        let pkg = build_package(
            SeederInputs {
                repo: &app.repo,
                tier: run.tier,
                ctx: run.ctx,
                unit_order: run.unit_order,
                requests: run.requests,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            &JumpStartOptions::default(),
            &JitOptions::default(),
        );
        Fixture { app, model, pkg }
    })
}

fn arb_params() -> impl Strategy<Value = WarmupParams> {
    (
        (
            60_000u64..400_000, // duration_ms (incl. non-multiples of the step)
            1u64..5,            // sample every 1..5 s
            0u64..30,           // init_ms_nojs (s)
            0u64..12,           // init_ms_js (s)
            0u64..5,            // deserialize_ms (s)
        ),
        (
            10u64..90, // profile_serve_ms (s)
            0u64..30,  // relocation_ms (s)
            1u32..5,   // jit_threads
            (3u64..12, 1u64..11, 1u64..21),
        ),
    )
        .prop_map(
            |(
                (duration_ms, sample_s, init_nojs_s, init_js_s, deser_s),
                (profile_s, reloc_s, jit_threads, (offered_decile, early_decile, compile_rate)),
            )| {
                WarmupParams {
                    duration_ms,
                    sample_ms: sample_s * 1000,
                    init_ms_nojs: init_nojs_s * 1000,
                    init_ms_js: init_js_s * 1000,
                    deserialize_ms: deser_s * 1000,
                    profile_serve_ms: profile_s * 1000,
                    relocation_ms: reloc_s * 1000,
                    jit_threads,
                    // Strictly positive: offered == 0 makes rps_norm NaN in
                    // both drivers, which `Timeline == Timeline` can't see.
                    offered_fraction: offered_decile as f64 / 10.0,
                    early_serve_frac: early_decile as f64 / 10.0,
                    compile_bytes_per_core_ms: compile_rate as f64 / 4.0,
                    ..WarmupParams::fig4()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn event_core_matches_dense_reference_without_jumpstart(params in arb_params()) {
        let fx = fixture();
        let mix = RequestMix::new(&fx.app, 0, 0);
        let config = ServerConfig { params, jumpstart: None };
        let dense = simulate_warmup_dense(&fx.app, &fx.model, &mix, &config);
        let run = run_server(&fx.app, &fx.model, &mix, &config);
        prop_assert_eq!(&dense, &run.timeline);
    }

    #[test]
    fn event_core_matches_dense_reference_with_jumpstart(params in arb_params()) {
        let fx = fixture();
        let mix = RequestMix::new(&fx.app, 0, 0);
        let config = ServerConfig { params, jumpstart: Some(&fx.pkg) };
        let dense = simulate_warmup_dense(&fx.app, &fx.model, &mix, &config);
        let run = run_server(&fx.app, &fx.model, &mix, &config);
        prop_assert_eq!(&dense, &run.timeline);
        // The speedup must not come from doing the same work: a consumer
        // quiesces, so most steps are skipped, never recomputed.
        prop_assert!(run.steps_executed <= run.steps_dense);
    }
}

fn sharded_deploy_params(shards: u32) -> DeployParams {
    DeployParams::default()
        .with_cells(1, 2)
        .with_seeders(2, 120)
        .with_warmup(WarmupParams {
            duration_ms: 200_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 60_000,
            relocation_ms: 20_000,
            ..WarmupParams::fig4()
        })
        .with_fleet(
            FleetShape::default()
                .with_servers(9, 3)
                .with_representatives(2)
                .with_shards(shards)
                .with_stagger(45_000)
                .with_jitter(150),
        )
        .with_faults(
            FaultPlan::default()
                .with_seeder_crashes(200)
                .with_slow_consumers(150, 300),
        )
        .with_seed(0x5eed)
}

#[test]
fn deployment_is_invariant_under_shard_count() {
    let fx = fixture();
    let one = run_deployment(&fx.app, &sharded_deploy_params(1));
    let four = run_deployment(&fx.app, &sharded_deploy_params(4));

    // Same servers, same outcomes, same order — bit for bit.
    assert_eq!(one.stats, four.stats);
    assert_eq!(one.published, four.published);
    assert_eq!(one.seeder_crashes, four.seeder_crashes);
    assert_eq!(one.js_timelines, four.js_timelines);
    assert_eq!(one.nojs_timelines, four.nojs_timelines);
    assert_eq!(one.fleet_aggregate(), four.fleet_aggregate());
    assert_eq!(one.digest(), four.digest());

    // The warmup classification report is built post-merge in gid order,
    // so it must be byte-identical however the fleet was sharded.
    assert_eq!(one.warmup.to_json(), four.warmup.to_json());
    assert_eq!(one.warmup.digest(), four.warmup.digest());

    // Shard count is accounting-visible only where it should be.
    assert_eq!(one.sim.shards, 1);
    assert_eq!(four.sim.shards, 4);
    assert_eq!(one.sim.events, four.sim.events);
    assert_eq!(one.sim.steps_executed, four.sim.steps_executed);
    assert_eq!(one.sim.requests, four.sim.requests);
}

#[test]
fn staggered_restarts_do_not_change_local_timelines() {
    // Stagger shifts when a server runs in fleet time, not what it does:
    // with jitter and faults off, every consumer of a cell is identical,
    // so their stats must match the unstaggered run exactly.
    let fx = fixture();
    let base = DeployParams::default()
        .with_cells(1, 1)
        .with_seeders(1, 120)
        .with_warmup(WarmupParams {
            duration_ms: 150_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 40_000,
            relocation_ms: 10_000,
            ..WarmupParams::fig4()
        })
        .with_seed(7);
    let calm = run_deployment(
        &fx.app,
        &base.with_fleet(FleetShape::default().with_servers(4, 1)),
    );
    let staggered = run_deployment(
        &fx.app,
        &base.with_fleet(
            FleetShape::default()
                .with_servers(4, 1)
                .with_stagger(60_000)
                .with_shards(2),
        ),
    );
    for (a, b) in calm.stats.iter().zip(&staggered.stats) {
        assert_eq!(a.boot_ms, b.boot_ms);
        assert_eq!(a.ready_ms, b.ready_ms);
        assert_eq!(a.capacity_loss.to_bits(), b.capacity_loss.to_bits());
        assert_eq!(a.requests.to_bits(), b.requests.to_bits());
    }
}
