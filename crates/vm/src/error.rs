//! Runtime errors.

use std::fmt;

use bytecode::FuncId;

/// An error raised during interpretation.
///
/// JIT-compiled code must raise exactly the same errors as the interpreter;
/// the differential tests in `crates/jit` rely on that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// An operator was applied to operand types it does not support.
    TypeError {
        func: FuncId,
        at: u32,
        detail: String,
    },
    /// A named function does not exist.
    UndefinedFunction(String),
    /// A method was not found on the receiver's class or its ancestors.
    UndefinedMethod { class: String, method: String },
    /// A property was not found on the receiver's class.
    UndefinedProperty { class: String, prop: String },
    /// A vec/dict index was missing or out of range.
    IndexError { detail: String },
    /// Integer division or modulus by zero.
    DivisionByZero { func: FuncId, at: u32 },
    /// `this` used outside a method.
    NoThis { func: FuncId },
    /// Recursion exceeded the configured frame limit.
    StackOverflow,
    /// The configured instruction budget was exhausted (runaway loop guard).
    FuelExhausted,
    /// A method call receiver was not an object.
    NotAnObject {
        func: FuncId,
        at: u32,
        found: &'static str,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::TypeError { func, at, detail } => {
                write!(f, "{func}@{at}: type error: {detail}")
            }
            VmError::UndefinedFunction(n) => write!(f, "undefined function `{n}`"),
            VmError::UndefinedMethod { class, method } => {
                write!(f, "undefined method `{class}::{method}`")
            }
            VmError::UndefinedProperty { class, prop } => {
                write!(f, "undefined property `{class}::${prop}`")
            }
            VmError::IndexError { detail } => write!(f, "index error: {detail}"),
            VmError::DivisionByZero { func, at } => write!(f, "{func}@{at}: division by zero"),
            VmError::NoThis { func } => write!(f, "{func}: `this` outside a method"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::FuelExhausted => write!(f, "instruction budget exhausted"),
            VmError::NotAnObject { func, at, found } => {
                write!(f, "{func}@{at}: method call on non-object ({found})")
            }
        }
    }
}

impl std::error::Error for VmError {}
