//! Runtime and interpreter for the Hacklet bytecode.
//!
//! This is the reproduction's equivalent of HHVM's interpreter and runtime
//! (paper §II-A): it executes untyped bytecode directly, serves as the
//! semantic ground truth for the JIT tiers, and exposes the hooks the
//! profiling tier uses to collect Jump-Start profile data:
//!
//! * [`Value`] — dynamic values (null, bool, int, float, string, vec, dict,
//!   object),
//! * [`ClassTable`] — runtime class resolution, including the *physical
//!   property order* that the Jump-Start property-reordering optimization
//!   installs (paper §V-C),
//! * [`Loader`] — lazy unit loading with a load-order log (the preload lists
//!   of paper §IV-B category 1),
//! * [`ExecObserver`] — instrumentation callbacks (block counters, branch
//!   outcomes, call targets, property accesses, observed types),
//! * [`Vm`] — the interpreter itself.
//!
//! # Example
//!
//! ```
//! use bytecode::{FuncBuilder, Instr, RepoBuilder, BinOp};
//! use vm::{Value, Vm};
//!
//! let mut b = RepoBuilder::new();
//! let u = b.declare_unit("m.hl");
//! let mut f = FuncBuilder::new("double_it", 1);
//! f.emit(Instr::GetL(0));
//! f.emit(Instr::Int(2));
//! f.emit(Instr::Bin(BinOp::Mul));
//! f.emit(Instr::Ret);
//! let id = b.define_func(u, f);
//! let repo = b.finish();
//! let mut vm = Vm::new(&repo);
//! assert_eq!(vm.call(id, &[Value::Int(21)]).unwrap(), Value::Int(42));
//! ```

mod builtins;
mod classes;
mod error;
mod interp;
mod loader;
mod observer;
mod value;

pub use classes::{ClassTable, PropLayout, RuntimeClass};
pub use error::VmError;
pub use interp::{ExecStats, Vm, VmOptions};
pub use loader::{unit_bytes, LoadEvent, Loader};
pub use observer::{ExecObserver, NullObserver, ValueKind};
pub use value::{DictKey, ObjRef, Object, Value};
