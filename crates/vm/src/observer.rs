//! Instrumentation hooks.
//!
//! HHVM's profiling translations are JITed code with embedded counters
//! (paper §II-A); in this reproduction the interpreter raises callbacks at
//! the equivalent points and the `jit` crate's profile collector implements
//! [`ExecObserver`] to fill its counter tables. The categories match the
//! package contents of paper §IV-B: block counters and observed types (JIT
//! profile data), call targets (target profiles), property accesses
//! (object-layout profile).

use bytecode::{BlockId, ClassId, FuncId, StrId};

use crate::value::Value;

/// A coarse dynamic type tag for profile purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKind {
    /// Null.
    Null,
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Float.
    Float,
    /// String.
    Str,
    /// Vec.
    Vec,
    /// Dict.
    Dict,
    /// Object (class id carried separately where it matters).
    Obj,
}

impl ValueKind {
    /// The tag of a runtime value.
    pub fn of(v: &Value) -> ValueKind {
        match v {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Vec(_) => ValueKind::Vec,
            Value::Dict(_) => ValueKind::Dict,
            Value::Obj(_) => ValueKind::Obj,
        }
    }

    /// Dense index (for counter arrays).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of distinct kinds.
    pub const COUNT: usize = 8;

    /// All kinds in index order.
    pub const ALL: [ValueKind; ValueKind::COUNT] = [
        ValueKind::Null,
        ValueKind::Bool,
        ValueKind::Int,
        ValueKind::Float,
        ValueKind::Str,
        ValueKind::Vec,
        ValueKind::Dict,
        ValueKind::Obj,
    ];
}

/// Callbacks raised by the interpreter while executing instrumented code.
///
/// All methods have empty defaults so observers implement only what they
/// need. Callbacks are only raised when the [`crate::Vm`] runs in observed
/// mode, so plain execution pays nothing.
pub trait ExecObserver {
    /// A function body was entered with the given arguments.
    fn on_func_enter(&mut self, _func: FuncId, _args: &[Value]) {}

    /// A bytecode basic block was entered.
    fn on_block(&mut self, _func: FuncId, _block: BlockId) {}

    /// A conditional branch at instruction `at` resolved to `taken`.
    fn on_branch(&mut self, _func: FuncId, _at: u32, _taken: bool) {}

    /// A call site at instruction `at` dispatched to `callee`.
    fn on_call(&mut self, _caller: FuncId, _at: u32, _callee: FuncId) {}

    /// A property was read or written on an instance of `class`, at
    /// instruction `at` of `func`.
    fn on_prop_access(
        &mut self,
        _func: FuncId,
        _at: u32,
        _class: ClassId,
        _prop: StrId,
        _write: bool,
    ) {
    }

    /// A value's type was observed at a profiling point (binary op input,
    /// instruction `at`, operand index `slot`).
    fn on_type_observed(&mut self, _func: FuncId, _at: u32, _slot: u8, _kind: ValueKind) {}

    /// A function returned normally.
    fn on_func_exit(&mut self, _func: FuncId) {}
}

/// An observer that records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl ExecObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_kind_of_covers_all_variants() {
        assert_eq!(ValueKind::of(&Value::Null), ValueKind::Null);
        assert_eq!(ValueKind::of(&Value::Int(1)), ValueKind::Int);
        assert_eq!(ValueKind::of(&Value::str("x")), ValueKind::Str);
        assert_eq!(ValueKind::of(&Value::vec(vec![])), ValueKind::Vec);
    }

    #[test]
    fn kind_indices_are_dense() {
        for (i, k) in ValueKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn null_observer_is_usable_as_dyn() {
        let mut obs = NullObserver;
        let o: &mut dyn ExecObserver = &mut obs;
        o.on_block(FuncId::new(0), BlockId(0));
        o.on_branch(FuncId::new(0), 1, true);
    }
}
