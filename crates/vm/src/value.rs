//! Dynamic values.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::fmt;
use std::rc::Rc;

use bytecode::ClassId;

/// A key in a dict: PHP arrays are keyed by int or string.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DictKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(Rc<str>),
}

impl fmt::Display for DictKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictKey::Int(i) => write!(f, "{i}"),
            DictKey::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A heap object: class id plus property slots in *physical* order.
///
/// The logical (declared) property order is observable in Hacklet, so the
/// class table keeps a logical→physical map per class (paper §V-C); the
/// object itself only stores the physical slots.
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// The object's class.
    pub class: ClassId,
    /// Property values in physical slot order.
    pub slots: Vec<Value>,
}

/// Shared, mutable reference to a heap object.
pub type ObjRef = Rc<RefCell<Object>>;

/// A runtime value.
///
/// Aggregates are reference types (shared via `Rc`), matching PHP object
/// semantics closely enough for the workloads we model. (Real PHP arrays
/// are copy-on-write values; we use reference semantics for vecs/dicts,
/// which none of the generated workloads rely on distinguishing.)
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// The null value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An immutable string.
    Str(Rc<str>),
    /// A growable vector.
    Vec(Rc<RefCell<Vec<Value>>>),
    /// An ordered dictionary.
    Dict(Rc<RefCell<Vec<(DictKey, Value)>>>),
    /// An object.
    Obj(ObjRef),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Rc::from(s))
    }

    /// Creates a vec value.
    pub fn vec(items: Vec<Value>) -> Value {
        Value::Vec(Rc::new(RefCell::new(items)))
    }

    /// Creates a dict value.
    pub fn dict(items: Vec<(DictKey, Value)>) -> Value {
        Value::Dict(Rc::new(RefCell::new(items)))
    }

    /// PHP-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty() && &**s != "0",
            Value::Vec(v) => !v.borrow().is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::Obj(_) => true,
        }
    }

    /// Short type name, used in error messages and the disassembly of
    /// observed type profiles.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Vec(_) => "vec",
            Value::Dict(_) => "dict",
            Value::Obj(_) => "object",
        }
    }

    /// Numeric view, if the value is an int or float.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Loose equality (see module docs for the exact rules).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), _) => *a == other.truthy(),
            (_, Value::Bool(b)) => self.truthy() == *b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Vec(a), Value::Vec(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.loose_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loose_eq(vb))
            }
            (Value::Obj(a), Value::Obj(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Ordering for `<`, `<=`, `>`, `>=`. Numbers compare numerically
    /// (int/float mix allowed), strings lexicographically.
    pub fn loose_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_number()?, other.as_number()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// String coercion (`print`, `concat`, `to_str`).
    pub fn coerce_to_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(true) => "1".into(),
            Value::Bool(false) => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.to_string(),
            Value::Vec(_) => "Vec".into(),
            Value::Dict(_) => "Dict".into(),
            Value::Obj(_) => "Object".into(),
        }
    }

    /// Int coercion (`to_int`).
    pub fn coerce_to_int(&self) -> i64 {
        match self {
            Value::Null => 0,
            Value::Bool(b) => *b as i64,
            Value::Int(i) => *i,
            Value::Float(f) => *f as i64,
            Value::Str(s) => s.trim().parse::<i64>().unwrap_or(0),
            _ => 0,
        }
    }

    /// Converts to a dict key, if the value is an int or string.
    pub fn as_dict_key(&self) -> Option<DictKey> {
        match self {
            Value::Int(i) => Some(DictKey::Int(*i)),
            Value::Str(s) => Some(DictKey::Str(s.clone())),
            Value::Bool(b) => Some(DictKey::Int(*b as i64)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality for tests; runtime comparisons use loose_eq.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Vec(a), Value::Vec(b)) => *a.borrow() == *b.borrow(),
            (Value::Dict(a), Value::Dict(b)) => *a.borrow() == *b.borrow(),
            (Value::Obj(a), Value::Obj(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.coerce_to_string())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_rules() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::str("").truthy());
        assert!(!Value::str("0").truthy());
        assert!(Value::str("00").truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::vec(vec![Value::Null]).truthy());
        assert!(!Value::vec(vec![]).truthy());
    }

    #[test]
    fn loose_eq_mixes_numbers() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::str("2")));
        assert!(Value::Bool(true).loose_eq(&Value::Int(7)));
        assert!(Value::Null.loose_eq(&Value::Null));
    }

    #[test]
    fn loose_cmp_numbers_and_strings() {
        assert_eq!(
            Value::Int(1).loose_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.5).loose_cmp(&Value::Int(2)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::str("abc").loose_cmp(&Value::str("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("a").loose_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn string_coercion() {
        assert_eq!(Value::Int(42).coerce_to_string(), "42");
        assert_eq!(Value::Float(2.0).coerce_to_string(), "2");
        assert_eq!(Value::Float(2.5).coerce_to_string(), "2.5");
        assert_eq!(Value::Null.coerce_to_string(), "");
        assert_eq!(Value::Bool(true).coerce_to_string(), "1");
    }

    #[test]
    fn int_coercion_parses_strings() {
        assert_eq!(Value::str(" 17 ").coerce_to_int(), 17);
        assert_eq!(Value::str("x").coerce_to_int(), 0);
        assert_eq!(Value::Float(3.9).coerce_to_int(), 3);
    }

    #[test]
    fn dict_keys_from_values() {
        assert_eq!(Value::Int(3).as_dict_key(), Some(DictKey::Int(3)));
        assert_eq!(
            Value::str("k").as_dict_key(),
            Some(DictKey::Str(Rc::from("k")))
        );
        assert_eq!(Value::Null.as_dict_key(), None);
    }

    #[test]
    fn vec_equality_is_structural() {
        let a = Value::vec(vec![Value::Int(1)]);
        let b = Value::vec(vec![Value::Int(1)]);
        assert_eq!(a, b);
        assert!(a.loose_eq(&b));
    }
}
