//! Lazy unit loading (the autoloader).
//!
//! Without Jump-Start, "a unit (and classes/functions defined in it) is
//! loaded into memory by the autoloader when executing the first request
//! that uses it" (paper §IV-B). The loader tracks which units are loaded,
//! the order they were loaded in, and the bytes touched — the load-order log
//! becomes the preload list in the Jump-Start package, and the byte counts
//! feed the warmup cost model.

use bytecode::{Repo, UnitId};

/// One unit-load event, in occurrence order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadEvent {
    /// The unit that was loaded.
    pub unit: UnitId,
    /// Approximate bytes of metadata and bytecode materialized.
    pub bytes: usize,
}

/// Tracks lazily-loaded units.
#[derive(Debug)]
pub struct Loader {
    loaded: Vec<bool>,
    log: Vec<LoadEvent>,
    total_bytes: usize,
}

impl Loader {
    /// Creates a loader with nothing loaded.
    pub fn new(repo: &Repo) -> Self {
        Self {
            loaded: vec![false; repo.units().len()],
            log: Vec::new(),
            total_bytes: 0,
        }
    }

    /// Whether `unit` is loaded.
    pub fn is_loaded(&self, unit: UnitId) -> bool {
        self.loaded[unit.index()]
    }

    /// Ensures `unit` is loaded; returns `true` if this call loaded it.
    pub fn ensure_loaded(&mut self, repo: &Repo, unit: UnitId) -> bool {
        if self.loaded[unit.index()] {
            return false;
        }
        self.loaded[unit.index()] = true;
        let bytes = unit_bytes(repo, unit);
        self.total_bytes += bytes;
        self.log.push(LoadEvent { unit, bytes });
        true
    }

    /// Preloads `units` in the given order (Jump-Start consumer startup).
    pub fn preload<I: IntoIterator<Item = UnitId>>(&mut self, repo: &Repo, units: I) {
        for u in units {
            self.ensure_loaded(repo, u);
        }
    }

    /// The load-order log.
    pub fn log(&self) -> &[LoadEvent] {
        &self.log
    }

    /// Units in load order (the preload list serialized into packages).
    pub fn load_order(&self) -> Vec<UnitId> {
        self.log.iter().map(|e| e.unit).collect()
    }

    /// Number of loaded units.
    pub fn loaded_count(&self) -> usize {
        self.log.len()
    }

    /// Total bytes materialized by loading.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }
}

/// Approximate bytes materialized when loading a unit: bytecode plus fixed
/// per-entity metadata overheads (VM `Unit`/`Class`/`Func` structures).
pub fn unit_bytes(repo: &Repo, unit: UnitId) -> usize {
    let u = repo.unit(unit);
    let func_bytes: usize = u
        .funcs
        .iter()
        .map(|&f| repo.func(f).bytecode_bytes() + 256)
        .sum();
    let class_bytes: usize = u
        .classes
        .iter()
        .map(|&c| 512 + repo.class(c).props.len() * 64)
        .sum();
    1024 + func_bytes + class_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{FuncBuilder, Instr, RepoBuilder};

    fn two_unit_repo() -> Repo {
        let mut b = RepoBuilder::new();
        for name in ["a.hl", "b.hl"] {
            let u = b.declare_unit(name);
            let mut f = FuncBuilder::new(&format!("f_{name}"), 0);
            f.emit(Instr::Null);
            f.emit(Instr::Ret);
            b.define_func(u, f);
        }
        b.finish()
    }

    #[test]
    fn loads_once_and_logs_order() {
        let repo = two_unit_repo();
        let mut l = Loader::new(&repo);
        let u1 = repo.units()[1].id;
        let u0 = repo.units()[0].id;
        assert!(l.ensure_loaded(&repo, u1));
        assert!(!l.ensure_loaded(&repo, u1));
        assert!(l.ensure_loaded(&repo, u0));
        assert_eq!(l.load_order(), vec![u1, u0]);
        assert_eq!(l.loaded_count(), 2);
        assert!(l.total_bytes() > 0);
    }

    #[test]
    fn preload_respects_order() {
        let repo = two_unit_repo();
        let mut l = Loader::new(&repo);
        let order = vec![repo.units()[0].id, repo.units()[1].id];
        l.preload(&repo, order.clone());
        assert_eq!(l.load_order(), order);
        assert!(l.is_loaded(order[0]));
    }
}
