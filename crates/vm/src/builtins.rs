//! Runtime builtins (the stand-in for HHVM extensions).

use bytecode::{Builtin, Repo};

use crate::error::VmError;
use crate::value::{DictKey, Value};

/// Executes a builtin over its popped arguments (`args[0]` is the first
/// argument). `output` is the request output buffer (`print` appends).
pub(crate) fn call_builtin(
    repo: &Repo,
    builtin: Builtin,
    args: &[Value],
    output: &mut String,
) -> Result<Value, VmError> {
    debug_assert_eq!(args.len(), builtin.arity());
    let _ = repo;
    match builtin {
        Builtin::Print => {
            output.push_str(&args[0].coerce_to_string());
            Ok(Value::Null)
        }
        Builtin::Strlen => match &args[0] {
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            other => Err(type_err("strlen", other)),
        },
        Builtin::Count => match &args[0] {
            Value::Vec(v) => Ok(Value::Int(v.borrow().len() as i64)),
            Value::Dict(d) => Ok(Value::Int(d.borrow().len() as i64)),
            other => Err(type_err("count", other)),
        },
        Builtin::Keys => match &args[0] {
            Value::Vec(v) => Ok(Value::vec(
                (0..v.borrow().len())
                    .map(|i| Value::Int(i as i64))
                    .collect(),
            )),
            Value::Dict(d) => Ok(Value::vec(
                d.borrow()
                    .iter()
                    .map(|(k, _)| match k {
                        DictKey::Int(i) => Value::Int(*i),
                        DictKey::Str(s) => Value::Str(s.clone()),
                    })
                    .collect(),
            )),
            other => Err(type_err("keys", other)),
        },
        Builtin::Abs => match &args[0] {
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(type_err("abs", other)),
        },
        Builtin::Min | Builtin::Max => {
            let (a, b) = (&args[0], &args[1]);
            let ord = a.loose_cmp(b).ok_or_else(|| type_err(builtin.name(), a))?;
            let pick_a = match builtin {
                Builtin::Min => ord != std::cmp::Ordering::Greater,
                _ => ord != std::cmp::Ordering::Less,
            };
            Ok(if pick_a { a.clone() } else { b.clone() })
        }
        Builtin::ToStr => Ok(Value::str(&args[0].coerce_to_string())),
        Builtin::ToInt => Ok(Value::Int(args[0].coerce_to_int())),
        Builtin::IsInt => Ok(Value::Bool(matches!(args[0], Value::Int(_)))),
        Builtin::IsStr => Ok(Value::Bool(matches!(args[0], Value::Str(_)))),
        Builtin::IsNull => Ok(Value::Bool(matches!(args[0], Value::Null))),
        Builtin::Substr => match (&args[0], &args[1], &args[2]) {
            (Value::Str(s), Value::Int(start), Value::Int(len)) => {
                let start = (*start).clamp(0, s.len() as i64) as usize;
                let end = (start + (*len).max(0) as usize).min(s.len());
                // Byte slicing; generated workloads stay ASCII.
                let sub = s.get(start..end).unwrap_or("");
                Ok(Value::str(sub))
            }
            _ => Err(type_err("substr", &args[0])),
        },
        Builtin::Push => match &args[0] {
            Value::Vec(v) => {
                v.borrow_mut().push(args[1].clone());
                Ok(args[0].clone())
            }
            other => Err(type_err("push", other)),
        },
        Builtin::IdxOr => {
            let key = args[1].as_dict_key();
            match (&args[0], key) {
                (Value::Vec(v), Some(DictKey::Int(i))) => {
                    let v = v.borrow();
                    Ok(if i >= 0 && (i as usize) < v.len() {
                        v[i as usize].clone()
                    } else {
                        args[2].clone()
                    })
                }
                (Value::Dict(d), Some(k)) => Ok(d
                    .borrow()
                    .iter()
                    .find(|(dk, _)| *dk == k)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| args[2].clone())),
                _ => Ok(args[2].clone()),
            }
        }
        Builtin::ClassName => match &args[0] {
            Value::Obj(o) => {
                let class = o.borrow().class;
                Ok(Value::str(repo.str(repo.class(class).name)))
            }
            other => Err(type_err("class_name", other)),
        },
        Builtin::HashVal => {
            let h = match &args[0] {
                Value::Int(i) => fnv1a(&i.to_le_bytes()),
                Value::Str(s) => fnv1a(s.as_bytes()),
                Value::Bool(b) => *b as u64,
                Value::Null => 0,
                Value::Float(f) => fnv1a(&f.to_le_bytes()),
                other => return Err(type_err("hash", other)),
            };
            Ok(Value::Int((h & 0x7fff_ffff_ffff_ffff) as i64))
        }
    }
}

fn type_err(name: &str, got: &Value) -> VmError {
    VmError::TypeError {
        func: bytecode::FuncId::new(u32::MAX),
        at: 0,
        detail: format!("{name} on {}", got.type_name()),
    }
}

/// FNV-1a, the deterministic hash used by `hash()` and profile keys.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::RepoBuilder;

    fn repo() -> Repo {
        RepoBuilder::new().finish()
    }

    fn call(b: Builtin, args: &[Value]) -> Result<Value, VmError> {
        let mut out = String::new();
        call_builtin(&repo(), b, args, &mut out)
    }

    #[test]
    fn print_appends_to_output() {
        let mut out = String::new();
        call_builtin(&repo(), Builtin::Print, &[Value::Int(7)], &mut out).unwrap();
        call_builtin(&repo(), Builtin::Print, &[Value::str("!")], &mut out).unwrap();
        assert_eq!(out, "7!");
    }

    #[test]
    fn strlen_count_keys() {
        assert_eq!(
            call(Builtin::Strlen, &[Value::str("abc")]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call(Builtin::Count, &[Value::vec(vec![Value::Null; 4])]).unwrap(),
            Value::Int(4)
        );
        let d = Value::dict(vec![(DictKey::Str("k".into()), Value::Int(1))]);
        assert_eq!(
            call(Builtin::Keys, &[d]).unwrap(),
            Value::vec(vec![Value::str("k")])
        );
        assert!(call(Builtin::Strlen, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn min_max_and_abs() {
        assert_eq!(
            call(Builtin::Min, &[Value::Int(3), Value::Int(5)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call(Builtin::Max, &[Value::Float(1.5), Value::Int(1)]).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            call(Builtin::Abs, &[Value::Int(-9)]).unwrap(),
            Value::Int(9)
        );
    }

    #[test]
    fn substr_clamps() {
        assert_eq!(
            call(
                Builtin::Substr,
                &[Value::str("hello"), Value::Int(1), Value::Int(3)]
            )
            .unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            call(
                Builtin::Substr,
                &[Value::str("hi"), Value::Int(5), Value::Int(3)]
            )
            .unwrap(),
            Value::str("")
        );
    }

    #[test]
    fn idx_or_defaults() {
        let v = Value::vec(vec![Value::Int(10)]);
        assert_eq!(
            call(Builtin::IdxOr, &[v.clone(), Value::Int(0), Value::Int(-1)]).unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            call(Builtin::IdxOr, &[v, Value::Int(3), Value::Int(-1)]).unwrap(),
            Value::Int(-1)
        );
    }

    #[test]
    fn hash_is_deterministic() {
        let a = call(Builtin::HashVal, &[Value::str("x")]).unwrap();
        let b = call(Builtin::HashVal, &[Value::str("x")]).unwrap();
        assert_eq!(a, b);
        let c = call(Builtin::HashVal, &[Value::str("y")]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn push_mutates_shared_vec() {
        let v = Value::vec(vec![]);
        call(Builtin::Push, &[v.clone(), Value::Int(1)]).unwrap();
        assert_eq!(v, Value::vec(vec![Value::Int(1)]));
    }
}
